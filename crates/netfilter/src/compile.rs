//! The filter compiler: expression → native code (the Palladium side of
//! Figure 7).
//!
//! The paper's compiled packet filter is "a filtering program written in
//! C ... loaded into the kernel as an extension" and run at native speed.
//! This compiler plays the role of gcc: each conjunction term becomes a
//! load + compare + conditional branch. Multi-byte header fields are in
//! network byte order; for equality tests the compiler byte-swaps the
//! *constant* at compile time (exactly what an optimizing compiler does
//! with `ntohs(x) == K`), so the hot path stays one load and one compare
//! per term. Ordered (`>`) comparisons cannot use that trick and compose
//! the value bytewise.
//!
//! The generated module defines its own `shared_area` — the zero-copy
//! argument area of §4.3 — where the kernel places the packet, and takes
//! the packet length as the 4-byte extension argument.

use asm86::{Assembler, Object};

use crate::expr::{Filter, Test, Width};

/// Size of the shared packet area the generated module reserves.
pub const SHARED_AREA_SIZE: u32 = 2048;

fn swap16(v: u32) -> u32 {
    (v as u16).swap_bytes() as u32
}

fn swap32(v: u32) -> u32 {
    v.swap_bytes()
}

/// Emits the byte-composed (network-order) load of a field into `eax`.
fn emit_compose(out: &mut String, off: u32, width: Width) {
    out.push_str(&format!("    mov eax, byte [shared_area+{off}]\n"));
    for i in 1..width.bytes() {
        out.push_str("    shl eax, 8\n");
        out.push_str(&format!("    mov ecx, byte [shared_area+{}]\n", off + i));
        out.push_str("    or eax, ecx\n");
    }
}

/// Compiles a filter to an assembly module exporting `filter` (cdecl,
/// argument = packet length, returns 1 to accept / 0 to reject).
pub fn compile_to_asm(f: &Filter) -> String {
    let mut s = String::new();
    s.push_str("filter:\n");

    // One up-front bounds check against the largest offset any term
    // needs, like a compiler hoisting the guard.
    let max_needed = f
        .terms
        .iter()
        .map(|t| t.offset + t.width.bytes())
        .max()
        .unwrap_or(0);
    if max_needed > 0 {
        s.push_str("    mov edx, [esp+4]\n");
        s.push_str(&format!("    cmp edx, {max_needed}\n"));
        s.push_str("    jb reject\n");
    }

    for t in &f.terms {
        match t.test {
            Test::Eq(k) => {
                let (load, cons) = match t.width {
                    Width::B1 => ("byte ", k),
                    Width::B2 => ("word ", swap16(k)),
                    Width::B4 => ("", swap32(k)),
                };
                s.push_str(&format!("    mov eax, {load}[shared_area+{}]\n", t.offset));
                s.push_str(&format!("    cmp eax, {cons}\n"));
                s.push_str("    jne reject\n");
            }
            Test::Masked(m, k) => {
                let (load, mask, cons) = match t.width {
                    Width::B1 => ("byte ", m, k),
                    Width::B2 => ("word ", swap16(m), swap16(k)),
                    Width::B4 => ("", swap32(m), swap32(k)),
                };
                s.push_str(&format!("    mov eax, {load}[shared_area+{}]\n", t.offset));
                s.push_str(&format!("    and eax, {mask}\n"));
                s.push_str(&format!("    cmp eax, {cons}\n"));
                s.push_str("    jne reject\n");
            }
            Test::Gt(k) => {
                emit_compose(&mut s, t.offset, t.width);
                s.push_str(&format!("    cmp eax, {k}\n"));
                s.push_str("    jbe reject\n");
            }
        }
    }

    s.push_str(
        "    mov eax, 1\n\
         \x20   ret\n\
         reject:\n\
         \x20   mov eax, 0\n\
         \x20   ret\n\
         \x20   .align 16\n\
         shared_area:\n",
    );
    s.push_str(&format!("    .space {SHARED_AREA_SIZE}\n"));
    s.push_str("shared_area_end:\n");
    s
}

/// Compiles a filter to a loadable module object.
pub fn compile(f: &Filter) -> Object {
    Assembler::assemble(&compile_to_asm(f)).expect("generated filter assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{paper_conjunction, terms};
    use crate::packet::reference_packet;
    use asm86::encode::decode_program;

    #[test]
    fn compiled_module_exports_the_interface() {
        let o = compile(&paper_conjunction(4));
        assert!(o.symbol("filter").is_some());
        assert!(o.symbol("shared_area").is_some());
        assert_eq!(
            o.symbol("shared_area_end").unwrap() - o.symbol("shared_area").unwrap(),
            SHARED_AREA_SIZE
        );
    }

    #[test]
    fn accept_all_filter_is_two_instructions() {
        let o = compile(&Filter::accept_all());
        let code_len = o.symbol("reject").unwrap();
        let insns =
            decode_program(&o.link(0, &Default::default()).unwrap()[..code_len as usize]).unwrap();
        // mov eax, 1; ret.
        assert_eq!(insns.len(), 2);
    }

    #[test]
    fn per_term_code_is_constant_size() {
        // The defining property of compiled filters: a term adds a load,
        // a compare and a branch — not interpretation work.
        let n1 = compile(&paper_conjunction(1)).symbol("reject").unwrap();
        let n2 = compile(&paper_conjunction(2)).symbol("reject").unwrap();
        let n3 = compile(&paper_conjunction(3)).symbol("reject").unwrap();
        // Terms 2 and 3 are 1- and 4-byte equality tests; each adds
        // exactly three instructions.
        assert!(n2 > n1 && n3 > n2);
        let delta2 = n2 - n1;
        let delta3 = n3 - n2;
        assert!(delta2 <= 20 && delta3 <= 20, "terms stay small");
    }

    #[test]
    fn equality_constants_are_byte_swapped() {
        // dst_port(5001): the constant in the code must be swap16(5001).
        let asm = compile_to_asm(&Filter {
            terms: vec![terms::dst_port(5001)],
        });
        let swapped = (5001u16).swap_bytes();
        assert!(
            asm.contains(&format!("cmp eax, {swapped}")),
            "constant pre-swapped at compile time:\n{asm}"
        );
    }

    #[test]
    fn gt_terms_compose_bytes() {
        let asm = compile_to_asm(&Filter {
            terms: vec![terms::src_port_gt(1024)],
        });
        assert!(
            asm.contains("shl eax, 8"),
            "ordered compare composes:\n{asm}"
        );
        assert!(asm.contains("jbe reject"));
    }

    #[test]
    fn generated_asm_mentions_bounds_check() {
        let asm = compile_to_asm(&paper_conjunction(4));
        assert!(
            asm.contains("cmp edx, 38"),
            "hoisted bound = max offset+width"
        );
        let _ = reference_packet(64);
    }
}
