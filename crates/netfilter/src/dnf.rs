//! Disjunctive filters: OR-of-conjunctions, the natural extension of the
//! paper's single conjunction (tcpdump expressions like
//! `"udp or (tcp and dst port 80)"` compile to exactly this shape).
//!
//! Both backends support it: the compiler emits one basic block per
//! clause falling through to the next on mismatch, and the BPF
//! translation chains clause blocks with shared accept/reject tails.

use asm86::{Assembler, Object};
use baselines::bpf::BpfInsn;

use crate::compile::SHARED_AREA_SIZE;
use crate::expr::{Filter, Test, Width};
use crate::tobpf::to_bpf;

/// An OR of conjunctions (empty = reject everything; an empty clause
/// accepts everything).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DnfFilter {
    /// The clauses; any one matching accepts the packet.
    pub clauses: Vec<Filter>,
}

impl DnfFilter {
    /// A filter from one conjunction.
    pub fn from_conjunction(f: Filter) -> DnfFilter {
        DnfFilter { clauses: vec![f] }
    }

    /// Host-side reference evaluation.
    pub fn eval(&self, pkt: &[u8]) -> bool {
        self.clauses.iter().any(|c| c.eval(pkt))
    }

    /// Total number of terms across clauses.
    pub fn total_terms(&self) -> usize {
        self.clauses.iter().map(Filter::len).sum()
    }
}

/// Compiles a DNF filter to a loadable kernel-extension module (same
/// interface as [`crate::compile::compile`]).
pub fn compile_dnf(f: &DnfFilter) -> Object {
    let mut s = String::new();
    s.push_str("filter:\n");

    if f.clauses.is_empty() {
        s.push_str("    mov eax, 0\n    ret\n");
    } else {
        let max_needed = f
            .clauses
            .iter()
            .flat_map(|c| c.terms.iter())
            .map(|t| t.offset + t.width.bytes())
            .max()
            .unwrap_or(0);
        if max_needed > 0 {
            s.push_str("    mov edx, [esp+4]\n");
            s.push_str(&format!("    cmp edx, {max_needed}\n"));
            s.push_str("    jb reject\n");
        }
        for (ci, clause) in f.clauses.iter().enumerate() {
            s.push_str(&format!("clause{ci}:\n"));
            let fail = if ci + 1 < f.clauses.len() {
                format!("clause{}", ci + 1)
            } else {
                "reject".to_string()
            };
            for t in &clause.terms {
                let (load, cons, mask) = match (t.width, t.test) {
                    (Width::B1, Test::Eq(k)) => ("byte ", k, None),
                    (Width::B2, Test::Eq(k)) => ("word ", (k as u16).swap_bytes() as u32, None),
                    (Width::B4, Test::Eq(k)) => ("", k.swap_bytes(), None),
                    (Width::B1, Test::Masked(m, k)) => ("byte ", k, Some(m)),
                    (Width::B2, Test::Masked(m, k)) => (
                        "word ",
                        (k as u16).swap_bytes() as u32,
                        Some((m as u16).swap_bytes() as u32),
                    ),
                    (Width::B4, Test::Masked(m, k)) => ("", k.swap_bytes(), Some(m.swap_bytes())),
                    // Ordered tests compose bytes; reuse the conjunction
                    // compiler's shape inline.
                    (w, Test::Gt(k)) => {
                        s.push_str(&format!("    mov eax, byte [shared_area+{}]\n", t.offset));
                        for i in 1..w.bytes() {
                            s.push_str("    shl eax, 8\n");
                            s.push_str(&format!(
                                "    mov ecx, byte [shared_area+{}]\n",
                                t.offset + i
                            ));
                            s.push_str("    or eax, ecx\n");
                        }
                        s.push_str(&format!("    cmp eax, {k}\n"));
                        s.push_str(&format!("    jbe {fail}\n"));
                        continue;
                    }
                };
                s.push_str(&format!("    mov eax, {load}[shared_area+{}]\n", t.offset));
                if let Some(m) = mask {
                    s.push_str(&format!("    and eax, {m}\n"));
                }
                s.push_str(&format!("    cmp eax, {cons}\n"));
                s.push_str(&format!("    jne {fail}\n"));
            }
            s.push_str("    mov eax, 1\n    ret\n");
        }
        s.push_str("reject:\n    mov eax, 0\n    ret\n");
    }
    s.push_str("    .align 16\nshared_area:\n");
    s.push_str(&format!("    .space {SHARED_AREA_SIZE}\n"));
    s.push_str("shared_area_end:\n");
    Assembler::assemble(&s).expect("generated DNF filter assembles")
}

/// Translates a DNF filter to BPF: clause blocks chained by failure
/// edges, one shared accept and reject.
pub fn dnf_to_bpf(f: &DnfFilter) -> Vec<BpfInsn> {
    if f.clauses.is_empty() {
        return vec![BpfInsn::RetK(0)];
    }
    if f.clauses.len() == 1 {
        return to_bpf(&f.clauses[0]);
    }
    // Per clause: term instructions then `ja accept`. Failure edges jump
    // to the next clause's first instruction; the last clause fails to
    // reject.
    let sizes: Vec<usize> = f
        .clauses
        .iter()
        .map(|c| {
            c.terms
                .iter()
                .map(|t| match t.test {
                    Test::Masked(..) => 3,
                    _ => 2,
                })
                .sum::<usize>()
                + 1 // the ja accept
        })
        .collect();
    let total: usize = sizes.iter().sum();
    let accept = total;
    let reject = total + 1;

    let mut prog = Vec::with_capacity(total + 2);
    let mut clause_start = 0usize;
    for (clause, size) in f.clauses.iter().zip(&sizes) {
        let next_clause = clause_start + size;
        let fail_target = if next_clause < total {
            next_clause
        } else {
            reject
        };
        let mut pos = clause_start;
        for t in &clause.terms {
            let load = match t.width {
                Width::B1 => BpfInsn::LdAbsB(t.offset),
                Width::B2 => BpfInsn::LdAbsH(t.offset),
                Width::B4 => BpfInsn::LdAbsW(t.offset),
            };
            prog.push(load);
            let term_size = match t.test {
                Test::Masked(..) => 3,
                _ => 2,
            };
            let jump_idx = pos + term_size - 1;
            let jf = (fail_target - (jump_idx + 1)) as u8;
            match t.test {
                Test::Eq(k) => prog.push(BpfInsn::Jeq(k, 0, jf)),
                Test::Gt(k) => prog.push(BpfInsn::Jgt(k, 0, jf)),
                Test::Masked(m, k) => {
                    prog.push(BpfInsn::And(m));
                    prog.push(BpfInsn::Jeq(k, 0, jf));
                }
            }
            pos += term_size;
        }
        // ja accept
        prog.push(BpfInsn::Ja((accept - (pos + 1)) as u32));
        clause_start = next_clause;
    }
    prog.push(BpfInsn::RetK(1));
    prog.push(BpfInsn::RetK(0));
    debug_assert!(baselines::bpf::validate(&prog).is_ok(), "{prog:?}");
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::terms;
    use crate::packet::PacketSpec;
    use baselines::bpf;

    fn udp_or_tcp80() -> DnfFilter {
        DnfFilter {
            clauses: vec![
                Filter {
                    terms: vec![terms::ip_proto(17)],
                },
                Filter {
                    terms: vec![terms::ip_proto(6), terms::dst_port(80)],
                },
            ],
        }
    }

    fn pkt(proto: u8, dst_port: u16) -> Vec<u8> {
        PacketSpec {
            ip_proto: proto,
            dst_port,
            ..PacketSpec::default()
        }
        .build()
    }

    #[test]
    fn reference_semantics() {
        let f = udp_or_tcp80();
        assert!(f.eval(&pkt(17, 9)));
        assert!(f.eval(&pkt(6, 80)));
        assert!(!f.eval(&pkt(6, 443)));
        assert!(!f.eval(&pkt(1, 80)));
        assert!(!DnfFilter::default().eval(&pkt(17, 9)), "empty DNF rejects");
        assert_eq!(f.total_terms(), 3);
    }

    #[test]
    fn bpf_translation_agrees() {
        let f = udp_or_tcp80();
        let prog = dnf_to_bpf(&f);
        bpf::validate(&prog).unwrap();
        for p in [pkt(17, 9), pkt(6, 80), pkt(6, 443), pkt(1, 80)] {
            assert_eq!(bpf::run(&prog, &p).unwrap() != 0, f.eval(&p), "{p:?}");
        }
    }

    #[test]
    fn compiled_module_exports_interface() {
        let o = compile_dnf(&udp_or_tcp80());
        assert!(o.symbol("filter").is_some());
        assert!(o.symbol("shared_area").is_some());
        assert!(o.symbol("clause0").is_some());
        assert!(o.symbol("clause1").is_some());
    }

    #[test]
    fn compiled_dnf_runs_as_kernel_extension() {
        use minikernel::Kernel;
        use palladium::kernel_ext::KernelExtensions;

        let f = udp_or_tcp80();
        let obj = compile_dnf(&f);
        let mut k = Kernel::boot();
        let mut kx = KernelExtensions::new(&mut k).unwrap();
        let seg = kx.create_segment(&mut k, 16).unwrap();
        kx.insmod(&mut k, seg, "dnf", &obj, &["filter"]).unwrap();
        let (area, _) = kx.shared_area_linear(seg).unwrap();

        for p in [pkt(17, 9), pkt(6, 80), pkt(6, 443)] {
            assert!(k.m.host_write(area, &p));
            let v = kx.invoke(&mut k, seg, "filter", p.len() as u32).unwrap();
            assert_eq!(v != 0, f.eval(&p));
        }
    }

    #[test]
    fn single_clause_dnf_equals_conjunction() {
        let conj = Filter {
            terms: vec![terms::ether_type(0x0800), terms::ip_proto(17)],
        };
        let dnf = DnfFilter::from_conjunction(conj.clone());
        let prog_a = dnf_to_bpf(&dnf);
        let prog_b = crate::tobpf::to_bpf(&conj);
        assert_eq!(prog_a, prog_b);
    }

    #[test]
    fn masked_clause_in_dnf() {
        // 10/8 sources OR dst port 53.
        let f = DnfFilter {
            clauses: vec![
                Filter {
                    terms: vec![terms::ip_src_net(0x0A00_0000, 0xFF00_0000)],
                },
                Filter {
                    terms: vec![terms::dst_port(53)],
                },
            ],
        };
        let prog = dnf_to_bpf(&f);
        bpf::validate(&prog).unwrap();
        let a = PacketSpec::default().build(); // src 10.0.0.1 -> clause 1
        assert!(f.eval(&a));
        assert_eq!(bpf::run(&prog, &a).unwrap(), 1);
        let b = PacketSpec {
            src_ip: 0x0101_0101,
            dst_port: 53,
            ..PacketSpec::default()
        }
        .build(); // clause 2
        assert!(f.eval(&b));
        assert_eq!(bpf::run(&prog, &b).unwrap(), 1);
        let c = PacketSpec {
            src_ip: 0x0101_0101,
            dst_port: 54,
            ..PacketSpec::default()
        }
        .build();
        assert!(!f.eval(&c));
        assert_eq!(bpf::run(&prog, &c).unwrap(), 0);
    }
}
