//! The Figure 7 measurement harness.
//!
//! Holds one booted kernel with both mechanisms installed side by side:
//! the compiled filter as a Palladium kernel extension (SPL 1 segment),
//! and the BPF interpreter as trusted kernel code. Both run entirely on
//! the simulated CPU; the harness measures the cycle delta around each
//! filter execution, which is exactly what the paper's Pentium-counter
//! measurement did.

use baselines::bpf_interp::{BpfKernelInterp, InterpError};
use minikernel::Kernel;
use palladium::kernel_ext::{ExtSegmentId, KernelExtensions, KextError};

use crate::compile;
use crate::expr::Filter;
use crate::tobpf::to_bpf;

/// Errors from the harness.
#[derive(Debug)]
pub enum HarnessError {
    /// Kernel-extension side failed.
    Kext(KextError),
    /// Interpreter side failed.
    Interp(InterpError),
    /// No compiled filter installed yet.
    NotInstalled,
    /// The packet exceeds the shared area.
    PacketTooLarge,
}

impl core::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HarnessError::Kext(e) => write!(f, "kernel extension: {e}"),
            HarnessError::Interp(e) => write!(f, "interpreter: {e}"),
            HarnessError::NotInstalled => write!(f, "no compiled filter installed"),
            HarnessError::PacketTooLarge => write!(f, "packet exceeds the shared area"),
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<KextError> for HarnessError {
    fn from(e: KextError) -> HarnessError {
        HarnessError::Kext(e)
    }
}

impl From<InterpError> for HarnessError {
    fn from(e: InterpError) -> HarnessError {
        HarnessError::Interp(e)
    }
}

/// One filter-execution measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterRun {
    /// Did the filter accept the packet?
    pub accept: bool,
    /// Cycles consumed, including the invocation path.
    pub cycles: u64,
}

/// The side-by-side bench.
///
/// `Clone` is a world fork (copy-on-write frames via
/// [`x86sim::Machine::fork`]): sharded benches boot one warmed template
/// and clone it per shard instead of re-booting a kernel each time.
#[derive(Debug, Clone)]
pub struct FilterBench {
    /// The hosting kernel (public so benches can read stats/cycles).
    pub k: Kernel,
    kx: KernelExtensions,
    interp: BpfKernelInterp,
    seg: Option<ExtSegmentId>,
    shared: Option<(u32, u32)>,
}

impl FilterBench {
    /// Boots a kernel with both mechanisms ready.
    pub fn new() -> Result<FilterBench, HarnessError> {
        let mut k = Kernel::boot();
        let kx = KernelExtensions::new(&mut k)?;
        let interp = BpfKernelInterp::install(&mut k)?;
        Ok(FilterBench {
            k,
            kx,
            interp,
            seg: None,
            shared: None,
        })
    }

    /// Compiles `f` and loads it as a fresh Palladium kernel extension.
    pub fn install_compiled(&mut self, f: &Filter) -> Result<(), HarnessError> {
        let obj = compile::compile(f);
        let seg = self.kx.create_segment(&mut self.k, 16)?;
        self.kx
            .insmod(&mut self.k, seg, "pktfilter", &obj, &["filter"])?;
        self.shared = self.kx.shared_area_linear(seg);
        self.seg = Some(seg);
        Ok(())
    }

    /// Runs the installed compiled filter over a packet through the full
    /// protected invocation path (Figure 4, steps 4-5-9).
    pub fn run_compiled(&mut self, pkt: &[u8]) -> Result<FilterRun, HarnessError> {
        let seg = self.seg.ok_or(HarnessError::NotInstalled)?;
        let (area, size) = self.shared.ok_or(HarnessError::NotInstalled)?;
        if pkt.len() as u32 > size {
            return Err(HarnessError::PacketTooLarge);
        }
        // The kernel places the packet in the shared data area — the
        // zero-copy hand-off of §4.3 (charged as one kernel copy).
        assert!(self.k.m.host_write(area, pkt));
        self.k.m.charge(pkt.len() as u64 / 4 + 10);

        let before = self.k.m.cycles();
        let v = self
            .kx
            .invoke(&mut self.k, seg, "filter", pkt.len() as u32)?;
        Ok(FilterRun {
            accept: v != 0,
            cycles: self.k.m.cycles() - before,
        })
    }

    /// Runs the BPF translation of `f` over a packet in the in-kernel
    /// interpreter.
    pub fn run_bpf(&mut self, f: &Filter, pkt: &[u8]) -> Result<FilterRun, HarnessError> {
        let prog = to_bpf(f);
        let (v, cycles) = self.interp.run(&mut self.k, &prog, pkt)?;
        Ok(FilterRun {
            accept: v != 0,
            cycles,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::paper_conjunction;
    use crate::packet::{reference_packet, traffic};

    #[test]
    fn both_sides_agree_with_the_reference_evaluator() {
        let f = paper_conjunction(4);
        let mut b = FilterBench::new().unwrap();
        b.install_compiled(&f).unwrap();
        for pkt in traffic(3, 40, 0.5) {
            let want = f.eval(&pkt);
            let c = b.run_compiled(&pkt).unwrap();
            let i = b.run_bpf(&f, &pkt).unwrap();
            assert_eq!(c.accept, want, "compiled");
            assert_eq!(i.accept, want, "interpreted");
        }
    }

    #[test]
    fn figure7_shape_holds() {
        // The paper's claims: BPF cost grows steeply with the number of
        // terms; the compiled extension is nearly flat (fixed invocation
        // overhead); at 4 terms the extension is more than twice as fast.
        let pkt = reference_packet(64);
        let mut bpf_costs = Vec::new();
        let mut pd_costs = Vec::new();
        for n in 0..=4usize {
            let f = paper_conjunction(n);
            let mut b = FilterBench::new().unwrap();
            b.install_compiled(&f).unwrap();
            // Warm both paths, then measure.
            b.run_compiled(&pkt).unwrap();
            b.run_bpf(&f, &pkt).unwrap();
            let c = b.run_compiled(&pkt).unwrap();
            let i = b.run_bpf(&f, &pkt).unwrap();
            assert!(c.accept && i.accept);
            pd_costs.push(c.cycles);
            bpf_costs.push(i.cycles);
        }
        // BPF grows monotonically and substantially.
        for w in bpf_costs.windows(2) {
            assert!(w[1] > w[0], "BPF cost grows: {bpf_costs:?}");
        }
        let bpf_slope = (bpf_costs[4] - bpf_costs[0]) as f64 / 4.0;
        let pd_slope = (pd_costs[4].saturating_sub(pd_costs[0])) as f64 / 4.0;
        assert!(
            bpf_slope > 5.0 * pd_slope.max(1.0),
            "interpretation slope ({bpf_slope}) dwarfs compiled slope ({pd_slope})"
        );
        // The crossover: with no terms the interpreter's fixed cost is
        // lower than the protected invocation; by 4 terms the compiled
        // extension wins by at least 2x.
        assert!(
            bpf_costs[0] < pd_costs[0],
            "BPF cheaper at 0 terms: {} vs {}",
            bpf_costs[0],
            pd_costs[0]
        );
        assert!(
            bpf_costs[4] as f64 >= 2.0 * pd_costs[4] as f64,
            "paper: >2x at 4 terms; got BPF {} vs Palladium {}",
            bpf_costs[4],
            pd_costs[4]
        );
    }

    #[test]
    fn oversized_packet_is_rejected() {
        let mut b = FilterBench::new().unwrap();
        b.install_compiled(&paper_conjunction(1)).unwrap();
        let huge = vec![0u8; 4096];
        assert!(matches!(
            b.run_compiled(&huge),
            Err(HarnessError::PacketTooLarge)
        ));
    }

    #[test]
    fn run_before_install_errors() {
        let mut b = FilterBench::new().unwrap();
        assert!(matches!(
            b.run_compiled(&[0u8; 64]),
            Err(HarnessError::NotInstalled)
        ));
    }
}
