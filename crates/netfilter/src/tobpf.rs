//! The BPF translation of a filter expression (Figure 7's other side).
//!
//! This plays the role of tcpdump's filter compiler: each conjunction
//! term becomes a packet load (plus a mask for subnet tests) and a
//! conditional jump whose false edge goes to the shared reject
//! instruction.

use baselines::bpf::BpfInsn;

use crate::expr::{Filter, Test, Width};

/// Translates a filter to a validated BPF program returning 1 (accept)
/// or 0 (reject).
pub fn to_bpf(f: &Filter) -> Vec<BpfInsn> {
    if f.terms.is_empty() {
        return vec![BpfInsn::RetK(1)];
    }
    // First pass: instruction count per term.
    let sizes: Vec<usize> = f
        .terms
        .iter()
        .map(|t| match t.test {
            Test::Masked(..) => 3,
            _ => 2,
        })
        .collect();
    let total: usize = sizes.iter().sum();
    // Layout: terms..., RetK(1) at `total`, RetK(0) at `total`+1.
    let reject = total + 1;

    let mut prog = Vec::with_capacity(total + 2);
    let mut pos = 0usize;
    for (t, size) in f.terms.iter().zip(&sizes) {
        let load = match t.width {
            Width::B1 => BpfInsn::LdAbsB(t.offset),
            Width::B2 => BpfInsn::LdAbsH(t.offset),
            Width::B4 => BpfInsn::LdAbsW(t.offset),
        };
        prog.push(load);
        let jump_idx = pos + size - 1;
        let jf = (reject - (jump_idx + 1)) as u8;
        match t.test {
            Test::Eq(k) => prog.push(BpfInsn::Jeq(k, 0, jf)),
            Test::Gt(k) => prog.push(BpfInsn::Jgt(k, 0, jf)),
            Test::Masked(m, k) => {
                prog.push(BpfInsn::And(m));
                prog.push(BpfInsn::Jeq(k, 0, jf));
            }
        }
        pos += size;
    }
    prog.push(BpfInsn::RetK(1));
    prog.push(BpfInsn::RetK(0));
    debug_assert!(baselines::bpf::validate(&prog).is_ok());
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{paper_conjunction, terms, Filter};
    use crate::packet::{reference_packet, traffic};
    use baselines::bpf;

    #[test]
    fn translations_validate_and_accept_the_reference_packet() {
        let pkt = reference_packet(64);
        for n in 0..=4 {
            let prog = to_bpf(&paper_conjunction(n));
            bpf::validate(&prog).unwrap();
            assert_eq!(bpf::run(&prog, &pkt).unwrap(), 1, "{n} terms");
        }
    }

    #[test]
    fn bpf_agrees_with_host_expression_eval_on_traffic() {
        let f = paper_conjunction(4);
        let prog = to_bpf(&f);
        for pkt in traffic(11, 200, 0.5) {
            let expr = f.eval(&pkt);
            let bpf_v = bpf::run(&prog, &pkt).unwrap() != 0;
            assert_eq!(expr, bpf_v);
        }
    }

    #[test]
    fn masked_terms_translate_with_and() {
        let f = Filter {
            terms: vec![terms::ip_src_net(0x0A00_0000, 0xFF00_0000)],
        };
        let prog = to_bpf(&f);
        assert!(prog.iter().any(|i| matches!(i, BpfInsn::And(_))));
        let pkt = reference_packet(64);
        assert_eq!(bpf::run(&prog, &pkt).unwrap(), 1);
    }

    #[test]
    fn reject_edges_share_one_instruction() {
        let prog = to_bpf(&paper_conjunction(4));
        // Exactly one RetK(0) at the end, one RetK(1) before it.
        assert_eq!(prog[prog.len() - 2], BpfInsn::RetK(1));
        assert_eq!(prog[prog.len() - 1], BpfInsn::RetK(0));
        let rejects = prog
            .iter()
            .filter(|i| matches!(i, BpfInsn::RetK(0)))
            .count();
        assert_eq!(rejects, 1);
    }
}
