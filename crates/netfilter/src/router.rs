//! A miniature programmable router (the paper's motivating system \[22],
//! "Operating System Support for Cluster-Based Routers").
//!
//! Packets arrive on an RX queue and are classified by a filter running
//! as a Palladium kernel extension. When the CPU is busy at arrival time
//! the packet is *deferred* and later filtered through the asynchronous
//! extension path of §4.3 ("an incoming packet can be queued for the
//! asynchronous service of protocol-specific packet filtering, if the CPU
//! is busy with other high-priority tasks on packet arrival"); otherwise
//! it is filtered synchronously inline. A faulting filter aborts and the
//! router fails closed, dropping the affected packets while the kernel
//! keeps running.

use std::collections::VecDeque;

use asm86::Object;
use minikernel::Kernel;
use palladium::kernel_ext::{ExtSegmentId, KernelExtensions, KextError, SegmentConfig};
use palladium::supervisor::{
    ModuleImage, RestartPolicy, SupervisedId, SupervisedState, Supervisor, SupervisorError,
};

use crate::compile;
use crate::expr::Filter;

/// Router statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Packets received.
    pub received: u64,
    /// Packets accepted (forwarded).
    pub forwarded: u64,
    /// Packets rejected by the filter.
    pub dropped: u64,
    /// Packets deferred to the asynchronous path.
    pub deferred: u64,
    /// Packets lost to a filter abort (fail closed).
    pub failed_closed: u64,
    /// Packets forwarded unclassified by the fail-open default policy.
    pub failed_open: u64,
    /// Packets handled by the default policy while the classifier was
    /// down (restart window or tombstone) — fail-closed and fail-open
    /// applications both count here.
    pub default_policy: u64,
}

/// What the supervised router does with packets while its classifier is
/// being restarted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailPolicy {
    /// Drop unclassified packets (the conservative default for a filter).
    Closed,
    /// Forward unclassified packets (availability over filtering).
    Open,
}

/// Why a router operation failed.
#[derive(Debug)]
pub enum RouterError {
    /// Setup failed.
    Setup(KextError),
    /// The packet does not fit the shared area.
    PacketTooLarge,
}

impl core::fmt::Display for RouterError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RouterError::Setup(e) => write!(f, "router setup: {e}"),
            RouterError::PacketTooLarge => write!(f, "packet exceeds shared area"),
        }
    }
}

impl std::error::Error for RouterError {}

impl From<KextError> for RouterError {
    fn from(e: KextError) -> RouterError {
        RouterError::Setup(e)
    }
}

/// The verdict for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Forwarded.
    Forward,
    /// Dropped by the filter.
    Drop,
    /// Lost because the filter extension was aborted.
    FailedClosed,
    /// Forwarded *unclassified* by the fail-open default policy while
    /// the classifier was being restarted.
    FailedOpen,
}

/// Supervision state for a router whose classifier restarts on fault.
#[derive(Debug)]
struct SupervisedClassifier {
    sup: Supervisor,
    id: SupervisedId,
    fail: FailPolicy,
}

/// The router.
#[derive(Debug)]
pub struct Router {
    /// The hosting kernel (public so tests can inspect cycles/stats).
    pub k: Kernel,
    kx: KernelExtensions,
    seg: ExtSegmentId,
    shared: (u32, u32),
    deferred: VecDeque<Vec<u8>>,
    stats_seg: Option<ExtSegmentId>,
    supervised: Option<SupervisedClassifier>,
    /// Statistics.
    pub stats: RouterStats,
}

/// Source of the statistics extension: counts packets per IP protocol in
/// its shared data area (one u32 slot per protocol number, 0..256). A
/// *stateful* kernel extension — its counters live in its own segment and
/// persist across invocations; the kernel reads them out of the shared
/// area without any copying.
const STATS_MODULE: &str = "tally:
    mov ecx, [esp+4]        ; ip protocol number
    and ecx, 0xFF
    imul ecx, 4
    add ecx, shared_area
    mov eax, [ecx]
    inc eax
    mov [ecx], eax
    ret
shared_area:
    .space 1024
shared_area_end:
";

impl Router {
    /// Boots a kernel and installs the compiled filter as the
    /// classification extension.
    pub fn new(filter: &Filter) -> Result<Router, RouterError> {
        Router::with_module(&compile::compile(filter))
    }

    /// As [`Router::new`] with a caller-supplied filter module (must
    /// export `filter` and `shared_area`).
    pub fn with_module(module: &Object) -> Result<Router, RouterError> {
        let mut k = Kernel::boot();
        let mut kx = KernelExtensions::new(&mut k).map_err(RouterError::Setup)?;
        // A router fails closed: the first classifier fault quarantines
        // the segment rather than giving it three strikes at the data
        // path.
        let seg = kx.create_segment_with(&mut k, 16, Router::classifier_config())?;
        kx.insmod(&mut k, seg, "classifier", module, &["filter"])?;
        let shared = kx
            .shared_area_linear(seg)
            .ok_or(RouterError::Setup(KextError::Link("no shared_area".into())))?;
        Ok(Router {
            k,
            kx,
            seg,
            shared,
            deferred: VecDeque::new(),
            stats_seg: None,
            supervised: None,
            stats: RouterStats::default(),
        })
    }

    fn classifier_config() -> SegmentConfig {
        SegmentConfig {
            quarantine_threshold: 1,
            ..SegmentConfig::default()
        }
    }

    /// As [`Router::with_module`], but the classifier runs under a
    /// [`Supervisor`]: a fault reclaims its segment through the resource
    /// ledger and schedules a reinstall from the original image, and the
    /// router keeps moving packets via `fail` (its default policy) during
    /// every restart window instead of failing closed forever.
    pub fn with_supervised_module(
        module: &Object,
        fail: FailPolicy,
        policy: RestartPolicy,
    ) -> Result<Router, RouterError> {
        let mut k = Kernel::boot();
        let mut kx = KernelExtensions::new(&mut k).map_err(RouterError::Setup)?;
        let mut sup = Supervisor::new(policy);
        let image = ModuleImage::new("classifier", module.clone(), &["filter"]);
        let id = sup.install(
            &mut k,
            &mut kx,
            16,
            Router::classifier_config(),
            vec![image],
        )?;
        let seg = sup.segment(id);
        let shared = kx
            .shared_area_linear(seg)
            .ok_or(RouterError::Setup(KextError::Link("no shared_area".into())))?;
        Ok(Router {
            k,
            kx,
            seg,
            shared,
            deferred: VecDeque::new(),
            stats_seg: None,
            supervised: Some(SupervisedClassifier { sup, id, fail }),
            stats: RouterStats::default(),
        })
    }

    /// The classifier's supervisor, when running supervised.
    pub fn supervisor(&self) -> Option<&Supervisor> {
        self.supervised.as_ref().map(|s| &s.sup)
    }

    /// Applies the default policy to one packet the classifier could not
    /// see (restart window, tombstone, or the faulting call itself).
    fn apply_default_policy(&mut self) -> Verdict {
        self.stats.default_policy += 1;
        match self.supervised.as_ref().map(|s| s.fail) {
            Some(FailPolicy::Open) => {
                self.stats.failed_open += 1;
                Verdict::FailedOpen
            }
            _ => {
                self.stats.failed_closed += 1;
                Verdict::FailedClosed
            }
        }
    }

    /// Loads the per-protocol statistics extension (a second, stateful
    /// kernel extension in its own segment).
    pub fn enable_protocol_stats(&mut self) -> Result<(), RouterError> {
        let module = asm86::Assembler::assemble(STATS_MODULE).expect("stats module");
        let seg = self.kx.create_segment(&mut self.k, 8)?;
        self.kx
            .insmod(&mut self.k, seg, "stats", &module, &["tally"])?;
        self.stats_seg = Some(seg);
        Ok(())
    }

    /// Reads the per-protocol packet counters out of the statistics
    /// extension's shared area (zero-copy, §4.3).
    pub fn protocol_counts(&self) -> Option<Vec<(u8, u32)>> {
        let seg = self.stats_seg?;
        let (area, _) = self.kx.shared_area_linear(seg)?;
        let mut out = Vec::new();
        for proto in 0..=255u32 {
            let v = self.k.m.host_read_u32(area + proto * 4);
            if v > 0 {
                out.push((proto as u8, v));
            }
        }
        Some(out)
    }

    fn classify_now(&mut self, pkt: &[u8]) -> Result<Verdict, RouterError> {
        // Under supervision: perform any due restart first, then route
        // around a classifier that is still down.
        if self.supervised.is_some() {
            let (state, seg) = {
                let s = self.supervised.as_mut().unwrap();
                let state = s.sup.poll(&mut self.k, &mut self.kx, s.id);
                (state, s.sup.segment(s.id))
            };
            self.seg = seg;
            if state != SupervisedState::Running {
                return Ok(self.apply_default_policy());
            }
            self.shared = self
                .kx
                .shared_area_linear(seg)
                .ok_or(RouterError::Setup(KextError::Link("no shared_area".into())))?;
        }
        let (area, size) = self.shared;
        if pkt.len() as u32 > size {
            return Err(RouterError::PacketTooLarge);
        }
        // Tally the protocol in the stats extension, if loaded.
        if let Some(seg) = self.stats_seg {
            if pkt.len() > crate::packet::offsets::IP_PROTO as usize {
                let proto = pkt[crate::packet::offsets::IP_PROTO as usize] as u32;
                let _ = self.kx.invoke(&mut self.k, seg, "tally", proto);
            }
        }
        assert!(self.k.m.host_write(area, pkt));
        self.k.m.charge(pkt.len() as u64 / 4 + 10);
        let result = match self.supervised.as_mut() {
            Some(s) => {
                match s
                    .sup
                    .invoke(&mut self.k, &mut self.kx, s.id, "filter", pkt.len() as u32)
                {
                    Ok(v) => Ok(v),
                    Err(SupervisorError::Kext(e)) => Err(e),
                    // The supervisor observed the death first: default policy.
                    Err(_) => return Ok(self.apply_default_policy()),
                }
            }
            None => self
                .kx
                .invoke(&mut self.k, self.seg, "filter", pkt.len() as u32),
        };
        match result {
            Ok(v) if v != 0 => {
                self.stats.forwarded += 1;
                Ok(Verdict::Forward)
            }
            Ok(_) => {
                self.stats.dropped += 1;
                Ok(Verdict::Drop)
            }
            Err(KextError::Aborted(_))
            | Err(KextError::TimeLimit)
            | Err(KextError::SegmentDead)
            | Err(KextError::Quarantined { .. }) => {
                if self.supervised.is_some() {
                    Ok(self.apply_default_policy())
                } else {
                    self.stats.failed_closed += 1;
                    Ok(Verdict::FailedClosed)
                }
            }
            Err(e) => Err(RouterError::Setup(e)),
        }
    }

    /// Receives a packet. When `cpu_busy`, the packet is deferred to the
    /// asynchronous path; otherwise it is classified inline.
    pub fn receive(&mut self, pkt: &[u8], cpu_busy: bool) -> Result<Option<Verdict>, RouterError> {
        self.stats.received += 1;
        if cpu_busy {
            self.stats.deferred += 1;
            self.deferred.push_back(pkt.to_vec());
            // §4.3: enqueue the request and mark the module busy.
            self.kx.queue_async(self.seg, "filter", pkt.len() as u32);
            return Ok(None);
        }
        self.classify_now(pkt).map(Some)
    }

    /// Packets currently deferred.
    pub fn backlog(&self) -> usize {
        self.deferred.len()
    }

    /// Drains the asynchronous queue: each deferred packet is placed in
    /// the shared area and its queued request runs to completion before
    /// the next (§4.1 run-to-completion), in arrival order.
    pub fn drain(&mut self) -> Result<Vec<Verdict>, RouterError> {
        // Consume the extension-side request queue (the router
        // synchronizes packet placement itself), clearing the busy mark.
        let requests = self.kx.take_queued(self.seg);
        // Under supervision a restart may have replaced the segment since
        // the requests were queued (the reclaim drained them); the
        // router's own deferred list is the source of truth either way.
        debug_assert!(self.supervised.is_some() || requests.len() == self.deferred.len());
        let mut verdicts = Vec::with_capacity(self.deferred.len());
        while let Some(pkt) = self.deferred.pop_front() {
            verdicts.push(self.classify_now(&pkt)?);
        }
        Ok(verdicts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::paper_conjunction;
    use crate::packet::traffic;

    #[test]
    fn inline_classification_matches_reference() {
        let f = paper_conjunction(4);
        let mut r = Router::new(&f).unwrap();
        for pkt in traffic(21, 60, 0.5) {
            let v = r.receive(&pkt, false).unwrap().unwrap();
            let want = if f.eval(&pkt) {
                Verdict::Forward
            } else {
                Verdict::Drop
            };
            assert_eq!(v, want);
        }
        assert_eq!(r.stats.received, 60);
        assert_eq!(r.stats.forwarded + r.stats.dropped, 60);
        assert_eq!(r.stats.deferred, 0);
    }

    #[test]
    fn deferred_packets_drain_in_arrival_order() {
        let f = paper_conjunction(2);
        let mut r = Router::new(&f).unwrap();
        let pkts = traffic(5, 20, 0.5);
        let mut expected = Vec::new();
        for (i, pkt) in pkts.iter().enumerate() {
            // Every other packet arrives while the CPU is "busy".
            let busy = i % 2 == 1;
            let v = r.receive(pkt, busy).unwrap();
            if busy {
                assert_eq!(v, None);
                expected.push(if f.eval(pkt) {
                    Verdict::Forward
                } else {
                    Verdict::Drop
                });
            }
        }
        assert_eq!(r.backlog(), 10);
        let verdicts = r.drain().unwrap();
        assert_eq!(verdicts, expected, "FIFO order preserved");
        assert_eq!(r.backlog(), 0);
        assert_eq!(r.stats.deferred, 10);
        assert_eq!(r.stats.received, 20);
    }

    #[test]
    fn faulting_classifier_fails_closed_and_kernel_survives() {
        // A hand-written "filter" that escapes its segment when the packet
        // length is 66 — the router must fail closed on that packet and
        // on everything after the abort, without taking down the kernel.
        let module = asm86::Assembler::assemble(
            "filter:\n\
             mov eax, [esp+4]\n\
             cmp eax, 66\n\
             je escape\n\
             mov eax, 1\n\
             ret\n\
             escape:\n\
             mov eax, [0x800000]\n\
             ret\n\
             shared_area:\n\
             .space 2048\n\
             shared_area_end:\n",
        )
        .unwrap();
        let mut r = Router::with_module(&module).unwrap();
        let ok_pkt = vec![0u8; 64];
        let bad_pkt = vec![0u8; 66];

        assert_eq!(r.receive(&ok_pkt, false).unwrap(), Some(Verdict::Forward));
        assert_eq!(
            r.receive(&bad_pkt, false).unwrap(),
            Some(Verdict::FailedClosed)
        );
        // The segment is dead: later packets also fail closed.
        assert_eq!(
            r.receive(&ok_pkt, false).unwrap(),
            Some(Verdict::FailedClosed)
        );
        assert_eq!(r.stats.failed_closed, 2);
        // The kernel itself is fine.
        assert!(r.k.m.cycles() > 0);
    }

    #[test]
    fn protocol_statistics_accumulate_in_extension_state() {
        let mut r = Router::new(&paper_conjunction(0)).unwrap();
        r.enable_protocol_stats().unwrap();
        let mut udp = 0u32;
        let mut tcp = 0u32;
        for pkt in traffic(31, 50, 0.5) {
            match pkt[crate::packet::offsets::IP_PROTO as usize] {
                17 => udp += 1,
                6 => tcp += 1,
                _ => {}
            }
            r.receive(&pkt, false).unwrap();
        }
        let counts = r.protocol_counts().unwrap();
        let get = |p: u8| {
            counts
                .iter()
                .find(|(q, _)| *q == p)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(get(17), udp, "UDP tally");
        assert_eq!(get(6), tcp, "TCP tally");
        assert!(udp > 0 && tcp > 0, "mixed traffic exercised both");
    }

    #[test]
    fn oversized_packets_are_rejected_cleanly() {
        let mut r = Router::new(&paper_conjunction(1)).unwrap();
        assert!(matches!(
            r.receive(&vec![0u8; 4096], false),
            Err(RouterError::PacketTooLarge)
        ));
    }

    /// A classifier that escapes its segment on 66-byte packets, for the
    /// supervised-restart tests.
    fn faulty_module() -> Object {
        asm86::Assembler::assemble(
            "filter:\n\
             mov eax, [esp+4]\n\
             cmp eax, 66\n\
             je escape\n\
             mov eax, 1\n\
             ret\n\
             escape:\n\
             mov eax, [0x800000]\n\
             ret\n\
             shared_area:\n\
             .space 2048\n\
             shared_area_end:\n",
        )
        .unwrap()
    }

    #[test]
    fn supervised_classifier_restarts_and_service_resumes() {
        let policy = RestartPolicy {
            backoff_base: 10_000,
            ..RestartPolicy::default()
        };
        let mut r =
            Router::with_supervised_module(&faulty_module(), FailPolicy::Closed, policy).unwrap();
        let ok_pkt = vec![0u8; 64];
        let bad_pkt = vec![0u8; 66];

        assert_eq!(r.receive(&ok_pkt, false).unwrap(), Some(Verdict::Forward));
        // The faulting packet is handled by the default policy, and the
        // dead segment is reclaimed through its ledger.
        assert_eq!(
            r.receive(&bad_pkt, false).unwrap(),
            Some(Verdict::FailedClosed)
        );
        // During the backoff window the router keeps classifying via its
        // default policy rather than dying with the extension.
        assert_eq!(
            r.receive(&ok_pkt, false).unwrap(),
            Some(Verdict::FailedClosed)
        );
        assert!(r.stats.default_policy >= 2);
        // Wait out the backoff; the next packet is classified by the
        // reinstalled extension.
        r.k.m.charge(policy.backoff_base + 1);
        assert_eq!(r.receive(&ok_pkt, false).unwrap(), Some(Verdict::Forward));
        assert_eq!(r.supervisor().unwrap().restarts, 1);
    }

    #[test]
    fn fail_open_policy_forwards_unclassified_packets() {
        let policy = RestartPolicy {
            backoff_base: 10_000,
            ..RestartPolicy::default()
        };
        let mut r =
            Router::with_supervised_module(&faulty_module(), FailPolicy::Open, policy).unwrap();
        let ok_pkt = vec![0u8; 64];
        let bad_pkt = vec![0u8; 66];

        assert_eq!(
            r.receive(&bad_pkt, false).unwrap(),
            Some(Verdict::FailedOpen)
        );
        assert_eq!(
            r.receive(&ok_pkt, false).unwrap(),
            Some(Verdict::FailedOpen)
        );
        assert_eq!(r.stats.failed_open, 2);
        assert_eq!(r.stats.failed_closed, 0);
        r.k.m.charge(policy.backoff_base + 1);
        assert_eq!(r.receive(&ok_pkt, false).unwrap(), Some(Verdict::Forward));
    }

    #[test]
    fn repeated_faults_tombstone_the_classifier() {
        let policy = RestartPolicy {
            max_restarts: 2,
            backoff_base: 1_000,
            backoff_factor: 1,
            backoff_max: 1_000,
            decay_after: 0,
        };
        let mut r =
            Router::with_supervised_module(&faulty_module(), FailPolicy::Closed, policy).unwrap();
        let bad_pkt = vec![0u8; 66];
        let ok_pkt = vec![0u8; 64];
        for _ in 0..3 {
            let _ = r.receive(&bad_pkt, false).unwrap();
            r.k.m.charge(2_000);
            // Recover (or, after the final strike, stay down).
            let _ = r.receive(&ok_pkt, false).unwrap();
        }
        // Two restarts were allowed; the third death is permanent.
        let _ = r.receive(&bad_pkt, false).unwrap();
        r.k.m.charge(1_000_000);
        assert_eq!(
            r.receive(&ok_pkt, false).unwrap(),
            Some(Verdict::FailedClosed)
        );
        assert_eq!(r.supervisor().unwrap().tombstoned, 1);
    }
}
