//! The task (process) structure.

use std::collections::VecDeque;

use x86sim::desc::DescriptorTable;
use x86sim::machine::Cpu;

use crate::vas::Vas;

/// Task identifier.
pub type Tid = u32;

/// Per-task state — the simulated analogue of Linux's `task_struct`, plus
/// the `taskSPL` field Palladium adds (§4.5.2).
#[derive(Debug, Clone)]
pub struct Task {
    /// The task id (pid).
    pub tid: Tid,
    /// Parent pid.
    pub parent: Option<Tid>,
    /// Physical base of this task's page directory.
    pub cr3: u32,
    /// The paper's `taskSPL`: 3 for ordinary processes, 2 after `init_PL`.
    ///
    /// The kernel rejects direct system calls when `task_spl == 2` and the
    /// calling code segment is at SPL 3 — that is what stops user-level
    /// extensions from bypassing their hosting application.
    pub task_spl: u8,
    /// User-space mappings.
    pub vas: Vas,
    /// Saved CPU context while not running.
    pub cpu: Cpu,
    /// Top of the per-task kernel stack (loaded into TSS ring 0).
    pub kstack_top: u32,
    /// Top of the ring-2 gate-entry stack, allocated by `init_PL` (loaded
    /// into TSS ring 2 so `lcall` through AppCallGate has a stack to push
    /// the caller state onto).
    pub ring2_stack_top: Option<u32>,
    /// Registered SIGSEGV handler entry point, if any.
    pub signal_handler: Option<u32>,
    /// Context saved when a signal handler was entered (restored by
    /// `sigreturn`).
    pub saved_sigcontext: Option<Box<Cpu>>,
    /// Exit status once the task has exited.
    pub exit_code: Option<i32>,
    /// Current program break (heap end).
    pub brk: u32,
    /// Per-process local descriptor table. Palladium's application call
    /// gates live here (the paper: gates reside "in the GDT or LDT"), so
    /// one process's gates are invisible to every other process.
    pub ldt: DescriptorTable,
    /// Incoming messages: (sender, payload). The substrate the RPC
    /// comparator's client/server pairs exchange requests over.
    pub mailbox: VecDeque<(Tid, Vec<u8>)>,
}

impl Task {
    /// True if the task has exited.
    pub fn is_zombie(&self) -> bool {
        self.exit_code.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_task_defaults() {
        let t = Task {
            tid: 1,
            parent: None,
            cr3: 0x10_0000,
            task_spl: 3,
            vas: Vas::new(),
            cpu: Cpu::default(),
            kstack_top: 0,
            ring2_stack_top: None,
            signal_handler: None,
            saved_sigcontext: None,
            exit_code: None,
            brk: 0,
            ldt: DescriptorTable::new(),
            mailbox: VecDeque::new(),
        };
        assert_eq!(t.task_spl, 3, "ordinary tasks start at SPL 3");
        assert!(!t.is_zombie());
    }
}
