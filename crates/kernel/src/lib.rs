//! `minikernel` — a miniature Linux-like kernel hosting the x86 simulator.
//!
//! Provides the substrate the Palladium paper assumes (Linux 2.0.34 with
//! the modifications of §4.5.2):
//!
//! * processes with the Figure 2 address-space layout ([`layout`],
//!   [`task`], [`vas`]),
//! * syscall dispatch through an interrupt gate, including the
//!   `taskSPL`-based rejection of direct syscalls from SPL 3 extension
//!   code ([`kernel`]),
//! * the Palladium syscalls `init_PL`, `set_range` and `set_call_gate`,
//! * the modified `mmap` (writable pages of promoted apps become PPL 0),
//! * `fork` inheritance and `exec` reset of segment/page privilege state,
//! * a Palladium-aware page-fault handler with SIGSEGV delivery, and
//! * a cycle cost model for kernel work, calibrated against the paper's
//!   published numbers ([`costs`]).
//!
//! The kernel runs natively ("ring 0 is the host"); guest code — user
//! programs and extensions — executes on the simulated CPU with full
//! hardware protection checks.

pub mod costs;
pub mod kernel;
pub mod layout;
pub mod task;
pub mod vas;

pub use costs::KernelCosts;
pub use kernel::{Budget, Kernel, KernelStats, Outcome, SpawnError, SIGSEGV};
pub use layout::{Selectors, KERNEL_BASE, USER_LIMIT, USER_TEXT};
pub use task::{Task, Tid};
pub use vas::{AreaKind, Vas, VmArea};

#[cfg(test)]
mod tests;
