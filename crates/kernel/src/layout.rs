//! Address-space layout and well-known selectors.
//!
//! Mirrors Figure 2 of the paper (the Linux 2.0 process layout): user
//! space spans 0–3 GB, the kernel 3–4 GB. User text loads at the
//! traditional `0x08048000`, shared libraries and extensions map into the
//! middle of the user range, and the stack grows down from just under
//! 3 GB.

use x86sim::desc::Selector;

/// Start of the kernel range (3 GB).
pub const KERNEL_BASE: u32 = 0xC000_0000;

/// Exclusive upper bound of user space (== [`KERNEL_BASE`]).
pub const USER_LIMIT: u32 = KERNEL_BASE;

/// Default load address of user text (Linux convention).
pub const USER_TEXT: u32 = 0x0804_8000;

/// Base of the region where shared libraries / user extensions are mapped.
pub const SHARED_LIB_BASE: u32 = 0x4000_0000;

/// Top of the user stack (grows down).
pub const USER_STACK_TOP: u32 = 0xBFFF_0000;

/// Pages eagerly mapped for a new user stack.
pub const USER_STACK_PAGES: u32 = 16;

/// Start of the kernel's dynamic virtual allocation region (modules,
/// extension segments, kernel stacks).
pub const KERNEL_VA_START: u32 = 0xD000_0000;

/// End of the kernel dynamic region.
pub const KERNEL_VA_END: u32 = 0xF000_0000;

/// First physical frame handed to the allocator (low memory is left to
/// fixed structures and debugging clarity).
pub const PHYS_POOL_START: u32 = 0x0100_0000;

/// Physical pool end (512 MB machine, as a comfortable superset of the
/// paper's 64 MB testbed).
pub const PHYS_POOL_END: u32 = 0x2000_0000;

/// The fixed GDT selectors the kernel installs at boot.
///
/// Layout follows Linux: kernel code/data at ring 0, user code/data at
/// ring 3, plus the two ring-2 segments Palladium adds for promoted
/// extensible applications (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Selectors {
    /// Ring-0 flat code.
    pub kcode: Selector,
    /// Ring-0 flat data.
    pub kdata: Selector,
    /// Ring-3 user code (0–3 GB).
    pub ucode: Selector,
    /// Ring-3 user data/stack (0–3 GB).
    pub udata: Selector,
    /// Ring-2 code for promoted extensible applications (0–3 GB).
    pub ucode2: Selector,
    /// Ring-2 data/stack for promoted extensible applications (0–3 GB).
    pub udata2: Selector,
}

/// Syscall vector (`int 0x80`, as on Linux).
pub const SYSCALL_VECTOR: u8 = 0x80;

/// Kernel-service vector for kernel extensions (§4.3's syscall-like
/// interface between extension segments and the core kernel).
pub const KSERVICE_VECTOR: u8 = 0x81;

/// Vector user code executes to return from a signal handler.
pub const SIGRETURN_VECTOR: u8 = 0x83;

/// Vector the kernel-extension return stub uses to yield back to the
/// (host) kernel after an extension invocation completes.
pub const KEXT_DONE_VECTOR: u8 = 0x84;

/// Vector the user-extension invoke stub executes (at SPL 2) when a
/// protected extension call has returned to the application.
pub const UEXT_DONE_VECTOR: u8 = 0x85;

/// Vector the Palladium runtime's SIGSEGV handler executes (at SPL 2) to
/// hand a faulting extension call back to the host application logic.
pub const UEXT_FAULT_VECTOR: u8 = 0x86;

/// Syscall numbers.
pub mod sys {
    /// `exit(code)`.
    pub const EXIT: u32 = 1;
    /// `fork()`.
    pub const FORK: u32 = 2;
    /// `waitpid(pid)` — non-blocking reap; returns the exit code or
    /// -EAGAIN while the child runs.
    pub const WAITPID: u32 = 7;
    /// `write(fd, buf, len)` — fd 1 is the console.
    pub const WRITE: u32 = 4;
    /// `getpid()`.
    pub const GETPID: u32 = 20;
    /// `brk(addr)`.
    pub const BRK: u32 = 45;
    /// `sigaction(handler)` — simplified single-handler form.
    pub const SIGACTION: u32 = 67;
    /// `mmap(hint, len, prot)` — anonymous only.
    pub const MMAP: u32 = 90;
    /// `munmap(addr, len)`.
    pub const MUNMAP: u32 = 91;
    /// `mprotect(addr, len, prot)`.
    pub const MPROTECT: u32 = 125;
    /// `cycles()` — read the machine cycle counter (a gettimeofday
    /// stand-in at 200 MHz).
    pub const CYCLES: u32 = 13;
    /// `msgsend(dest_tid, buf, len)` — copy a message into another task's
    /// mailbox (the substrate for intra-machine RPC).
    pub const MSGSEND: u32 = 210;
    /// `msgrecv(buf, maxlen)` — dequeue a message; -EAGAIN when empty.
    pub const MSGRECV: u32 = 211;
    /// Palladium: promote to SPL 2 and mark writable pages PPL 0 (§4.4.2).
    pub const INIT_PL: u32 = 200;
    /// Palladium: expose pages to extensions by marking them PPL 1.
    pub const SET_RANGE: u32 = 201;
    /// Palladium: export an application service through a call gate.
    pub const SET_CALL_GATE: u32 = 202;
}

/// Errno values returned (negated) by syscalls.
pub mod errno {
    /// Operation not permitted.
    pub const EPERM: i32 = 1;
    /// No such process / entity.
    pub const ESRCH: i32 = 3;
    /// Bad address.
    pub const EFAULT: i32 = 14;
    /// Invalid argument.
    pub const EINVAL: i32 = 22;
    /// Out of memory.
    pub const ENOMEM: i32 = 12;
    /// Try again (child still running).
    pub const EAGAIN: i32 = 11;
    /// No child processes.
    pub const ECHILD: i32 = 10;
    /// Function not implemented.
    pub const ENOSYS: i32 = 38;
}

/// Memory protection request bits for `mmap`/`mprotect`.
pub mod prot {
    /// Readable.
    pub const READ: u32 = 1;
    /// Writable.
    pub const WRITE: u32 = 2;
    /// Executable (informational; x86-32 paging cannot enforce it).
    pub const EXEC: u32 = 4;
}

// Compile-time layout checks: the user and kernel ranges must not
// overlap, and the physical pool must be page-aligned.
const _: () = {
    assert!(USER_TEXT < USER_LIMIT);
    assert!(USER_STACK_TOP < USER_LIMIT);
    assert!(SHARED_LIB_BASE < USER_STACK_TOP);
    assert!(KERNEL_VA_START >= KERNEL_BASE);
    assert!(KERNEL_VA_END > KERNEL_VA_START);
    assert!(PHYS_POOL_START.is_multiple_of(4096));
    assert!(PHYS_POOL_END.is_multiple_of(4096));
};
