//! Virtual-address-space bookkeeping (`vm_area`-style).

use crate::layout::{SHARED_LIB_BASE, USER_LIMIT};
use x86sim::mem::{page_base, PAGE_SIZE};

/// What a mapping is for — informational, used by fault reporting and by
/// `init_PL` to decide which pages to demote to PPL 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AreaKind {
    /// Program text/data/bss.
    Image,
    /// The heap (`brk` region).
    Heap,
    /// The stack.
    Stack,
    /// An anonymous `mmap`.
    Anon,
    /// A loaded shared library / user extension image.
    SharedLib,
    /// An extension's private stack or heap.
    ExtensionPrivate,
}

/// One contiguous mapped region (page-aligned).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmArea {
    /// Inclusive page-aligned start.
    pub start: u32,
    /// Exclusive end.
    pub end: u32,
    /// Writable mapping.
    pub writable: bool,
    /// Purpose of the mapping.
    pub kind: AreaKind,
    /// Demand-paged: pages materialize on first touch, and their PPL is
    /// decided *then* from the owning task's SPL — §4.5.2: "The actual
    /// marking is performed at the page fault time."
    pub demand: bool,
}

impl VmArea {
    /// Number of pages in the area.
    pub fn pages(&self) -> u32 {
        (self.end - self.start) / PAGE_SIZE
    }

    /// True if `addr` falls inside the area.
    pub fn contains(&self, addr: u32) -> bool {
        self.start <= addr && addr < self.end
    }
}

/// The ordered set of areas of one task's user address space.
#[derive(Debug, Clone, Default)]
pub struct Vas {
    areas: Vec<VmArea>,
    /// Next address tried for hint-less `mmap`.
    pub mmap_cursor: u32,
}

impl Vas {
    /// An empty address space.
    pub fn new() -> Vas {
        Vas {
            areas: Vec::new(),
            mmap_cursor: SHARED_LIB_BASE,
        }
    }

    /// All areas, in address order.
    pub fn areas(&self) -> &[VmArea] {
        &self.areas
    }

    /// Finds the area containing `addr`.
    pub fn find(&self, addr: u32) -> Option<&VmArea> {
        self.areas.iter().find(|a| a.contains(addr))
    }

    /// True if `[start, end)` overlaps an existing area.
    pub fn overlaps(&self, start: u32, end: u32) -> bool {
        self.areas.iter().any(|a| start < a.end && a.start < end)
    }

    /// Inserts an area; rejects overlap, misalignment, and ranges leaving
    /// user space.
    pub fn insert(&mut self, area: VmArea) -> Result<(), VasError> {
        if !area.start.is_multiple_of(PAGE_SIZE) || !area.end.is_multiple_of(PAGE_SIZE) {
            return Err(VasError::Misaligned);
        }
        if area.start >= area.end || area.end > USER_LIMIT {
            return Err(VasError::OutOfRange);
        }
        if self.overlaps(area.start, area.end) {
            return Err(VasError::Overlap);
        }
        let pos = self.areas.partition_point(|a| a.start < area.start);
        self.areas.insert(pos, area);
        Ok(())
    }

    /// Updates the writable flag of the area at index `pos` (mprotect of
    /// a whole area).
    pub fn set_writable(&mut self, pos: usize, writable: bool) {
        self.areas[pos].writable = writable;
    }

    /// Removes the area starting at `start`, returning it.
    pub fn remove(&mut self, start: u32) -> Option<VmArea> {
        let idx = self.areas.iter().position(|a| a.start == start)?;
        Some(self.areas.remove(idx))
    }

    /// Picks a free page-aligned range of `len` bytes for `mmap`,
    /// advancing the cursor.
    pub fn pick_free(&mut self, len: u32) -> Option<u32> {
        let len = len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let mut candidate = page_base(self.mmap_cursor);
        // Linear scan with wraparound protection; address spaces here are
        // tiny (tens of areas).
        for _ in 0..4096 {
            let end = candidate.checked_add(len)?;
            if end > USER_LIMIT {
                return None;
            }
            if !self.overlaps(candidate, end) {
                self.mmap_cursor = end;
                return Some(candidate);
            }
            let blocker = self
                .areas
                .iter()
                .filter(|a| candidate < a.end && a.start < end)
                .map(|a| a.end)
                .max()?;
            candidate = blocker;
        }
        None
    }

    /// Iterates the page base addresses of every mapped page.
    pub fn mapped_pages(&self) -> impl Iterator<Item = u32> + '_ {
        self.areas
            .iter()
            .flat_map(|a| (a.start..a.end).step_by(PAGE_SIZE as usize))
    }

    /// Iterates page bases of writable mappings (what `init_PL` demotes).
    pub fn writable_pages(&self) -> impl Iterator<Item = u32> + '_ {
        self.areas
            .iter()
            .filter(|a| a.writable)
            .flat_map(|a| (a.start..a.end).step_by(PAGE_SIZE as usize))
    }

    /// Total mapped pages.
    pub fn total_pages(&self) -> u32 {
        self.areas.iter().map(VmArea::pages).sum()
    }
}

/// Errors from address-space operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VasError {
    /// Range not page-aligned.
    Misaligned,
    /// Range empty or beyond user space.
    OutOfRange,
    /// Range overlaps an existing mapping.
    Overlap,
}

impl core::fmt::Display for VasError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VasError::Misaligned => write!(f, "range not page-aligned"),
            VasError::OutOfRange => write!(f, "range outside user space"),
            VasError::Overlap => write!(f, "range overlaps existing mapping"),
        }
    }
}

impl std::error::Error for VasError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn area(start: u32, end: u32, writable: bool) -> VmArea {
        VmArea {
            start,
            end,
            writable,
            kind: AreaKind::Anon,
            demand: false,
        }
    }

    #[test]
    fn insert_find_remove() {
        let mut v = Vas::new();
        v.insert(area(0x1000, 0x3000, true)).unwrap();
        v.insert(area(0x5000, 0x6000, false)).unwrap();
        assert!(v.find(0x1000).is_some());
        assert!(v.find(0x2FFF).is_some());
        assert!(v.find(0x3000).is_none());
        assert_eq!(v.total_pages(), 3);
        assert!(v.remove(0x1000).is_some());
        assert!(v.find(0x2000).is_none());
    }

    #[test]
    fn rejects_overlap_and_misalignment() {
        let mut v = Vas::new();
        v.insert(area(0x1000, 0x3000, true)).unwrap();
        assert_eq!(v.insert(area(0x2000, 0x4000, true)), Err(VasError::Overlap));
        assert_eq!(
            v.insert(area(0x4100, 0x5000, true)),
            Err(VasError::Misaligned)
        );
        assert_eq!(
            v.insert(area(0xF000_0000, 0xF000_1000, true)),
            Err(VasError::OutOfRange)
        );
        assert_eq!(
            v.insert(area(0x5000, 0x5000, true)),
            Err(VasError::OutOfRange)
        );
    }

    #[test]
    fn pick_free_skips_existing_areas() {
        let mut v = Vas::new();
        let a = v.pick_free(0x2000).unwrap();
        v.insert(area(a, a + 0x2000, true)).unwrap();
        let b = v.pick_free(0x1000).unwrap();
        assert!(b >= a + 0x2000, "second pick avoids the first");
        v.insert(area(b, b + 0x1000, true)).unwrap();
        assert!(!v.overlaps(b + 0x1000, b + 0x2000));
    }

    #[test]
    fn writable_pages_filters() {
        let mut v = Vas::new();
        v.insert(area(0x1000, 0x2000, true)).unwrap();
        v.insert(area(0x2000, 0x4000, false)).unwrap();
        assert_eq!(v.writable_pages().count(), 1);
        assert_eq!(v.mapped_pages().count(), 3);
    }

    #[test]
    fn areas_stay_sorted() {
        let mut v = Vas::new();
        v.insert(area(0x5000, 0x6000, true)).unwrap();
        v.insert(area(0x1000, 0x2000, true)).unwrap();
        v.insert(area(0x3000, 0x4000, true)).unwrap();
        let starts: Vec<u32> = v.areas().iter().map(|a| a.start).collect();
        assert_eq!(starts, vec![0x1000, 0x3000, 0x5000]);
    }
}
