//! The kernel proper: boot, task management, the syscall interface, the
//! Palladium-aware page-fault handler, and signals.
//!
//! The kernel is *host* code playing ring 0: interrupt vectors are host
//! hooks (see [`x86sim::machine::IdtGate`]), and kernel work is charged
//! from the [`KernelCosts`] table. Everything user- or extension-level
//! executes as guest code on the simulated CPU with full protection
//! checks.

use std::collections::BTreeMap;

use asm86::isa::{Reg, SegReg};
use asm86::Object;
use x86sim::desc::{Descriptor, Selector};
use x86sim::fault::Fault;
use x86sim::image::{self, kind, Dec, Enc, ImageBuilder, ImageView, RestoreError};
use x86sim::machine::{Exit, IdtGate, Machine};
use x86sim::mem::{FrameAlloc, PAGE_SIZE};
use x86sim::paging::{get_pte, map_page, pte, update_pte_flags};

use crate::costs::KernelCosts;
use crate::layout::{
    self, errno, prot, sys, Selectors, KERNEL_VA_END, KERNEL_VA_START, PHYS_POOL_END,
    PHYS_POOL_START, USER_LIMIT, USER_STACK_PAGES, USER_STACK_TOP, USER_TEXT,
};
use crate::task::{Task, Tid};
use crate::vas::{AreaKind, Vas, VmArea};

/// SIGSEGV number (as on Linux).
pub const SIGSEGV: u8 = 11;

/// An execution budget for [`Kernel::run_current`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// At most this many guest instructions.
    Insns(u64),
    /// Until the machine cycle counter advances by this much.
    Cycles(u64),
}

/// Why [`Kernel::run_current`] returned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome {
    /// The task called `exit`.
    Exited(i32),
    /// The task was killed by an unhandled signal.
    Signaled {
        /// Signal number (SIGSEGV for protection violations).
        sig: u8,
        /// The underlying hardware fault.
        fault: Fault,
    },
    /// Guest code invoked a host-hook vector the kernel does not service
    /// (e.g. the kernel-extension vectors) — the caller decides.
    Hook(u8),
    /// Guest `hlt` at CPL 0 (a kernel stub finished).
    Halted,
    /// The budget ran out.
    Budget,
}

/// Aggregate kernel statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// System calls dispatched.
    pub syscalls: u64,
    /// System calls rejected by the taskSPL/SPL-3 rule.
    pub syscalls_rejected: u64,
    /// Faults handled.
    pub faults: u64,
    /// Signals delivered to handlers.
    pub signals_delivered: u64,
    /// Tasks killed by signals.
    pub kills: u64,
    /// Forks performed.
    pub forks: u64,
    /// Context switches performed.
    pub context_switches: u64,
}

/// Errors from task creation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpawnError {
    /// Physical memory exhausted.
    OutOfMemory,
    /// The image failed to link.
    Link(String),
    /// The image overlaps a reserved range.
    BadLayout,
}

impl core::fmt::Display for SpawnError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SpawnError::OutOfMemory => write!(f, "out of physical memory"),
            SpawnError::Link(e) => write!(f, "link error: {e}"),
            SpawnError::BadLayout => write!(f, "image overlaps reserved range"),
        }
    }
}

impl std::error::Error for SpawnError {}

/// The kernel.
///
/// `Clone` forks the whole world — machine (copy-on-write frames, see
/// [`Machine::fork`]), frame allocator, tasks, kernel VA state — so a
/// warmed kernel can be snapshotted once and cloned per shard or
/// replica in microseconds instead of paying `Kernel::boot` each time.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// The simulated machine.
    pub m: Machine,
    /// Physical frame allocator.
    pub frames: FrameAlloc,
    /// Kernel work cost table.
    pub costs: KernelCosts,
    /// Well-known GDT selectors.
    pub sel: Selectors,
    /// Console output (fd 1).
    pub console: Vec<u8>,
    /// Statistics.
    pub stats: KernelStats,
    /// CPU-time limit (cycles) for a single extension invocation (§4.5.2);
    /// enforced by the Palladium runtime via timer-interrupt checks.
    pub extension_cycle_limit: u64,
    /// The most recent fault the kernel turned into a signal (not the
    /// demand-paging faults it services transparently). Carries the full
    /// structured [`FaultCause`](x86sim::FaultCause), so runtimes that learn of an abort
    /// through a guest trampoline (which can only pass two registers) can
    /// still report *why* containment fired.
    pub last_fault: Option<Fault>,
    /// Task table, shared copy-on-write across forked worlds (clones of
    /// a warmed kernel): a fork pays two pointer bumps here and
    /// materializes a private table on its first task mutation.
    tasks: std::sync::Arc<BTreeMap<Tid, Task>>,
    current: Option<Tid>,
    next_tid: Tid,
    /// Preallocated kernel page-directory entries, shared by every task.
    kernel_pdes: Vec<(u32, u32)>,
    /// Page directory used when no task is current.
    kernel_cr3: u32,
    /// Kernel dynamic VA bump pointer.
    kva_next: u32,
    /// Freed kernel VA ranges `(base, pages)`, reused exact-fit before the
    /// bump pointer advances (most recently freed first, so allocation is
    /// deterministic across reclaim cycles).
    kva_free: Vec<(u32, u32)>,
}

impl Kernel {
    /// Boots the kernel: builds the GDT/IDT, the shared kernel page
    /// tables, and enables paging.
    pub fn boot() -> Kernel {
        Kernel::boot_with_memory(PHYS_POOL_END - PHYS_POOL_START)
    }

    /// Boots with a bounded physical pool (for memory-pressure and
    /// failure-injection tests). `pool_bytes` is rounded down to whole
    /// pages; the kernel's own boot structures consume about 130 pages.
    pub fn boot_with_memory(pool_bytes: u32) -> Kernel {
        let mut m = Machine::new();
        let pool_end = PHYS_POOL_START + (pool_bytes & !(PAGE_SIZE - 1));
        let mut frames =
            FrameAlloc::new(PHYS_POOL_START, pool_end.max(PHYS_POOL_START + PAGE_SIZE));

        // Fixed GDT layout (see `layout::Selectors`).
        let kcode = m.gdt.push(Descriptor::flat_code(0));
        let kdata = m.gdt.push(Descriptor::flat_data(0));
        let ucode = m.gdt.push(Descriptor::code(0, USER_LIMIT, 3));
        let udata = m.gdt.push(Descriptor::data(0, USER_LIMIT, 3));
        let ucode2 = m.gdt.push(Descriptor::code(0, USER_LIMIT, 2));
        let udata2 = m.gdt.push(Descriptor::data(0, USER_LIMIT, 2));
        let sel = Selectors {
            kcode: Selector::new(kcode, false, 0),
            kdata: Selector::new(kdata, false, 0),
            ucode: Selector::new(ucode, false, 3),
            udata: Selector::new(udata, false, 3),
            ucode2: Selector::new(ucode2, false, 2),
            udata2: Selector::new(udata2, false, 2),
        };

        // IDT host hooks.
        m.idt[layout::SYSCALL_VECTOR as usize] = Some(IdtGate { dpl: 3 });
        m.idt[layout::KSERVICE_VECTOR as usize] = Some(IdtGate { dpl: 1 });
        m.idt[layout::SIGRETURN_VECTOR as usize] = Some(IdtGate { dpl: 3 });
        m.idt[layout::KEXT_DONE_VECTOR as usize] = Some(IdtGate { dpl: 0 });
        m.idt[layout::UEXT_DONE_VECTOR as usize] = Some(IdtGate { dpl: 2 });
        m.idt[layout::UEXT_FAULT_VECTOR as usize] = Some(IdtGate { dpl: 2 });

        // Preallocate page tables covering the kernel dynamic region, so
        // every task's page directory can share them by copying PDEs.
        let mut kernel_pdes = Vec::new();
        let mut lin = KERNEL_VA_START;
        while lin < KERNEL_VA_END {
            let pt = frames.alloc().expect("boot: page-table frame");
            m.mem.zero(pt, PAGE_SIZE);
            // Supervisor-only at the directory level: the U/S of kernel
            // mappings can never be granted by a PTE alone.
            kernel_pdes.push((lin >> 22, pt | pte::P | pte::RW));
            lin += 0x40_0000;
        }

        // A kernel-only page directory for when no task is current.
        let kernel_cr3 = frames.alloc().expect("boot: kernel cr3");
        m.mem.zero(kernel_cr3, PAGE_SIZE);
        for (idx, val) in &kernel_pdes {
            m.mem.write_u32(kernel_cr3 + idx * 4, *val);
        }
        m.mmu.set_cr3(kernel_cr3);
        m.mmu.enabled = true;

        Kernel {
            m,
            frames,
            costs: KernelCosts::default(),
            sel,
            console: Vec::new(),
            stats: KernelStats::default(),
            extension_cycle_limit: 10_000_000,
            last_fault: None,
            tasks: std::sync::Arc::new(BTreeMap::new()),
            current: None,
            next_tid: 1,
            kernel_pdes,
            kernel_cr3,
            kva_next: KERNEL_VA_START,
            kva_free: Vec::new(),
        }
    }

    // ----- kernel memory ----------------------------------------------------

    /// Allocates `n` pages of kernel virtual memory (supervisor,
    /// writable), visible in every address space. Returns the linear base.
    ///
    /// A range freed by [`free_kernel_pages`](Self::free_kernel_pages) is
    /// reused when its page count matches exactly (most recently freed
    /// first); otherwise the bump pointer advances. Either way the pages
    /// are backed by fresh zeroed frames.
    pub fn alloc_kernel_pages(&mut self, n: u32) -> Result<u32, SpawnError> {
        // Reserve the frames first so a mid-range failure cannot leave a
        // half-mapped region behind.
        let mut frames = Vec::with_capacity(n as usize);
        for _ in 0..n {
            match self.frames.alloc() {
                Some(f) => frames.push(f),
                None => {
                    for f in frames {
                        self.frames.free(f);
                    }
                    return Err(SpawnError::OutOfMemory);
                }
            }
        }

        let base = match self.kva_free.iter().rposition(|&(_, pages)| pages == n) {
            Some(pos) => self.kva_free.remove(pos).0,
            None => {
                let base = self.kva_next;
                if base + n * PAGE_SIZE > KERNEL_VA_END {
                    for f in frames {
                        self.frames.free(f);
                    }
                    return Err(SpawnError::OutOfMemory);
                }
                self.kva_next = base + n * PAGE_SIZE;
                base
            }
        };

        for (i, frame) in frames.into_iter().enumerate() {
            let lin = base + i as u32 * PAGE_SIZE;
            self.m.mem.zero(frame, PAGE_SIZE);
            let (_, pde_val) = self.kernel_pdes[((lin - KERNEL_VA_START) >> 22) as usize];
            let pt = pde_val & pte::FRAME;
            self.m
                .mem
                .write_u32(pt + ((lin >> 12) & 0x3FF) * 4, frame | pte::P | pte::RW);
            self.m.mmu.flush_page(lin);
        }
        Ok(base)
    }

    /// Frees `n` pages of kernel virtual memory previously returned by
    /// [`alloc_kernel_pages`](Self::alloc_kernel_pages): each backing
    /// frame returns to the frame allocator, the shared-kernel-page-table
    /// PTE is cleared (visible in every address space), and the VA range
    /// is recorded for exact-fit reuse. Pages already unmapped (e.g. by
    /// fault injection) are skipped, so the call is idempotent per page.
    pub fn free_kernel_pages(&mut self, base: u32, n: u32) {
        debug_assert_eq!(base & (PAGE_SIZE - 1), 0, "base must be page-aligned");
        debug_assert!(base >= KERNEL_VA_START && base + n * PAGE_SIZE <= KERNEL_VA_END);
        for i in 0..n {
            let lin = base + i * PAGE_SIZE;
            let (_, pde_val) = self.kernel_pdes[((lin - KERNEL_VA_START) >> 22) as usize];
            let pt = pde_val & pte::FRAME;
            let pte_addr = pt + ((lin >> 12) & 0x3FF) * 4;
            let entry = self.m.mem.read_u32(pte_addr);
            if entry & pte::P == 0 {
                continue;
            }
            self.m.mem.write_u32(pte_addr, 0);
            self.frames.free(entry & pte::FRAME);
            self.m.mmu.flush_page(lin);
        }
        if !self.kva_free.contains(&(base, n)) {
            self.kva_free.push((base, n));
        }
    }

    /// Whether a freed kernel VA range is still awaiting reuse. While it
    /// is, every page in it must be unmapped — the leak audit's
    /// distinction between "returned" and "recycled by a later owner".
    pub fn kernel_range_free(&self, base: u32, pages: u32) -> bool {
        self.kva_free.contains(&(base, pages))
    }

    /// Whether a kernel VA page is currently mapped — the leak audit uses
    /// this to prove a reclaimed segment left nothing behind.
    pub fn kernel_page_mapped(&self, lin: u32) -> bool {
        if !(KERNEL_VA_START..KERNEL_VA_END).contains(&lin) {
            return false;
        }
        let (_, pde_val) = self.kernel_pdes[((lin - KERNEL_VA_START) >> 22) as usize];
        let pt = pde_val & pte::FRAME;
        self.m.mem.read_u32(pt + ((lin >> 12) & 0x3FF) * 4) & pte::P != 0
    }

    /// Writes bytes into kernel virtual memory. Returns false when any
    /// byte falls on an unmapped kernel VA (e.g. a mapping revoked by
    /// fault injection) — callers on module-load paths surface this as a
    /// structured link error rather than panicking the host.
    #[must_use]
    pub fn kwrite(&mut self, lin: u32, data: &[u8]) -> bool {
        self.m.host_write(lin, data)
    }

    /// Reads bytes from kernel virtual memory.
    pub fn kread(&self, lin: u32, len: usize) -> Vec<u8> {
        self.m.host_read(lin, len)
    }

    // ----- task management --------------------------------------------------

    /// The current task id, if any.
    pub fn current_tid(&self) -> Option<Tid> {
        self.current
    }

    /// Borrows a task.
    pub fn task(&self, tid: Tid) -> &Task {
        &self.tasks[&tid]
    }

    /// Mutably borrows a task (splitting a task table still shared with
    /// a forked world — the copy-on-write choke point for task state).
    pub fn task_mut(&mut self, tid: Tid) -> &mut Task {
        std::sync::Arc::make_mut(&mut self.tasks)
            .get_mut(&tid)
            .expect("no such task")
    }

    /// All live task ids.
    pub fn tids(&self) -> Vec<Tid> {
        self.tasks.keys().copied().collect()
    }

    /// Creates a task from a linked program object.
    ///
    /// The image is linked at [`USER_TEXT`] against `externs` and entered
    /// at its `_start` (or `entry`, or offset 0) symbol at SPL 3.
    pub fn spawn(
        &mut self,
        obj: &Object,
        externs: &BTreeMap<String, u32>,
    ) -> Result<Tid, SpawnError> {
        let tid = self.next_tid;
        self.next_tid += 1;

        let cr3 = self.new_page_directory()?;
        let mut vas = Vas::new();
        let brk = self.load_image_into(cr3, &mut vas, obj, externs, USER_TEXT)?;

        // Stack.
        let stack_base = USER_STACK_TOP - USER_STACK_PAGES * PAGE_SIZE;
        self.map_user_range(
            cr3,
            &mut vas,
            stack_base,
            USER_STACK_PAGES,
            true,
            true,
            AreaKind::Stack,
        )?;

        // Kernel stack.
        let kstack = self.alloc_kernel_pages(2)?;
        let kstack_top = kstack + 2 * PAGE_SIZE;

        let entry_off = obj
            .symbol("_start")
            .or_else(|| obj.symbol("entry"))
            .unwrap_or(0);

        let mut cpu = x86sim::machine::Cpu::default();
        cpu.set_reg(Reg::Esp, USER_STACK_TOP);
        cpu.eip = USER_TEXT + entry_off;
        let task = Task {
            tid,
            parent: self.current,
            cr3,
            task_spl: 3,
            vas,
            cpu,
            kstack_top,
            ring2_stack_top: None,
            signal_handler: None,
            saved_sigcontext: None,
            exit_code: None,
            brk,
            ldt: x86sim::desc::DescriptorTable::new(),
            mailbox: std::collections::VecDeque::new(),
        };
        std::sync::Arc::make_mut(&mut self.tasks).insert(tid, task);

        // Establish segment caches for the saved context by temporarily
        // switching (also sets CPL 3).
        let prev = self.current;
        self.switch_to(tid);
        self.force_user_segments(3);
        self.save_current();
        if let Some(p) = prev {
            self.switch_to(p);
        }
        Ok(tid)
    }

    fn force_user_segments(&mut self, ring: u8) {
        // SS must match CPL exactly; DS/ES stay at the DPL 3 user data
        // segment even for promoted (SPL 2) applications — a DPL 3 data
        // segment is loadable from CPL 2, and keeping it avoids the
        // hardware nulling DS on every outward transfer to an extension
        // (and the 12-cycle reload that would force on the return path).
        let (code, stack) = match ring {
            2 => (self.sel.ucode2, self.sel.udata2),
            _ => (self.sel.ucode, self.sel.udata),
        };
        self.m.force_seg_from_table(SegReg::Cs, code);
        self.m.force_seg_from_table(SegReg::Ss, stack);
        self.m.force_seg_from_table(SegReg::Ds, self.sel.udata);
        self.m.force_seg_from_table(SegReg::Es, self.sel.udata);
    }

    fn new_page_directory(&mut self) -> Result<u32, SpawnError> {
        let pd = self.frames.alloc().ok_or(SpawnError::OutOfMemory)?;
        self.m.mem.zero(pd, PAGE_SIZE);
        for (idx, val) in &self.kernel_pdes {
            self.m.mem.write_u32(pd + idx * 4, *val);
        }
        Ok(pd)
    }

    fn load_image_into(
        &mut self,
        cr3: u32,
        vas: &mut Vas,
        obj: &Object,
        externs: &BTreeMap<String, u32>,
        base: u32,
    ) -> Result<u32, SpawnError> {
        let image = obj
            .link(base, externs)
            .map_err(|e| SpawnError::Link(e.to_string()))?;
        let pages = (image.len() as u32).div_ceil(PAGE_SIZE).max(1);
        self.map_user_range(cr3, vas, base, pages, true, true, AreaKind::Image)?;
        // Copy the bytes through the new mapping.
        for (i, chunk) in image.chunks(PAGE_SIZE as usize).enumerate() {
            let lin = base + (i as u32) * PAGE_SIZE;
            let p = get_pte(&self.m.mem, cr3, lin).expect("just mapped") & pte::FRAME;
            self.m.mem.write_bytes(p, chunk);
        }
        Ok(base + pages * PAGE_SIZE)
    }

    /// Maps `pages` pages at `start` in the given address space, recording
    /// the area. `user_visible` sets the PTE U/S bit (PPL 1).
    #[allow(clippy::too_many_arguments)]
    pub fn map_user_range(
        &mut self,
        cr3: u32,
        vas: &mut Vas,
        start: u32,
        pages: u32,
        writable: bool,
        user_visible: bool,
        kind: AreaKind,
    ) -> Result<(), SpawnError> {
        vas.insert(VmArea {
            start,
            end: start + pages * PAGE_SIZE,
            writable,
            kind,
            demand: false,
        })
        .map_err(|_| SpawnError::BadLayout)?;
        let mut flags = 0;
        if writable {
            flags |= pte::RW;
        }
        if user_visible {
            flags |= pte::US;
        }
        for i in 0..pages {
            let frame = self.frames.alloc().ok_or(SpawnError::OutOfMemory)?;
            self.m.mem.zero(frame, PAGE_SIZE);
            if !map_page(
                &mut self.m.mem,
                &mut self.frames,
                cr3,
                start + i * PAGE_SIZE,
                frame,
                flags,
            ) {
                return Err(SpawnError::OutOfMemory);
            }
        }
        Ok(())
    }

    /// Saves the running CPU context (and LDT) into the current task.
    pub fn save_current(&mut self) {
        if let Some(tid) = self.current {
            let cpu = self.m.cpu.clone();
            let ldt = self.m.ldt.take();
            let t = self.task_mut(tid);
            t.cpu = cpu;
            if let Some(l) = ldt {
                t.ldt = l;
            }
        }
    }

    /// Switches to `tid`: saves the current context, loads the target's,
    /// reloads CR3 (flushing the TLB) and the TSS stack slots.
    pub fn switch_to(&mut self, tid: Tid) {
        if self.current == Some(tid) {
            return;
        }
        self.save_current();
        let (cpu, cr3, kstack_top, ring2, ldt) = {
            let t = self.task_mut(tid);
            (
                t.cpu.clone(),
                t.cr3,
                t.kstack_top,
                t.ring2_stack_top,
                std::mem::take(&mut t.ldt),
            )
        };
        self.m.cpu = cpu;
        self.m.ldt = Some(ldt);
        self.m.mmu.set_cr3(cr3);
        self.m.tss.stack[0] = (self.sel.kdata, kstack_top);
        if let Some(top) = ring2 {
            self.m.tss.stack[2] = (self.sel.udata2, top);
        } else {
            self.m.tss.stack[2] = (Selector(0), 0);
        }
        self.m.charge(self.costs.context_switch);
        self.stats.context_switches += 1;
        self.current = Some(tid);
    }

    /// Runs the current task until it exits, is killed, yields to an
    /// unhandled hook, or exhausts `budget`. Syscalls, sigreturns and
    /// faults are serviced internally.
    pub fn run_current(&mut self, budget: Budget) -> Outcome {
        let deadline = match budget {
            Budget::Cycles(c) => Some(self.m.cycles() + c),
            Budget::Insns(_) => None,
        };
        let mut insns_left = match budget {
            Budget::Insns(n) => n,
            Budget::Cycles(_) => u64::MAX,
        };
        loop {
            let before = self.m.insns();
            let exit = match deadline {
                Some(d) => self.m.run_until_cycles(d),
                None => self.m.run(insns_left),
            };
            insns_left = insns_left.saturating_sub(self.m.insns() - before);
            match exit {
                Exit::Hlt => return Outcome::Halted,
                Exit::InsnLimit | Exit::CycleLimit => return Outcome::Budget,
                Exit::IntHook(v) if v == layout::SYSCALL_VECTOR => {
                    if let Some(out) = self.handle_syscall() {
                        return out;
                    }
                    self.m.charge_iret_resume();
                }
                Exit::IntHook(v) if v == layout::SIGRETURN_VECTOR => {
                    if let Some(out) = self.sigreturn() {
                        return out;
                    }
                }
                Exit::IntHook(v) => return Outcome::Hook(v),
                Exit::Fault(f) => {
                    if let Some(out) = self.handle_fault(f) {
                        return out;
                    }
                }
            }
            if insns_left == 0 {
                return Outcome::Budget;
            }
        }
    }

    /// Round-robin scheduler: runs every live task in turn with a
    /// per-quantum budget until all have exited or `max_rounds` passes
    /// complete. Returns (tid, outcome) events in scheduling order.
    ///
    /// The paper's workloads are single-process, but fork/waitpid tests
    /// and the CGI example need a second task to make progress; this is
    /// the minimal Linux-style scheduler loop (each switch pays the
    /// context-switch cost, including the CR3 reload and TLB flush).
    pub fn run_all(&mut self, quantum: Budget, max_rounds: u32) -> Vec<(Tid, Outcome)> {
        let mut events = Vec::new();
        for _ in 0..max_rounds {
            let live: Vec<Tid> = self
                .tasks
                .iter()
                .filter(|(_, t)| !t.is_zombie())
                .map(|(tid, _)| *tid)
                .collect();
            if live.is_empty() {
                break;
            }
            for tid in live {
                if self.task(tid).is_zombie() {
                    continue; // reaped or exited earlier this round
                }
                self.switch_to(tid);
                let out = self.run_current(quantum);
                match out {
                    Outcome::Budget => {} // quantum expired; rotate
                    other => events.push((tid, other)),
                }
            }
        }
        events
    }

    // ----- syscalls ----------------------------------------------------------

    fn cur(&self) -> &Task {
        &self.tasks[&self.current.expect("no current task")]
    }

    fn handle_syscall(&mut self) -> Option<Outcome> {
        self.stats.syscalls += 1;
        let nr = self.m.cpu.reg(Reg::Eax);
        let (b, c, d) = (
            self.m.cpu.reg(Reg::Ebx),
            self.m.cpu.reg(Reg::Ecx),
            self.m.cpu.reg(Reg::Edx),
        );
        // The Palladium syscall gate (§4.5.2): reject direct syscalls from
        // SPL 3 code when the process has promoted itself to SPL 2 —
        // user-level extensions must go through application services.
        let cs_rpl = self.m.cpu.seg(SegReg::Cs).selector.rpl();
        if self.cur().task_spl == 2 && cs_rpl == 3 {
            self.stats.syscalls_rejected += 1;
            self.m.cpu.set_reg(Reg::Eax, (-errno::EPERM) as u32);
            return None;
        }
        self.m.charge(self.costs.syscall_dispatch);

        let ret: i32 = match nr {
            sys::EXIT => {
                let code = b as i32;
                let tid = self.current.unwrap();
                self.task_mut(tid).exit_code = Some(code);
                return Some(Outcome::Exited(code));
            }
            sys::WRITE => self.sys_write(b, c, d),
            sys::GETPID => self.current.unwrap() as i32,
            sys::BRK => self.sys_brk(b),
            sys::SIGACTION => {
                let tid = self.current.unwrap();
                self.task_mut(tid).signal_handler = if b == 0 { None } else { Some(b) };
                0
            }
            sys::MMAP => self.sys_mmap(b, c, d),
            sys::MUNMAP => self.sys_munmap(b, c),
            sys::MPROTECT => self.sys_mprotect(b, c, d),
            sys::WAITPID => self.sys_waitpid(b),
            sys::CYCLES => self.m.cycles() as i32,
            sys::MSGSEND => self.sys_msgsend(b, c, d),
            sys::MSGRECV => self.sys_msgrecv(b, c),
            sys::INIT_PL => self.sys_init_pl(cs_rpl),
            sys::SET_RANGE => self.sys_set_range(b, c, cs_rpl),
            sys::SET_CALL_GATE => self.sys_set_call_gate(b, cs_rpl),
            sys::FORK => self.sys_fork(),
            _ => -errno::ENOSYS,
        };
        self.m.cpu.set_reg(Reg::Eax, ret as u32);
        None
    }

    fn sys_write(&mut self, fd: u32, buf: u32, len: u32) -> i32 {
        if fd != 1 {
            return -errno::EINVAL;
        }
        if len > 1 << 20 || buf.checked_add(len).is_none_or(|e| e > USER_LIMIT) {
            return -errno::EFAULT;
        }
        let data = self.m.host_read(buf, len as usize);
        self.console.extend_from_slice(&data);
        // Copy cost: ~4 bytes/cycle kernel copy.
        self.m.charge((len as u64) / 4 + 40);
        len as i32
    }

    fn sys_brk(&mut self, new_brk: u32) -> i32 {
        let tid = self.current.unwrap();
        let (old_brk, cr3, spl) = {
            let t = self.task(tid);
            (t.brk, t.cr3, t.task_spl)
        };
        if new_brk == 0 {
            return old_brk as i32;
        }
        if new_brk < old_brk || new_brk > layout::SHARED_LIB_BASE {
            return -errno::EINVAL;
        }
        let start = old_brk.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let end = new_brk.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        if end > start {
            let pages = (end - start) / PAGE_SIZE;
            // Heap pages are writable: PPL 0 for promoted apps (§4.5.2).
            let user_visible = spl != 2;
            let mut vas = std::mem::take(&mut self.task_mut(tid).vas);
            let r = self.map_user_range(
                cr3,
                &mut vas,
                start,
                pages,
                true,
                user_visible,
                AreaKind::Heap,
            );
            self.task_mut(tid).vas = vas;
            if r.is_err() {
                return -errno::ENOMEM;
            }
        }
        self.task_mut(tid).brk = new_brk;
        new_brk as i32
    }

    fn sys_mmap(&mut self, hint: u32, len: u32, prot_bits: u32) -> i32 {
        if len == 0 || len > 1 << 28 {
            return -errno::EINVAL;
        }
        let tid = self.current.unwrap();
        let (cr3, spl) = {
            let t = self.task(tid);
            (t.cr3, t.task_spl)
        };
        let pages = len.div_ceil(PAGE_SIZE);
        let writable = prot_bits & prot::WRITE != 0;
        let mut vas = std::mem::take(&mut self.task_mut(tid).vas);
        let addr = if hint != 0 {
            if !hint.is_multiple_of(PAGE_SIZE) {
                self.task_mut(tid).vas = vas;
                return -errno::EINVAL;
            }
            hint
        } else {
            match vas.pick_free(pages * PAGE_SIZE) {
                Some(a) => a,
                None => {
                    self.task_mut(tid).vas = vas;
                    return -errno::ENOMEM;
                }
            }
        };
        // §4.5.2's modified mmap: the region is recorded now; each page
        // materializes at page-fault time, where its PPL is decided (a
        // writable page of an SPL 2 process becomes PPL 0).
        let _ = (cr3, spl);
        let r = vas
            .insert(VmArea {
                start: addr,
                end: addr + pages * PAGE_SIZE,
                writable,
                kind: AreaKind::Anon,
                demand: true,
            })
            .map_err(|_| ());
        self.task_mut(tid).vas = vas;
        match r {
            Ok(()) => {
                self.m
                    .charge(self.costs.mmap_base + self.costs.mmap_per_page * pages as u64);
                addr as i32
            }
            Err(_) => -errno::ENOMEM,
        }
    }

    fn sys_munmap(&mut self, addr: u32, len: u32) -> i32 {
        if !addr.is_multiple_of(PAGE_SIZE) || len == 0 {
            return -errno::EINVAL;
        }
        let tid = self.current.unwrap();
        let cr3 = self.task(tid).cr3;
        // Only whole areas starting at `addr` with a matching size unmap
        // (the common mmap/munmap pairing; partial unmap is not needed by
        // any caller here).
        let end = addr + len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let area = match self.task(tid).vas.find(addr) {
            Some(a) if a.start == addr && a.end == end => *a,
            _ => return -errno::EINVAL,
        };
        let mut lin = area.start;
        while lin < area.end {
            // Demand pages that never materialized have no PTE.
            let _ = x86sim::paging::unmap_page(&mut self.m.mem, cr3, lin);
            lin += PAGE_SIZE;
        }
        self.m.mmu.flush();
        self.task_mut(tid).vas.remove(addr);
        0
    }

    fn sys_msgsend(&mut self, dest: u32, buf: u32, len: u32) -> i32 {
        if len > 64 * 1024 || buf.checked_add(len).is_none_or(|e| e > USER_LIMIT) {
            return -errno::EFAULT;
        }
        if !self.tasks.contains_key(&dest) {
            return -errno::ESRCH;
        }
        let me = self.current.unwrap();
        let data = self.m.host_read(buf, len as usize);
        // One user->kernel copy plus queueing.
        self.m.charge(len as u64 / 4 + 120);
        self.task_mut(dest).mailbox.push_back((me, data));
        len as i32
    }

    fn sys_msgrecv(&mut self, buf: u32, maxlen: u32) -> i32 {
        if buf.checked_add(maxlen).is_none_or(|e| e > USER_LIMIT) {
            return -errno::EFAULT;
        }
        let me = self.current.unwrap();
        let Some((sender, data)) = self.task_mut(me).mailbox.pop_front() else {
            return -errno::EAGAIN;
        };
        let n = data.len().min(maxlen as usize);
        // Kernel->user copy.
        self.m.charge(n as u64 / 4 + 120);
        if !self.m.host_write(buf, &data[..n]) {
            // The buffer lies in an unmaterialized demand region (or was
            // never mapped): a real kernel's copy-to-user would fault.
            // Surface EFAULT and put the message back so it is not lost.
            self.task_mut(me).mailbox.push_front((sender, data));
            return -errno::EFAULT;
        }
        n as i32
    }

    fn sys_waitpid(&mut self, pid: u32) -> i32 {
        let me = self.current.unwrap();
        let Some(child) = self.tasks.get(&pid) else {
            return -errno::ECHILD;
        };
        if child.parent != Some(me) {
            return -errno::ECHILD;
        }
        match child.exit_code {
            // Reap: remove the zombie.
            Some(code) => {
                std::sync::Arc::make_mut(&mut self.tasks).remove(&pid);
                code
            }
            None => -errno::EAGAIN,
        }
    }

    fn sys_mprotect(&mut self, addr: u32, len: u32, prot_bits: u32) -> i32 {
        if !addr.is_multiple_of(PAGE_SIZE) || len == 0 {
            return -errno::EINVAL;
        }
        let end = match addr.checked_add(len.div_ceil(PAGE_SIZE) * PAGE_SIZE) {
            Some(e) if e <= USER_LIMIT => e,
            _ => return -errno::EINVAL,
        };
        let tid = self.current.unwrap();
        let cr3 = self.task(tid).cr3;
        // Every page must be mapped and inside this task's areas.
        let mut lin = addr;
        while lin < end {
            if self.task(tid).vas.find(lin).is_none() {
                return -errno::EINVAL;
            }
            lin += PAGE_SIZE;
        }
        let writable = prot_bits & prot::WRITE != 0;
        let mut lin = addr;
        while lin < end {
            let (set, clear) = if writable { (pte::RW, 0) } else { (0, pte::RW) };
            // Not-yet-materialized demand pages have no PTE; the area
            // update below covers them.
            update_pte_flags(&mut self.m.mem, cr3, lin, set, clear);
            lin += PAGE_SIZE;
        }
        // When the range covers a whole area, update its protection so
        // future demand faults honour it (real kernels split VMAs for
        // partial ranges; whole-area is all our callers need).
        {
            let t = self.task_mut(tid);
            if let Some(pos) = t
                .vas
                .areas()
                .iter()
                .position(|a| a.start == addr && a.end == end)
            {
                t.vas.set_writable(pos, writable);
            }
        }
        self.m.mmu.flush();
        0
    }

    fn sys_init_pl(&mut self, cs_rpl: u8) -> i32 {
        let tid = self.current.unwrap();
        if self.task(tid).task_spl != 3 || cs_rpl != 3 {
            return -errno::EPERM;
        }
        let cr3 = self.task(tid).cr3;

        // Demote every writable page to PPL 0.
        let pages: Vec<u32> = self.task(tid).vas.writable_pages().collect();
        for lin in &pages {
            update_pte_flags(&mut self.m.mem, cr3, *lin, 0, pte::US);
        }
        self.m.charge(self.costs.ppl_mark(pages.len() as u32));
        self.m.mmu.flush();

        // Allocate the ring-2 gate-entry stack the TSS will point at.
        let mut vas = std::mem::take(&mut self.task_mut(tid).vas);
        let gate_stack = vas.pick_free(2 * PAGE_SIZE);
        let r = gate_stack.and_then(|base| {
            self.map_user_range(
                cr3,
                &mut vas,
                base,
                2,
                true,
                false,
                AreaKind::ExtensionPrivate,
            )
            .ok()
            .map(|_| base)
        });
        self.task_mut(tid).vas = vas;
        let Some(base) = r else {
            return -errno::ENOMEM;
        };
        let top = base + 2 * PAGE_SIZE;
        self.task_mut(tid).ring2_stack_top = Some(top);
        self.m.tss.stack[2] = (self.sel.udata2, top);

        // Promote: SPL 3 -> SPL 2. The ring-2 segments span the same 0-3GB
        // range, so EIP/ESP remain valid.
        self.task_mut(tid).task_spl = 2;
        self.force_user_segments(2);
        0
    }

    fn sys_set_range(&mut self, addr: u32, len: u32, cs_rpl: u8) -> i32 {
        let tid = self.current.unwrap();
        // Only the promoted application itself may expose pages (§4.5.2's
        // mprotect/PPL-tamper rule).
        if self.task(tid).task_spl != 2 || cs_rpl > 2 {
            return -errno::EPERM;
        }
        if !addr.is_multiple_of(PAGE_SIZE) || len == 0 {
            return -errno::EINVAL;
        }
        let end = match addr.checked_add(len.div_ceil(PAGE_SIZE) * PAGE_SIZE) {
            Some(e) if e <= USER_LIMIT => e,
            _ => return -errno::EINVAL,
        };
        let cr3 = self.task(tid).cr3;
        let mut lin = addr;
        let mut pages = 0;
        while lin < end {
            if self.task(tid).vas.find(lin).is_none() {
                return -errno::EINVAL;
            }
            // Demand pages must exist before their PPL can be raised.
            if get_pte(&self.m.mem, cr3, lin).is_none() && !self.demand_map(lin) {
                return -errno::EFAULT;
            }
            update_pte_flags(&mut self.m.mem, cr3, lin, pte::US, 0);
            pages += 1;
            lin += PAGE_SIZE;
        }
        self.m.charge(self.costs.ppl_mark(pages));
        self.m.mmu.flush();
        0
    }

    fn sys_set_call_gate(&mut self, func: u32, cs_rpl: u8) -> i32 {
        let tid = self.current.unwrap();
        if self.task(tid).task_spl != 2 || cs_rpl != 2 {
            return -errno::EPERM;
        }
        if func >= USER_LIMIT {
            return -errno::EFAULT;
        }
        // Per-process gates live in the LDT (the paper: "call gates
        // themselves reside in the GDT/LDT"): other processes cannot even
        // name them.
        let ldt = self
            .m
            .ldt
            .get_or_insert_with(x86sim::desc::DescriptorTable::new);
        let idx = ldt.push(Descriptor::call_gate(self.sel.ucode2, func, 3));
        self.m.charge(self.costs.set_call_gate);
        Selector::new(idx, true, 3).0 as i32
    }

    fn sys_fork(&mut self) -> i32 {
        let parent_tid = self.current.unwrap();
        self.stats.forks += 1;
        self.m.charge(self.costs.fork);

        let child_tid = self.next_tid;
        self.next_tid += 1;

        let child_cr3 = match self.new_page_directory() {
            Ok(pd) => pd,
            Err(_) => return -errno::ENOMEM,
        };
        // Copy every user page: contents and exact PTE flags, so PPL
        // markings are inherited (§4.5.2).
        let parent_cr3 = self.task(parent_tid).cr3;
        let pages: Vec<u32> = self.task(parent_tid).vas.mapped_pages().collect();
        for lin in pages {
            let Some(p) = get_pte(&self.m.mem, parent_cr3, lin) else {
                continue;
            };
            let flags = p & !pte::FRAME & !(pte::A | pte::D);
            let Some(frame) = self.frames.alloc() else {
                return -errno::ENOMEM;
            };
            let data = self.m.mem.read_bytes(p & pte::FRAME, PAGE_SIZE as usize);
            self.m.mem.write_bytes(frame, &data);
            if !map_page(
                &mut self.m.mem,
                &mut self.frames,
                child_cr3,
                lin,
                frame,
                flags,
            ) {
                return -errno::ENOMEM;
            }
        }

        let kstack = match self.alloc_kernel_pages(2) {
            Ok(k) => k,
            Err(_) => return -errno::ENOMEM,
        };
        let parent = self.task(parent_tid).clone();
        let mut child_cpu = self.m.cpu.clone();
        child_cpu.set_reg(Reg::Eax, 0);
        let child = Task {
            tid: child_tid,
            parent: Some(parent_tid),
            cr3: child_cr3,
            task_spl: parent.task_spl,
            vas: parent.vas.clone(),
            cpu: child_cpu,
            kstack_top: kstack + 2 * PAGE_SIZE,
            ring2_stack_top: parent.ring2_stack_top,
            signal_handler: parent.signal_handler,
            saved_sigcontext: None,
            exit_code: None,
            brk: parent.brk,
            // The LDT (with its call gates) is inherited, like the rest
            // of the privilege state (§4.5.2).
            ldt: parent.ldt.clone(),
            // Pending messages stay with the parent.
            mailbox: std::collections::VecDeque::new(),
        };
        std::sync::Arc::make_mut(&mut self.tasks).insert(child_tid, child);
        child_tid as i32
    }

    /// Replaces the current task's image (`exec`): fresh address space,
    /// SPL reset to 3 (§4.5.2: privilege levels are *not* inherited across
    /// exec).
    pub fn exec_current(
        &mut self,
        obj: &Object,
        externs: &BTreeMap<String, u32>,
    ) -> Result<(), SpawnError> {
        let tid = self.current.expect("no current task");
        self.m.charge(self.costs.exec);

        let cr3 = self.new_page_directory()?;
        let mut vas = Vas::new();
        let brk = self.load_image_into(cr3, &mut vas, obj, externs, USER_TEXT)?;
        let stack_base = USER_STACK_TOP - USER_STACK_PAGES * PAGE_SIZE;
        self.map_user_range(
            cr3,
            &mut vas,
            stack_base,
            USER_STACK_PAGES,
            true,
            true,
            AreaKind::Stack,
        )?;

        let entry_off = obj
            .symbol("_start")
            .or_else(|| obj.symbol("entry"))
            .unwrap_or(0);
        {
            let t = self.task_mut(tid);
            t.cr3 = cr3;
            t.vas = vas;
            t.brk = brk;
            t.task_spl = 3;
            t.ring2_stack_top = None;
            t.signal_handler = None;
            t.saved_sigcontext = None;
            t.ldt = x86sim::desc::DescriptorTable::new();
        }
        self.m.ldt = Some(x86sim::desc::DescriptorTable::new());
        self.m.mmu.set_cr3(cr3);
        self.m.tss.stack[2] = (Selector(0), 0);
        self.m.cpu.regs = [0; 8];
        self.m.cpu.set_reg(Reg::Esp, USER_STACK_TOP);
        self.m.cpu.eip = USER_TEXT + entry_off;
        self.force_user_segments(3);
        Ok(())
    }

    // ----- faults and signals -------------------------------------------------

    /// The Palladium-aware fault handler (§4.5.2): first distinguishes a
    /// not-present fault in a demand-paged region (materialize the page,
    /// deciding its PPL from the task's SPL *now*, and resume) from a
    /// protection violation (an extension crossed its boundary: deliver
    /// SIGSEGV to the extensible application).
    fn handle_fault(&mut self, fault: Fault) -> Option<Outcome> {
        self.stats.faults += 1;
        self.m.charge(self.costs.pagefault_handler);

        // Dispatch on the structured cause, not just the vector: only a
        // genuinely not-present page is a demand-paging candidate. A
        // page-*protection* violation (P set: an extension wrote a PPL 0
        // page) or any segment-level fault goes straight to delivery.
        if let x86sim::fault::FaultCause::Page { linear, code } = fault.cause {
            if code & x86sim::fault::pf_err::PRESENT == 0 && self.demand_map(linear) {
                self.m.charge_iret_resume();
                return None; // restart the faulting instruction
            }
        }
        self.last_fault = Some(fault);
        self.deliver_signal(SIGSEGV, fault)
    }

    /// Materializes one demand page if `addr` falls in a demand area.
    /// Returns false when the address is not demand-backed (a real fault).
    fn demand_map(&mut self, addr: u32) -> bool {
        let Some(tid) = self.current else {
            return false;
        };
        let (cr3, spl) = {
            let t = self.task(tid);
            (t.cr3, t.task_spl)
        };
        let Some(area) = self.task(tid).vas.find(addr).copied() else {
            return false;
        };
        if !area.demand {
            return false;
        }
        let page = x86sim::mem::page_base(addr);
        if get_pte(&self.m.mem, cr3, page).is_some() {
            return false; // present: this was a protection fault
        }
        let Some(frame) = self.frames.alloc() else {
            return false; // OOM surfaces as SIGSEGV (as Linux OOM-kills)
        };
        self.m.mem.zero(frame, PAGE_SIZE);
        let mut flags = 0;
        if area.writable {
            flags |= pte::RW;
        }
        // The paper's lazy PPL decision: writable pages of a promoted
        // (SPL 2) process materialize at PPL 0, everything else at PPL 1.
        if !(area.writable && spl == 2) {
            flags |= pte::US;
        }
        if !map_page(&mut self.m.mem, &mut self.frames, cr3, page, frame, flags) {
            return false;
        }
        self.m.mmu.flush_page(page);
        true
    }

    /// Delivers a signal to the current task: runs its handler if
    /// registered (at the application's privilege level), otherwise kills
    /// the task.
    pub fn deliver_signal(&mut self, sig: u8, fault: Fault) -> Option<Outcome> {
        let tid = self.current.unwrap();
        let handler = self.task(tid).signal_handler;
        match handler {
            Some(entry) => {
                self.stats.signals_delivered += 1;
                self.m.charge(self.costs.signal_deliver);
                // Save the interrupted context for sigreturn.
                let saved = Box::new(self.m.cpu.clone());
                self.task_mut(tid).saved_sigcontext = Some(saved);
                // Enter the handler at the application's SPL. A fault in an
                // SPL 3 extension of an SPL 2 app must not run the handler
                // at SPL 3 — the handler belongs to the application.
                let app_ring = if self.task(tid).task_spl == 2 { 2 } else { 3 };
                self.force_user_segments(app_ring);
                let stack_top = match self.task(tid).ring2_stack_top {
                    Some(t) if app_ring == 2 => t,
                    _ => self.m.cpu.esp(), // reuse the interrupted stack
                };
                self.m.cpu.set_reg(Reg::Esp, stack_top);
                self.m.cpu.set_reg(Reg::Eax, sig as u32);
                self.m.cpu.set_reg(Reg::Ebx, fault.cr2.unwrap_or(fault.eip));
                self.m.cpu.eip = entry;
                None
            }
            None => {
                self.stats.kills += 1;
                self.task_mut(tid).exit_code = Some(-(sig as i32));
                Some(Outcome::Signaled { sig, fault })
            }
        }
    }

    fn sigreturn(&mut self) -> Option<Outcome> {
        let tid = self.current.unwrap();
        match self.task_mut(tid).saved_sigcontext.take() {
            Some(cpu) => {
                self.m.cpu = *cpu;
                self.m.charge_iret_resume();
                None
            }
            None => {
                // sigreturn outside a handler: kill.
                self.task_mut(tid).exit_code = Some(-(SIGSEGV as i32));
                Some(Outcome::Exited(-(SIGSEGV as i32)))
            }
        }
    }

    /// The console contents as UTF-8 (lossy).
    pub fn console_text(&self) -> String {
        String::from_utf8_lossy(&self.console).into_owned()
    }

    /// Detaches from the current task and switches to the kernel-only
    /// address space (used between experiments and after task teardown).
    pub fn enter_kernel_context(&mut self) {
        self.save_current();
        self.current = None;
        self.m.mmu.set_cr3(self.kernel_cr3);
    }

    // ----- host-side entry points for the Palladium runtime ------------------
    //
    // The Palladium user-level runtime (`palladium::user_ext`) performs its
    // setup from the host on behalf of the application; these wrappers run
    // the same code paths as the corresponding syscalls, with the calling
    // code segment taken to be the application itself.

    /// `init_PL` on behalf of the current task (as if called from its own
    /// SPL 3 code).
    pub fn palladium_init_pl(&mut self) -> i32 {
        self.sys_init_pl(3)
    }

    /// `set_range` on behalf of the current (promoted) task.
    pub fn palladium_set_range(&mut self, addr: u32, len: u32) -> i32 {
        self.sys_set_range(addr, len, 2)
    }

    /// `set_call_gate` on behalf of the current (promoted) task. Returns
    /// the gate selector or a negative errno.
    pub fn palladium_set_call_gate(&mut self, func: u32) -> i32 {
        self.sys_set_call_gate(func, 2)
    }

    /// Host-side anonymous mmap into an arbitrary task, with explicit
    /// control of the PTE user bit. Used by loaders; does *not* apply the
    /// SPL 2 auto-demotion rule (callers decide the PPL).
    pub fn host_mmap(
        &mut self,
        tid: Tid,
        pages: u32,
        writable: bool,
        user_visible: bool,
        kind: AreaKind,
    ) -> Result<u32, SpawnError> {
        let cr3 = self.task(tid).cr3;
        let mut vas = std::mem::take(&mut self.task_mut(tid).vas);
        let addr = match vas.pick_free(pages * PAGE_SIZE) {
            Some(a) => a,
            None => {
                self.task_mut(tid).vas = vas;
                return Err(SpawnError::OutOfMemory);
            }
        };
        let r = self.map_user_range(cr3, &mut vas, addr, pages, writable, user_visible, kind);
        self.task_mut(tid).vas = vas;
        r.map(|_| addr)
    }

    /// Host-side PTE flag update over a page range of a task, with the
    /// required TLB shootdown.
    pub fn host_set_page_flags(&mut self, tid: Tid, addr: u32, pages: u32, set: u32, clear: u32) {
        let cr3 = self.task(tid).cr3;
        for i in 0..pages {
            update_pte_flags(&mut self.m.mem, cr3, addr + i * PAGE_SIZE, set, clear);
        }
        self.m.mmu.flush();
    }

    /// Registers (or clears) the current task's signal handler from the
    /// host — the Palladium runtime installs its fault trampoline this way.
    pub fn host_set_signal_handler(&mut self, tid: Tid, handler: Option<u32>) {
        self.task_mut(tid).signal_handler = handler;
    }

    /// Clears a pending saved signal context (after the host aborts an
    /// extension call mid-handler).
    pub fn host_clear_sigcontext(&mut self, tid: Tid) {
        self.task_mut(tid).saved_sigcontext = None;
    }

    // ----- durable checkpoints ------------------------------------------------

    /// Serializes the whole kernel world — the machine image plus the
    /// frame allocator, cost table, selectors, console, statistics, the
    /// task table and the kernel-VA allocator — into a versioned,
    /// integrity-checked image (see [`x86sim::image`]).
    ///
    /// The embedded machine image already excludes derived state
    /// (predecode caches, translation memos); the kernel adds nothing
    /// derived of its own, so a restored kernel is cycle- and
    /// stat-identical going forward.
    pub fn save_image(&self) -> Vec<u8> {
        let mut b = ImageBuilder::new(kind::KERNEL);

        let mut e = Enc::new();
        e.blob(&self.m.save_image());
        b.section(1, e);

        let mut e = Enc::new();
        self.frames.save_into(&mut e);
        b.section(2, e);

        let mut e = Enc::new();
        let c = &self.costs;
        for v in [
            c.syscall_dispatch,
            c.pagefault_handler,
            c.signal_deliver,
            c.kext_abort,
            c.fork,
            c.exec,
            c.exit_wait,
            c.context_switch,
            c.ppl_mark_per_page,
            c.ppl_mark_startup,
            c.mmap_per_page,
            c.mmap_base,
            c.set_call_gate,
        ] {
            e.u64(v);
        }
        b.section(3, e);

        let mut e = Enc::new();
        for s in [
            self.sel.kcode,
            self.sel.kdata,
            self.sel.ucode,
            self.sel.udata,
            self.sel.ucode2,
            self.sel.udata2,
        ] {
            e.u16(s.0);
        }
        b.section(4, e);

        let mut e = Enc::new();
        e.blob(&self.console);
        b.section(5, e);

        let mut e = Enc::new();
        for v in [
            self.stats.syscalls,
            self.stats.syscalls_rejected,
            self.stats.faults,
            self.stats.signals_delivered,
            self.stats.kills,
            self.stats.forks,
            self.stats.context_switches,
        ] {
            e.u64(v);
        }
        b.section(6, e);

        let mut e = Enc::new();
        e.u64(self.extension_cycle_limit);
        e.bool(self.last_fault.is_some());
        if let Some(f) = &self.last_fault {
            image::put_fault(&mut e, f);
        }
        b.section(7, e);

        let mut e = Enc::new();
        e.u32(self.tasks.len() as u32);
        for task in self.tasks.values() {
            put_task(&mut e, task);
        }
        b.section(8, e);

        let mut e = Enc::new();
        e.bool(self.current.is_some());
        if let Some(tid) = self.current {
            e.u32(tid);
        }
        e.u32(self.next_tid);
        b.section(9, e);

        let mut e = Enc::new();
        e.u32(self.kernel_pdes.len() as u32);
        for (idx, val) in &self.kernel_pdes {
            e.u32(*idx);
            e.u32(*val);
        }
        e.u32(self.kernel_cr3);
        e.u32(self.kva_next);
        e.u32(self.kva_free.len() as u32);
        for (base, pages) in &self.kva_free {
            e.u32(*base);
            e.u32(*pages);
        }
        b.section(10, e);

        b.finish()
    }

    /// Restores a kernel world from [`save_image`](Self::save_image)
    /// bytes. Every integrity check of the image format applies; a
    /// tampered or truncated image is rejected with a typed error and no
    /// partially-restored kernel ever escapes.
    pub fn restore_image(bytes: &[u8]) -> Result<Kernel, RestoreError> {
        let v = ImageView::parse(bytes, kind::KERNEL)?;

        let mut d = v.require(1, "machine")?;
        let m = Machine::restore_image(d.blob()?)?;
        d.finish()?;

        let mut d = v.require(2, "frames")?;
        let frames = FrameAlloc::restore_from(&mut d)?;
        d.finish()?;

        let mut d = v.require(3, "costs")?;
        let costs = KernelCosts {
            syscall_dispatch: d.u64()?,
            pagefault_handler: d.u64()?,
            signal_deliver: d.u64()?,
            kext_abort: d.u64()?,
            fork: d.u64()?,
            exec: d.u64()?,
            exit_wait: d.u64()?,
            context_switch: d.u64()?,
            ppl_mark_per_page: d.u64()?,
            ppl_mark_startup: d.u64()?,
            mmap_per_page: d.u64()?,
            mmap_base: d.u64()?,
            set_call_gate: d.u64()?,
        };
        d.finish()?;

        let mut d = v.require(4, "selectors")?;
        let sel = Selectors {
            kcode: Selector(d.u16()?),
            kdata: Selector(d.u16()?),
            ucode: Selector(d.u16()?),
            udata: Selector(d.u16()?),
            ucode2: Selector(d.u16()?),
            udata2: Selector(d.u16()?),
        };
        d.finish()?;

        let mut d = v.require(5, "console")?;
        let console = d.blob()?.to_vec();
        d.finish()?;

        let mut d = v.require(6, "stats")?;
        let stats = KernelStats {
            syscalls: d.u64()?,
            syscalls_rejected: d.u64()?,
            faults: d.u64()?,
            signals_delivered: d.u64()?,
            kills: d.u64()?,
            forks: d.u64()?,
            context_switches: d.u64()?,
        };
        d.finish()?;

        let mut d = v.require(7, "limits")?;
        let extension_cycle_limit = d.u64()?;
        let last_fault = if d.bool()? {
            Some(image::get_fault(&mut d)?)
        } else {
            None
        };
        d.finish()?;

        let mut d = v.require(8, "tasks")?;
        let ntasks = d.u32()?;
        let mut tasks = BTreeMap::new();
        let mut last_tid = None;
        for _ in 0..ntasks {
            let task = get_task(&mut d)?;
            if last_tid.is_some_and(|l| task.tid <= l) {
                return Err(d.fail("task ids not strictly ascending"));
            }
            last_tid = Some(task.tid);
            tasks.insert(task.tid, task);
        }
        d.finish()?;

        let mut d = v.require(9, "sched")?;
        let current = if d.bool()? { Some(d.u32()?) } else { None };
        if let Some(tid) = current {
            if !tasks.contains_key(&tid) {
                return Err(d.fail("current task not in task table"));
            }
        }
        let next_tid = d.u32()?;
        d.finish()?;

        let mut d = v.require(10, "kva")?;
        let npdes = d.u32()?;
        let mut kernel_pdes = Vec::with_capacity(npdes as usize);
        for _ in 0..npdes {
            let idx = d.u32()?;
            let val = d.u32()?;
            kernel_pdes.push((idx, val));
        }
        let kernel_cr3 = d.u32()?;
        let kva_next = d.u32()?;
        let nfree = d.u32()?;
        let mut kva_free = Vec::with_capacity(nfree as usize);
        for _ in 0..nfree {
            let base = d.u32()?;
            let pages = d.u32()?;
            kva_free.push((base, pages));
        }
        d.finish()?;

        Ok(Kernel {
            m,
            frames,
            costs,
            sel,
            console,
            stats,
            extension_cycle_limit,
            last_fault,
            tasks: std::sync::Arc::new(tasks),
            current,
            next_tid,
            kernel_pdes,
            kernel_cr3,
            kva_next,
            kva_free,
        })
    }
}

fn put_task(e: &mut Enc, t: &Task) {
    e.u32(t.tid);
    e.bool(t.parent.is_some());
    if let Some(p) = t.parent {
        e.u32(p);
    }
    e.u32(t.cr3);
    e.u8(t.task_spl);
    e.u32(t.vas.mmap_cursor);
    e.u32(t.vas.areas().len() as u32);
    for a in t.vas.areas() {
        e.u32(a.start);
        e.u32(a.end);
        e.bool(a.writable);
        e.u8(area_kind_tag(a.kind));
        e.bool(a.demand);
    }
    image::put_cpu(e, &t.cpu);
    e.u32(t.kstack_top);
    e.bool(t.ring2_stack_top.is_some());
    if let Some(r) = t.ring2_stack_top {
        e.u32(r);
    }
    e.bool(t.signal_handler.is_some());
    if let Some(h) = t.signal_handler {
        e.u32(h);
    }
    e.bool(t.saved_sigcontext.is_some());
    if let Some(c) = &t.saved_sigcontext {
        image::put_cpu(e, c);
    }
    e.bool(t.exit_code.is_some());
    if let Some(c) = t.exit_code {
        e.i32(c);
    }
    e.u32(t.brk);
    image::put_descriptor_table(e, &t.ldt);
    e.u32(t.mailbox.len() as u32);
    for (sender, payload) in &t.mailbox {
        e.u32(*sender);
        e.blob(payload);
    }
}

fn get_task(d: &mut Dec) -> Result<Task, RestoreError> {
    let tid = d.u32()?;
    let parent = if d.bool()? { Some(d.u32()?) } else { None };
    let cr3 = d.u32()?;
    let task_spl = d.u8()?;
    let mut vas = Vas::new();
    vas.mmap_cursor = d.u32()?;
    let nareas = d.u32()?;
    for _ in 0..nareas {
        let start = d.u32()?;
        let end = d.u32()?;
        let writable = d.bool()?;
        let kind = area_kind_from_tag(d.u8()?).ok_or_else(|| d.fail("bad area kind"))?;
        let demand = d.bool()?;
        let area = VmArea {
            start,
            end,
            writable,
            kind,
            demand,
        };
        if vas.insert(area).is_err() {
            return Err(d.fail("invalid vm area"));
        }
    }
    let cpu = image::get_cpu(d)?;
    let kstack_top = d.u32()?;
    let ring2_stack_top = if d.bool()? { Some(d.u32()?) } else { None };
    let signal_handler = if d.bool()? { Some(d.u32()?) } else { None };
    let saved_sigcontext = if d.bool()? {
        Some(Box::new(image::get_cpu(d)?))
    } else {
        None
    };
    let exit_code = if d.bool()? { Some(d.i32()?) } else { None };
    let brk = d.u32()?;
    let ldt = image::get_descriptor_table(d)?;
    let nmsgs = d.u32()?;
    let mut mailbox = std::collections::VecDeque::with_capacity(nmsgs as usize);
    for _ in 0..nmsgs {
        let sender = d.u32()?;
        let payload = d.blob()?.to_vec();
        mailbox.push_back((sender, payload));
    }
    Ok(Task {
        tid,
        parent,
        cr3,
        task_spl,
        vas,
        cpu,
        kstack_top,
        ring2_stack_top,
        signal_handler,
        saved_sigcontext,
        exit_code,
        brk,
        ldt,
        mailbox,
    })
}

fn area_kind_tag(k: AreaKind) -> u8 {
    match k {
        AreaKind::Image => 0,
        AreaKind::Heap => 1,
        AreaKind::Stack => 2,
        AreaKind::Anon => 3,
        AreaKind::SharedLib => 4,
        AreaKind::ExtensionPrivate => 5,
    }
}

fn area_kind_from_tag(tag: u8) -> Option<AreaKind> {
    Some(match tag {
        0 => AreaKind::Image,
        1 => AreaKind::Heap,
        2 => AreaKind::Stack,
        3 => AreaKind::Anon,
        4 => AreaKind::SharedLib,
        5 => AreaKind::ExtensionPrivate,
        _ => return None,
    })
}
