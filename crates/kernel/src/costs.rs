//! Cycle costs of kernel operations.
//!
//! The hosting kernel runs natively, so its work is charged from this
//! table rather than emerging from simulated instructions. Values are
//! calibrated against the paper's published measurements (all on a
//! Pentium 200 MHz running Linux 2.0.34) and against contemporary Linux
//! microbenchmarks; each constant notes its anchor.

/// Costs (in cycles) of modelled kernel work.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelCosts {
    /// Syscall dispatch beyond the hardware `int`/`iret` pair: register
    /// save/restore, table lookup, return-path checks.
    pub syscall_dispatch: u64,
    /// Page-fault handler work up to the Palladium check (vm-area lookup,
    /// SPL/PPL inspection, §4.5.2).
    pub pagefault_handler: u64,
    /// Building and delivering a SIGSEGV signal frame to the extensible
    /// application. Anchor: the paper measures "detecting an offending
    /// access to completing the delivery of the associated SIGSEGV" at
    /// 3,325 cycles total; subtracting hardware vectoring (82) and the
    /// handler work leaves this.
    pub signal_deliver: u64,
    /// Aborting a kernel extension after a #GP. Anchor: the paper's 1,020
    /// cycles for processing a kernel-extension protection exception,
    /// minus hardware vectoring (82).
    pub kext_abort: u64,
    /// `fork()`: page-table copy plus task duplication for a small
    /// process. Anchor: Linux 2.0 fork latency ~0.9 ms on a P5-200 for a
    /// CGI-sized process (lmbench fork+exit ballpark).
    pub fork: u64,
    /// `exec()`: image load and address-space reset. Anchor: lmbench
    /// exec latency ~3 ms on Linux 2.x / P5-200 for a small binary.
    pub exec: u64,
    /// Process exit + parent wait.
    pub exit_wait: u64,
    /// A context switch between processes: register state, CR3 load, TLB
    /// and cache refill. Anchor: lmbench ctxsw ~10-20 us with working
    /// sets, dominated by refill.
    pub context_switch: u64,
    /// Marking one page's PPL (the per-page part of `set_range`). Anchor:
    /// §5.1 "45 cycles per page marked".
    pub ppl_mark_per_page: u64,
    /// Fixed startup of a PPL-marking pass. Anchor: §5.1 "a start-up cost
    /// of 3000 to 5000 cycles" — the midpoint is used.
    pub ppl_mark_startup: u64,
    /// `mmap` of one page (vm-area bookkeeping + PTE install).
    pub mmap_per_page: u64,
    /// Fixed `mmap` overhead.
    pub mmap_base: u64,
    /// Registering a call gate (GDT update via the kernel).
    pub set_call_gate: u64,
}

impl Default for KernelCosts {
    fn default() -> KernelCosts {
        KernelCosts {
            syscall_dispatch: 160,
            pagefault_handler: 1200,
            signal_deliver: 2043,
            kext_abort: 938,
            fork: 180_000,
            exec: 600_000,
            exit_wait: 80_000,
            context_switch: 3_000,
            ppl_mark_per_page: 45,
            ppl_mark_startup: 4_000,
            mmap_per_page: 120,
            mmap_base: 800,
            set_call_gate: 600,
        }
    }
}

impl KernelCosts {
    /// Total modelled cost of marking `pages` pages' PPL, matching the
    /// paper's formula (startup + 45/page).
    pub fn ppl_mark(&self, pages: u32) -> u64 {
        self.ppl_mark_startup + self.ppl_mark_per_page * pages as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigsegv_total_matches_paper() {
        // Hardware vectoring (82) + handler + delivery == 3,325 (§5.2).
        let c = KernelCosts::default();
        let total = x86sim::cycles::measured_event(x86sim::Event::ExceptionDelivery)
            + c.pagefault_handler
            + c.signal_deliver;
        assert_eq!(total, 3_325);
    }

    #[test]
    fn kext_abort_total_matches_paper() {
        let c = KernelCosts::default();
        let total = x86sim::cycles::measured_event(x86sim::Event::ExceptionDelivery) + c.kext_abort;
        assert_eq!(total, 1_020);
    }

    #[test]
    fn ppl_marking_matches_paper_range() {
        // "marking 10 pages takes 3450 to 5450 cycles" (§5.1).
        let c = KernelCosts::default();
        let ten = c.ppl_mark(10);
        assert!((3_450..=5_450).contains(&ten), "got {ten}");
    }
}
