//! Kernel-level tests: spawn/run, syscalls, the Palladium syscalls, fork
//! semantics and signal delivery.

use std::collections::BTreeMap;

use asm86::isa::Reg;
use asm86::Assembler;

use crate::kernel::{Budget, Kernel, Outcome};
use crate::layout::{sys, USER_TEXT};
use crate::SIGSEGV;

fn spawn(k: &mut Kernel, src: &str) -> crate::Tid {
    let obj = Assembler::assemble(src).expect("asm");
    let tid = k.spawn(&obj, &BTreeMap::new()).expect("spawn");
    k.switch_to(tid);
    tid
}

fn run(k: &mut Kernel) -> Outcome {
    k.run_current(Budget::Insns(1_000_000))
}

#[test]
fn hello_world_via_write_and_exit() {
    let mut k = Kernel::boot();
    spawn(
        &mut k,
        &format!(
            "_start:\n\
             mov eax, {write}\n\
             mov ebx, 1\n\
             mov ecx, msg\n\
             mov edx, 6\n\
             int 0x80\n\
             mov eax, {exit}\n\
             mov ebx, 7\n\
             int 0x80\n\
             msg:\n\
             .asciz \"hello\\n\"\n",
            write = sys::WRITE,
            exit = sys::EXIT,
        ),
    );
    assert_eq!(run(&mut k), Outcome::Exited(7));
    assert_eq!(k.console_text(), "hello\n");
    assert_eq!(k.stats.syscalls, 2);
}

#[test]
fn getpid_returns_tid() {
    let mut k = Kernel::boot();
    let tid = spawn(
        &mut k,
        &format!(
            "_start:\n\
             mov eax, {getpid}\n\
             int 0x80\n\
             mov ebx, eax\n\
             mov eax, {exit}\n\
             int 0x80\n",
            getpid = sys::GETPID,
            exit = sys::EXIT,
        ),
    );
    assert_eq!(run(&mut k), Outcome::Exited(tid as i32));
}

#[test]
fn user_task_cannot_touch_kernel_memory() {
    // The user segments end at 3 GB — a load above that faults on the
    // segment limit, and without a handler the task dies with SIGSEGV.
    let mut k = Kernel::boot();
    spawn(&mut k, "_start:\nmov eax, [0xD0000000]\nhlt\n");
    match run(&mut k) {
        Outcome::Signaled { sig, .. } => assert_eq!(sig, SIGSEGV),
        other => panic!("expected SIGSEGV kill, got {other:?}"),
    }
    assert_eq!(k.stats.kills, 1);
}

#[test]
fn unmapped_page_kills_task() {
    let mut k = Kernel::boot();
    spawn(&mut k, "_start:\nmov eax, [0x70000000]\nhlt\n");
    match run(&mut k) {
        Outcome::Signaled { sig, fault } => {
            assert_eq!(sig, SIGSEGV);
            assert_eq!(fault.cr2, Some(0x7000_0000));
        }
        other => panic!("expected SIGSEGV, got {other:?}"),
    }
}

#[test]
fn mmap_then_use() {
    let mut k = Kernel::boot();
    spawn(
        &mut k,
        &format!(
            "_start:\n\
             mov eax, {mmap}\n\
             mov ebx, 0\n\
             mov ecx, 8192\n\
             mov edx, 3\n\
             int 0x80\n\
             mov ebx, eax\n\
             mov [ebx], ebx          ; write to the new mapping\n\
             mov ecx, [ebx]\n\
             mov eax, {exit}\n\
             mov ebx, 0\n\
             int 0x80\n",
            mmap = sys::MMAP,
            exit = sys::EXIT,
        ),
    );
    assert_eq!(run(&mut k), Outcome::Exited(0));
}

#[test]
fn brk_grows_heap() {
    let mut k = Kernel::boot();
    spawn(
        &mut k,
        &format!(
            "_start:\n\
             mov eax, {brk}\n\
             mov ebx, 0\n\
             int 0x80\n\
             mov ecx, eax           ; current brk\n\
             add ecx, 8192\n\
             mov eax, {brk}\n\
             mov ebx, ecx\n\
             int 0x80\n\
             sub ecx, 100\n\
             mov [ecx], eax         ; touch new heap\n\
             mov eax, {exit}\n\
             mov ebx, 0\n\
             int 0x80\n",
            brk = sys::BRK,
            exit = sys::EXIT,
        ),
    );
    assert_eq!(run(&mut k), Outcome::Exited(0));
}

#[test]
fn init_pl_promotes_to_spl2() {
    let mut k = Kernel::boot();
    let tid = spawn(
        &mut k,
        &format!(
            "_start:\n\
             mov eax, {init_pl}\n\
             int 0x80\n\
             mov ebx, eax           ; 0 on success\n\
             mov eax, cs            ; observe new CS\n\
             and eax, 3             ; RPL = SPL\n\
             mov ecx, eax\n\
             mov eax, {exit}\n\
             int 0x80\n",
            init_pl = sys::INIT_PL,
            exit = sys::EXIT,
        ),
    );
    assert_eq!(run(&mut k), Outcome::Exited(0));
    assert_eq!(k.task(tid).task_spl, 2);
    assert_eq!(k.m.cpu.reg(Reg::Ecx), 2, "CS RPL became 2 after init_PL");
    assert!(k.task(tid).ring2_stack_top.is_some());
}

#[test]
fn init_pl_marks_writable_pages_ppl0() {
    use x86sim::paging::{get_pte, pte};
    let mut k = Kernel::boot();
    let tid = spawn(
        &mut k,
        &format!(
            "_start:\n\
             mov eax, {init_pl}\n\
             int 0x80\n\
             mov eax, {exit}\n\
             mov ebx, 0\n\
             int 0x80\n",
            init_pl = sys::INIT_PL,
            exit = sys::EXIT,
        ),
    );
    // Before: image pages are user-visible.
    let cr3 = k.task(tid).cr3;
    let before = get_pte(&k.m.mem, cr3, USER_TEXT).unwrap();
    assert_ne!(before & pte::US, 0);
    assert_eq!(run(&mut k), Outcome::Exited(0));
    // After: writable pages (incl. the image) are PPL 0.
    let after = get_pte(&k.m.mem, cr3, USER_TEXT).unwrap();
    assert_eq!(after & pte::US, 0, "image page demoted to PPL 0");
}

#[test]
fn init_pl_twice_fails() {
    let mut k = Kernel::boot();
    spawn(
        &mut k,
        &format!(
            "_start:\n\
             mov eax, {init_pl}\n\
             int 0x80\n\
             mov eax, {init_pl}\n\
             int 0x80\n\
             mov ebx, eax\n\
             mov eax, {exit}\n\
             int 0x80\n",
            init_pl = sys::INIT_PL,
            exit = sys::EXIT,
        ),
    );
    match run(&mut k) {
        Outcome::Exited(code) => assert!(code < 0, "second init_PL returns -EPERM"),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn set_range_exposes_pages_to_ppl1() {
    use x86sim::paging::{get_pte, pte};
    let mut k = Kernel::boot();
    let tid = spawn(
        &mut k,
        &format!(
            "_start:\n\
             mov eax, {init_pl}\n\
             int 0x80\n\
             ; mmap a shared area (comes back PPL 0 because we are SPL 2)\n\
             mov eax, {mmap}\n\
             mov ebx, 0\n\
             mov ecx, 4096\n\
             mov edx, 3\n\
             int 0x80\n\
             mov esi, eax            ; keep address\n\
             ; expose it\n\
             mov ebx, eax\n\
             mov ecx, 4096\n\
             mov eax, {set_range}\n\
             int 0x80\n\
             mov eax, {exit}\n\
             mov ebx, 0\n\
             int 0x80\n",
            init_pl = sys::INIT_PL,
            mmap = sys::MMAP,
            set_range = sys::SET_RANGE,
            exit = sys::EXIT,
        ),
    );
    assert_eq!(run(&mut k), Outcome::Exited(0));
    let addr = k.m.cpu.reg(Reg::Esi);
    let cr3 = k.task(tid).cr3;
    let p = get_pte(&k.m.mem, cr3, addr).unwrap();
    assert_ne!(p & pte::US, 0, "set_range made the page PPL 1");
}

#[test]
fn set_range_requires_promotion() {
    let mut k = Kernel::boot();
    spawn(
        &mut k,
        &format!(
            "_start:\n\
             mov eax, {set_range}\n\
             mov ebx, {text}\n\
             mov ecx, 4096\n\
             int 0x80\n\
             mov ebx, eax\n\
             mov eax, {exit}\n\
             int 0x80\n",
            set_range = sys::SET_RANGE,
            text = USER_TEXT,
            exit = sys::EXIT,
        ),
    );
    match run(&mut k) {
        Outcome::Exited(code) => assert!(code < 0),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn fork_inherits_spl_and_memory() {
    let mut k = Kernel::boot();
    let parent = spawn(
        &mut k,
        &format!(
            "_start:\n\
             mov eax, {init_pl}\n\
             int 0x80\n\
             mov eax, {fork}\n\
             int 0x80\n\
             mov ebx, eax            ; child tid in parent, 0 in child\n\
             mov eax, {exit}\n\
             int 0x80\n",
            init_pl = sys::INIT_PL,
            fork = sys::FORK,
            exit = sys::EXIT,
        ),
    );
    let out = run(&mut k);
    let child = match out {
        Outcome::Exited(code) if code > 0 => code as u32,
        other => panic!("expected parent exit with child tid, got {other:?}"),
    };
    // §4.5.2: privilege levels inherited across fork.
    assert_eq!(k.task(child).task_spl, 2);
    assert_eq!(k.task(parent).task_spl, 2);
    assert_eq!(k.stats.forks, 1);

    // Run the child: it resumes right after fork with eax = 0 and exits 0.
    k.switch_to(child);
    assert_eq!(run(&mut k), Outcome::Exited(0));

    // PPL markings were copied: the child's image page is PPL 0.
    use x86sim::paging::{get_pte, pte};
    let p = get_pte(&k.m.mem, k.task(child).cr3, USER_TEXT).unwrap();
    assert_eq!(p & pte::US, 0);
}

#[test]
fn exec_resets_privilege_state() {
    let mut k = Kernel::boot();
    let tid = spawn(
        &mut k,
        &format!(
            "_start:\n\
             mov eax, {init_pl}\n\
             int 0x80\n\
             mov eax, 99\n\
             int 0x80              ; unknown syscall: returns -ENOSYS\n\
             jmp _start            ; never reached meaningfully\n",
            init_pl = sys::INIT_PL,
        ),
    );
    // Run until promoted (two syscalls serviced).
    let _ = k.run_current(Budget::Insns(8));
    assert_eq!(k.task(tid).task_spl, 2);

    // exec a fresh program.
    let fresh = Assembler::assemble(&format!(
        "_start:\nmov eax, {exit}\nmov ebx, 42\nint 0x80\n",
        exit = sys::EXIT
    ))
    .unwrap();
    k.exec_current(&fresh, &BTreeMap::new()).unwrap();
    assert_eq!(k.task(tid).task_spl, 3, "exec resets taskSPL to 3");
    assert_eq!(run(&mut k), Outcome::Exited(42));
}

#[test]
fn signal_handler_runs_and_sigreturn_resumes() {
    let mut k = Kernel::boot();
    let obj = Assembler::assemble(&format!(
        "_start:\n\
             mov eax, {sigaction}\n\
             mov ebx, handler\n\
             int 0x80\n\
             mov eax, [0x70000000]   ; fault: unmapped\n\
             after:\n\
             mov eax, {exit}\n\
             mov ebx, 0\n\
             int 0x80\n\
             handler:\n\
             mov edi, [counter]      ; count handler entries in memory\n\
             inc edi\n\
             mov [counter], edi\n\
             int 0x83                ; sigreturn restarts the faulting insn\n\
             counter:\n\
             .dd 0\n",
        sigaction = sys::SIGACTION,
        exit = sys::EXIT,
    ))
    .unwrap();
    let tid = k.spawn(&obj, &BTreeMap::new()).unwrap();
    k.switch_to(tid);
    // Each sigreturn restarts the faulting load, which faults again and
    // re-enters the handler — registers are restored by sigreturn, so the
    // evidence lives in memory.
    let out = k.run_current(Budget::Insns(300));
    assert!(
        k.stats.signals_delivered >= 2,
        "handler re-entered on restart"
    );
    let counter_addr = USER_TEXT + obj.symbol("counter").unwrap();
    let count = k.m.host_read_u32(counter_addr);
    assert!(count >= 2, "handler body ran {count} times");
    assert_eq!(out, Outcome::Budget, "restart loop capped by budget");
}

#[test]
fn syscalls_rejected_from_spl3_code_of_promoted_task() {
    // After init_PL, force the saved context's CS back to ring 3 (as if an
    // extension were running) and attempt a syscall: the kernel must
    // reject it with EPERM (§4.5.2).
    let mut k = Kernel::boot();
    spawn(
        &mut k,
        &format!(
            "_start:\n\
             mov eax, {init_pl}\n\
             int 0x80\n\
             spin:\n\
             jmp spin\n",
            init_pl = sys::INIT_PL,
        ),
    );
    let _ = k.run_current(Budget::Insns(4));

    // Simulate extension code: CS at ring 3 (the extension segment), still
    // inside the same task.
    let ucode = k.sel.ucode;
    let udata = k.sel.udata;
    k.m.force_seg_from_table(asm86::isa::SegReg::Cs, ucode);
    k.m.force_seg_from_table(asm86::isa::SegReg::Ss, udata);
    // Build an `int 0x80` at a fresh user page the extension could run.
    let obj = Assembler::assemble(
        "ext:\n\
         mov eax, 4\n\
         mov ebx, 1\n\
         mov ecx, 0\n\
         mov edx, 0\n\
         int 0x80\n\
         spin:\n\
         jmp spin\n",
    )
    .unwrap();
    let image = obj.link(0x5000_0000, &BTreeMap::new()).unwrap();
    let tid = k.current_tid().unwrap();
    let cr3 = k.task(tid).cr3;
    let mut vas = std::mem::take(&mut k.task_mut(tid).vas);
    k.map_user_range(
        cr3,
        &mut vas,
        0x5000_0000,
        1,
        true,
        true,
        crate::AreaKind::SharedLib,
    )
    .unwrap();
    k.task_mut(tid).vas = vas;
    assert!(k.m.host_write(0x5000_0000, &image));
    k.m.mmu.flush();
    k.m.cpu.eip = 0x5000_0000;
    // Need a usable SPL 3 stack: reuse the mapped page top.
    k.m.cpu.set_reg(Reg::Esp, 0x5000_1000);

    let _ = k.run_current(Budget::Insns(20));
    assert_eq!(k.stats.syscalls_rejected, 1);
    let eax = k.m.cpu.reg(Reg::Eax) as i32;
    assert_eq!(eax, -(crate::layout::errno::EPERM));
}

#[test]
fn non_palladium_tasks_still_make_syscalls() {
    // A task that never calls init_PL stays at taskSPL 3 and syscalls work
    // from ring-3 code (the paper: "non-Palladium applications still can
    // make system calls as usual").
    let mut k = Kernel::boot();
    spawn(
        &mut k,
        &format!(
            "_start:\nmov eax, {getpid}\nint 0x80\nmov ebx, eax\nmov eax, {exit}\nint 0x80\n",
            getpid = sys::GETPID,
            exit = sys::EXIT
        ),
    );
    match run(&mut k) {
        Outcome::Exited(code) => assert!(code > 0),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(k.stats.syscalls_rejected, 0);
}

#[test]
fn two_tasks_have_isolated_address_spaces() {
    let mut k = Kernel::boot();
    let a = spawn(
        &mut k,
        &format!(
            "_start:\n\
             mov eax, 0x11111111\n\
             mov [0x08050000], eax\n\
             mov eax, {exit}\n\
             mov ebx, 0\n\
             int 0x80\n",
            exit = sys::EXIT
        ),
    );
    // Give task A extra mapped page at 0x08050000.
    {
        let cr3 = k.task(a).cr3;
        let mut vas = std::mem::take(&mut k.task_mut(a).vas);
        k.map_user_range(
            cr3,
            &mut vas,
            0x0805_0000,
            1,
            true,
            true,
            crate::AreaKind::Anon,
        )
        .unwrap();
        k.task_mut(a).vas = vas;
    }
    let b = spawn(
        &mut k,
        &format!(
            "_start:\n\
             mov eax, [0x08050000]\n\
             mov ebx, eax\n\
             mov eax, {exit}\n\
             int 0x80\n",
            exit = sys::EXIT
        ),
    );
    {
        let cr3 = k.task(b).cr3;
        let mut vas = std::mem::take(&mut k.task_mut(b).vas);
        k.map_user_range(
            cr3,
            &mut vas,
            0x0805_0000,
            1,
            true,
            true,
            crate::AreaKind::Anon,
        )
        .unwrap();
        k.task_mut(b).vas = vas;
    }

    k.switch_to(a);
    assert_eq!(run(&mut k), Outcome::Exited(0));
    k.switch_to(b);
    match run(&mut k) {
        Outcome::Exited(_) => {}
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(
        k.m.cpu.reg(Reg::Ebx),
        0,
        "task B sees its own zeroed page, not A's write"
    );
}

#[test]
fn set_call_gate_returns_usable_selector() {
    let mut k = Kernel::boot();
    spawn(
        &mut k,
        &format!(
            "_start:\n\
             mov eax, {init_pl}\n\
             int 0x80\n\
             mov eax, {gate}\n\
             mov ebx, service\n\
             int 0x80\n\
             mov esi, eax            ; gate selector\n\
             mov eax, {exit}\n\
             mov ebx, 0\n\
             int 0x80\n\
             service:\n\
             lret\n",
            init_pl = sys::INIT_PL,
            gate = sys::SET_CALL_GATE,
            exit = sys::EXIT,
        ),
    );
    assert_eq!(run(&mut k), Outcome::Exited(0));
    let sel = k.m.cpu.reg(Reg::Esi) as u16;
    assert_ne!(sel, 0);
    assert_eq!(
        sel & 3,
        3,
        "gate selector returned with RPL 3 for extensions"
    );
    assert_ne!(sel & 4, 0, "per-process gates live in the LDT");
    let ldt = k.m.ldt.as_ref().expect("current task has an LDT");
    let d = ldt.get(sel >> 3).copied().unwrap();
    assert!(matches!(d, x86sim::Descriptor::Gate(_)));
}

#[test]
fn ldt_gates_are_invisible_to_other_processes() {
    // A gate registered by one process cannot even be *named* by another:
    // the selector's TI bit points into the caller's own LDT, which is
    // swapped on context switch.
    let mut k = Kernel::boot();
    let a = spawn(
        &mut k,
        &format!(
            "_start:
             mov eax, {init_pl}
             int 0x80
             mov eax, {gate}
             mov ebx, service
             int 0x80
             mov esi, eax
             spin:
             jmp spin
             service:
             lret
",
            init_pl = sys::INIT_PL,
            gate = sys::SET_CALL_GATE,
        ),
    );
    let _ = k.run_current(Budget::Insns(10));
    let sel = k.m.cpu.reg(Reg::Esi) as u16;
    assert_ne!(sel & 4, 0);

    // Process B tries to lcall A's gate selector: its own LDT is empty,
    // so the selector does not resolve -> #GP -> SIGSEGV.
    let b = spawn(
        &mut k,
        &format!(
            "_start:
lcall {sel}, 0
mov eax, {exit}
mov ebx, 0
int 0x80
",
            exit = sys::EXIT
        ),
    );
    k.switch_to(b);
    match run(&mut k) {
        Outcome::Signaled { sig, .. } => assert_eq!(sig, crate::SIGSEGV),
        other => panic!("expected SIGSEGV in process B, got {other:?}"),
    }
    // Process A's gate still resolves in its own context.
    k.switch_to(a);
    let ldt = k.m.ldt.as_ref().unwrap();
    assert!(matches!(
        ldt.get(sel >> 3).copied().unwrap(),
        x86sim::Descriptor::Gate(_)
    ));
}

#[test]
fn console_write_charges_cycles() {
    let mut k = Kernel::boot();
    spawn(
        &mut k,
        &format!(
            "_start:\n\
             mov eax, {write}\n\
             mov ebx, 1\n\
             mov ecx, msg\n\
             mov edx, 3\n\
             int 0x80\n\
             mov eax, {exit}\n\
             mov ebx, 0\n\
             int 0x80\n\
             msg:\n\
             .asciz \"ab\"\n",
            write = sys::WRITE,
            exit = sys::EXIT,
        ),
    );
    let before = k.m.cycles();
    assert_eq!(run(&mut k), Outcome::Exited(0));
    assert!(k.m.cycles() > before + 2 * 85, "syscall costs charged");
}

#[test]
fn munmap_unmaps_whole_areas() {
    let mut k = Kernel::boot();
    spawn(
        &mut k,
        &format!(
            "_start:\n\
             mov eax, {mmap}\n\
             mov ebx, 0\n\
             mov ecx, 8192\n\
             mov edx, 3\n\
             int 0x80\n\
             mov esi, eax\n\
             mov [esi], eax          ; touch it\n\
             mov eax, {munmap}\n\
             mov ebx, esi\n\
             mov ecx, 8192\n\
             int 0x80\n\
             mov edi, eax            ; 0 on success\n\
             mov eax, [esi]          ; now faults\n\
             mov eax, {exit}\n\
             mov ebx, 1\n\
             int 0x80\n",
            mmap = sys::MMAP,
            munmap = sys::MUNMAP,
            exit = sys::EXIT,
        ),
    );
    match run(&mut k) {
        Outcome::Signaled { sig, .. } => assert_eq!(sig, crate::SIGSEGV),
        other => panic!("expected fault on unmapped access, got {other:?}"),
    }
    assert_eq!(k.m.cpu.reg(Reg::Edi), 0, "munmap returned success");
}

#[test]
fn munmap_rejects_partial_and_foreign_ranges() {
    let mut k = Kernel::boot();
    spawn(
        &mut k,
        &format!(
            "_start:\n\
             mov eax, {munmap}\n\
             mov ebx, 0x70000000\n\
             mov ecx, 4096\n\
             int 0x80\n\
             mov ebx, eax\n\
             mov eax, {exit}\n\
             int 0x80\n",
            munmap = sys::MUNMAP,
            exit = sys::EXIT,
        ),
    );
    match run(&mut k) {
        Outcome::Exited(code) => assert!(code < 0, "unmapped range rejected"),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn waitpid_reaps_exited_children() {
    let mut k = Kernel::boot();
    let parent = spawn(
        &mut k,
        &format!(
            "_start:\n\
             mov eax, {fork}\n\
             int 0x80\n\
             cmp eax, 0\n\
             je child\n\
             mov esi, eax            ; child tid\n\
             wait_loop:\n\
             mov eax, {waitpid}\n\
             mov ebx, esi\n\
             int 0x80\n\
             cmp eax, -11            ; -EAGAIN while the child runs\n\
             je parent_exit_pending\n\
             mov ebx, eax            ; child exit code\n\
             mov eax, {exit}\n\
             int 0x80\n\
             parent_exit_pending:\n\
             mov eax, {exit}\n\
             mov ebx, 77\n\
             int 0x80\n\
             child:\n\
             mov eax, {exit}\n\
             mov ebx, 5\n\
             int 0x80\n",
            fork = sys::FORK,
            waitpid = sys::WAITPID,
            exit = sys::EXIT,
        ),
    );
    // Parent runs first, sees EAGAIN, exits 77.
    assert_eq!(run(&mut k), Outcome::Exited(77));
    // Run the child to completion.
    let child = k.tids().into_iter().find(|t| *t != parent).unwrap();
    k.switch_to(child);
    assert_eq!(run(&mut k), Outcome::Exited(5));

    // A second parent (fresh) reaps a finished child: simulate by
    // spawning a pair where the child finishes first.
    let mut k = Kernel::boot();
    spawn(
        &mut k,
        &format!(
            "_start:\n\
             mov eax, {fork}\n\
             int 0x80\n\
             cmp eax, 0\n\
             je child\n\
             mov esi, eax\n\
             ; spin a little so the host can schedule the child\n\
             hand_off:\n\
             mov eax, {waitpid}\n\
             mov ebx, esi\n\
             int 0x80\n\
             cmp eax, -11\n\
             je hand_off\n\
             mov ebx, eax\n\
             mov eax, {exit}\n\
             int 0x80\n\
             child:\n\
             mov eax, {exit}\n\
             mov ebx, 9\n\
             int 0x80\n",
            fork = sys::FORK,
            waitpid = sys::WAITPID,
            exit = sys::EXIT,
        ),
    );
    // Drive: parent until budget (spinning on EAGAIN), then child, then
    // parent again — it reaps 9.
    let parent2 = k.current_tid().unwrap();
    let _ = k.run_current(Budget::Insns(60));
    let child2 = k.tids().into_iter().find(|t| *t != parent2).unwrap();
    k.switch_to(child2);
    assert_eq!(run(&mut k), Outcome::Exited(9));
    k.switch_to(parent2);
    assert_eq!(
        run(&mut k),
        Outcome::Exited(9),
        "parent reaped the child's code"
    );
    assert!(!k.tids().contains(&child2), "zombie reaped");
}

#[test]
fn cycles_syscall_is_monotonic() {
    let mut k = Kernel::boot();
    spawn(
        &mut k,
        &format!(
            "_start:\n\
             mov eax, {cycles}\n\
             int 0x80\n\
             mov esi, eax\n\
             mov eax, {cycles}\n\
             int 0x80\n\
             sub eax, esi\n\
             mov ebx, eax\n\
             mov eax, {exit}\n\
             int 0x80\n",
            cycles = sys::CYCLES,
            exit = sys::EXIT,
        ),
    );
    match run(&mut k) {
        Outcome::Exited(delta) => assert!(delta > 0, "time advanced: {delta}"),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn round_robin_runs_a_process_tree_to_completion() {
    // Parent forks two children; each child exits with a distinct code;
    // the parent reaps both and exits with their sum. The scheduler
    // interleaves everything.
    let mut k = Kernel::boot();
    spawn(
        &mut k,
        &format!(
            "_start:\n\
             mov eax, {fork}\n\
             int 0x80\n\
             cmp eax, 0\n\
             je child_a\n\
             mov esi, eax\n\
             mov eax, {fork}\n\
             int 0x80\n\
             cmp eax, 0\n\
             je child_b\n\
             mov edi, eax\n\
             ; reap both (spin on EAGAIN)\n\
             wait_a:\n\
             mov eax, {waitpid}\n\
             mov ebx, esi\n\
             int 0x80\n\
             cmp eax, -11\n\
             je wait_a\n\
             mov ebp, eax\n\
             wait_b:\n\
             mov eax, {waitpid}\n\
             mov ebx, edi\n\
             int 0x80\n\
             cmp eax, -11\n\
             je wait_b\n\
             add eax, ebp\n\
             mov ebx, eax\n\
             mov eax, {exit}\n\
             int 0x80\n\
             child_a:\n\
             mov eax, {exit}\n\
             mov ebx, 10\n\
             int 0x80\n\
             child_b:\n\
             mov eax, {exit}\n\
             mov ebx, 32\n\
             int 0x80\n",
            fork = sys::FORK,
            waitpid = sys::WAITPID,
            exit = sys::EXIT,
        ),
    );
    let events = k.run_all(Budget::Insns(50), 200);
    // All three tasks exited; the parent's exit code is the sum.
    let exit_codes: Vec<i32> = events
        .iter()
        .filter_map(|(_, o)| match o {
            Outcome::Exited(c) => Some(*c),
            _ => None,
        })
        .collect();
    assert!(exit_codes.contains(&10));
    assert!(exit_codes.contains(&32));
    assert!(
        exit_codes.contains(&42),
        "parent summed the children: {exit_codes:?}"
    );
}

#[test]
fn scheduler_charges_context_switches() {
    let mut k = Kernel::boot();
    spawn(
        &mut k,
        &format!("_start:\nmov eax, {}\nmov ebx, 0\nint 0x80\n", sys::EXIT),
    );
    spawn(
        &mut k,
        &format!("_start:\nmov eax, {}\nmov ebx, 0\nint 0x80\n", sys::EXIT),
    );
    let before = k.m.cycles();
    let events = k.run_all(Budget::Insns(100), 10);
    assert_eq!(events.len(), 2);
    // At least two context switches were charged (one per task entry).
    assert!(k.m.cycles() - before >= 2 * k.costs.context_switch);
}

mod memory_pressure {
    use super::*;
    use crate::kernel::SpawnError;

    /// Boot structures take ~131 pages; leave a small allowance.
    fn tight_kernel(extra_pages: u32) -> Kernel {
        Kernel::boot_with_memory((131 + extra_pages) * 4096)
    }

    #[test]
    fn boot_survives_minimal_memory() {
        let k = tight_kernel(8);
        assert!(k.frames.remaining() <= 8 + 4);
    }

    #[test]
    fn spawn_fails_cleanly_without_memory() {
        let mut k = tight_kernel(4);
        let obj = Assembler::assemble("_start:\nnop\nhlt\n").unwrap();
        match k.spawn(&obj, &BTreeMap::new()) {
            Err(SpawnError::OutOfMemory) => {}
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn overcommitted_mmap_dies_at_touch_time() {
        // Demand-paged mmap overcommits (as Linux does): the 16 MB map
        // succeeds, and the process dies only when touching more memory
        // than exists (the demand fault finds no frame -> SIGSEGV, the
        // moral equivalent of the OOM killer).
        let mut k = tight_kernel(64);
        spawn(
            &mut k,
            &format!(
                "_start:\n\
                 mov eax, {mmap}\n\
                 mov ebx, 0\n\
                 mov ecx, 0x1000000     ; 16 MB: far beyond physical memory\n\
                 mov edx, 3\n\
                 int 0x80\n\
                 cmp eax, 0\n\
                 jl mmap_failed\n\
                 mov esi, eax\n\
                 touch_loop:\n\
                 mov [esi], esi\n\
                 add esi, 4096\n\
                 jmp touch_loop\n\
                 mmap_failed:\n\
                 mov ebx, eax\n\
                 mov eax, {exit}\n\
                 int 0x80\n",
                mmap = sys::MMAP,
                exit = sys::EXIT,
            ),
        );
        match k.run_current(Budget::Insns(100_000)) {
            Outcome::Signaled { sig, .. } => assert_eq!(sig, crate::SIGSEGV),
            other => panic!("expected OOM SIGSEGV at touch time, got {other:?}"),
        }
    }

    #[test]
    fn fork_fails_gracefully_under_pressure() {
        let mut k = tight_kernel(40);
        spawn(
            &mut k,
            &format!(
                "_start:\n\
                 ; grab most of what is left\n\
                 mov eax, {mmap}\n\
                 mov ebx, 0\n\
                 mov ecx, 0x8000\n\
                 mov edx, 3\n\
                 int 0x80\n\
                 ; now fork: copying the address space cannot fit\n\
                 mov eax, {fork}\n\
                 int 0x80\n\
                 mov ebx, eax\n\
                 mov eax, {exit}\n\
                 int 0x80\n",
                mmap = sys::MMAP,
                fork = sys::FORK,
                exit = sys::EXIT,
            ),
        );
        match run(&mut k) {
            Outcome::Exited(code) => assert!(code < 0, "fork reported failure: {code}"),
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[test]
fn mprotect_read_only_is_enforced_on_user_writes() {
    let mut k = Kernel::boot();
    spawn(
        &mut k,
        &format!(
            "_start:\n\
             mov eax, {mmap}\n\
             mov ebx, 0\n\
             mov ecx, 4096\n\
             mov edx, 3\n\
             int 0x80\n\
             mov esi, eax\n\
             mov [esi], eax          ; writable now\n\
             mov eax, {mprotect}\n\
             mov ebx, esi\n\
             mov ecx, 4096\n\
             mov edx, 1              ; PROT_READ only\n\
             int 0x80\n\
             mov edi, [esi]          ; reads still fine\n\
             mov [esi], eax          ; write must fault\n\
             mov eax, {exit}\n\
             mov ebx, 0\n\
             int 0x80\n",
            mmap = sys::MMAP,
            mprotect = sys::MPROTECT,
            exit = sys::EXIT,
        ),
    );
    match run(&mut k) {
        Outcome::Signaled { sig, .. } => assert_eq!(sig, crate::SIGSEGV),
        other => panic!("expected SIGSEGV on RO write, got {other:?}"),
    }
    assert_ne!(k.m.cpu.reg(Reg::Edi), 0, "the read before the fault worked");
}

#[test]
fn mprotect_can_restore_writability() {
    let mut k = Kernel::boot();
    spawn(
        &mut k,
        &format!(
            "_start:\n\
             mov eax, {mmap}\n\
             mov ebx, 0\n\
             mov ecx, 4096\n\
             mov edx, 3\n\
             int 0x80\n\
             mov esi, eax\n\
             mov eax, {mprotect}\n\
             mov ebx, esi\n\
             mov ecx, 4096\n\
             mov edx, 1\n\
             int 0x80\n\
             mov eax, {mprotect}\n\
             mov ebx, esi\n\
             mov ecx, 4096\n\
             mov edx, 3              ; RW again\n\
             int 0x80\n\
             mov [esi], esi          ; succeeds\n\
             mov eax, {exit}\n\
             mov ebx, 0\n\
             int 0x80\n",
            mmap = sys::MMAP,
            mprotect = sys::MPROTECT,
            exit = sys::EXIT,
        ),
    );
    assert_eq!(run(&mut k), Outcome::Exited(0));
}

mod demand_paging {
    use super::*;
    use x86sim::paging::{get_pte, pte};

    #[test]
    fn mmap_consumes_no_frames_until_touched() {
        let mut k = Kernel::boot();
        spawn(
            &mut k,
            &format!(
                "_start:\n\
                 mov eax, {mmap}\n\
                 mov ebx, 0\n\
                 mov ecx, 0x100000      ; 256 pages, demand-backed\n\
                 mov edx, 3\n\
                 int 0x80\n\
                 mov esi, eax\n\
                 mov [esi], esi          ; touch exactly one page\n\
                 mov eax, {exit}\n\
                 mov ebx, 0\n\
                 int 0x80\n",
                mmap = sys::MMAP,
                exit = sys::EXIT,
            ),
        );
        let before = k.frames.remaining();
        assert_eq!(run(&mut k), Outcome::Exited(0));
        let used = before - k.frames.remaining();
        // One data frame (plus at most a page-table frame).
        assert!(used <= 2, "demand paging materialized {used} frames");

        // Only the touched page has a PTE.
        let tid = k.current_tid().unwrap();
        let addr = k.m.cpu.reg(Reg::Esi);
        let cr3 = k.task(tid).cr3;
        assert!(get_pte(&k.m.mem, cr3, addr).is_some());
        assert!(get_pte(&k.m.mem, cr3, addr + 8192).is_none());
    }

    #[test]
    fn fault_time_ppl_marking_for_promoted_tasks() {
        // §4.5.2: a writable page of an SPL 2 process is marked PPL 0 at
        // page-fault time.
        let mut k = Kernel::boot();
        spawn(
            &mut k,
            &format!(
                "_start:\n\
                 mov eax, {init_pl}\n\
                 int 0x80\n\
                 mov eax, {mmap}\n\
                 mov ebx, 0\n\
                 mov ecx, 8192\n\
                 mov edx, 3\n\
                 int 0x80\n\
                 mov esi, eax\n\
                 mov [esi], esi          ; fault -> map -> PPL 0\n\
                 mov eax, {exit}\n\
                 mov ebx, 0\n\
                 int 0x80\n",
                init_pl = sys::INIT_PL,
                mmap = sys::MMAP,
                exit = sys::EXIT,
            ),
        );
        assert_eq!(run(&mut k), Outcome::Exited(0));
        let tid = k.current_tid().unwrap();
        let addr = k.m.cpu.reg(Reg::Esi);
        let cr3 = k.task(tid).cr3;
        let p = get_pte(&k.m.mem, cr3, addr).unwrap();
        assert_eq!(p & pte::US, 0, "materialized at PPL 0 (supervisor)");
        assert!(
            get_pte(&k.m.mem, cr3, addr + 4096).is_none(),
            "second page untouched"
        );
    }

    #[test]
    fn mprotect_before_first_touch_sticks() {
        let mut k = Kernel::boot();
        spawn(
            &mut k,
            &format!(
                "_start:\n\
                 mov eax, {mmap}\n\
                 mov ebx, 0\n\
                 mov ecx, 4096\n\
                 mov edx, 3\n\
                 int 0x80\n\
                 mov esi, eax\n\
                 mov eax, {mprotect}\n\
                 mov ebx, esi\n\
                 mov ecx, 4096\n\
                 mov edx, 1              ; read-only before any touch\n\
                 int 0x80\n\
                 mov edi, [esi]          ; read: demand-maps read-only\n\
                 mov [esi], esi          ; write: must fault\n\
                 mov eax, {exit}\n\
                 mov ebx, 0\n\
                 int 0x80\n",
                mmap = sys::MMAP,
                mprotect = sys::MPROTECT,
                exit = sys::EXIT,
            ),
        );
        match run(&mut k) {
            Outcome::Signaled { sig, .. } => assert_eq!(sig, crate::SIGSEGV),
            other => panic!("expected SIGSEGV, got {other:?}"),
        }
    }

    #[test]
    fn access_outside_any_area_is_still_fatal() {
        let mut k = Kernel::boot();
        spawn(&mut k, "_start:\nmov eax, [0x50000000]\nhlt\n");
        match run(&mut k) {
            Outcome::Signaled { sig, .. } => assert_eq!(sig, crate::SIGSEGV),
            other => panic!("expected SIGSEGV, got {other:?}"),
        }
    }
}

mod checkpoint {
    //! Kernel-level checkpoint/restore: a restored kernel world must be
    //! cycle-, stat- and console-identical going forward.

    use super::*;
    use crate::layout::errno;

    /// A looping workload that mixes syscalls (write, brk, getpid) with
    /// raw computation so a mid-run checkpoint lands in interesting state.
    fn busy_src() -> String {
        format!(
            "_start:\n\
             mov esi, 12\n\
             loop:\n\
             mov eax, {write}\n\
             mov ebx, 1\n\
             mov ecx, msg\n\
             mov edx, 2\n\
             int 0x80\n\
             mov eax, {getpid}\n\
             int 0x80\n\
             add edi, eax\n\
             dec esi\n\
             cmp esi, 0\n\
             jne loop\n\
             mov eax, {exit}\n\
             mov ebx, edi\n\
             int 0x80\n\
             msg:\n\
             .asciz \"x\\n\"\n",
            write = sys::WRITE,
            getpid = sys::GETPID,
            exit = sys::EXIT,
        )
    }

    fn observe(
        k: &Kernel,
    ) -> (
        u64,
        u64,
        crate::kernel::KernelStats,
        String,
        Vec<crate::Tid>,
    ) {
        (
            k.m.cycles(),
            k.m.insns(),
            k.stats,
            k.console_text(),
            k.tids(),
        )
    }

    #[test]
    fn kernel_image_roundtrips_and_resumes_identically() {
        let mut original = Kernel::boot();
        spawn(&mut original, &busy_src());
        // Stop partway through the loop.
        assert_eq!(original.run_current(Budget::Insns(40)), Outcome::Budget);

        let img = original.save_image();
        let mut restored = Kernel::restore_image(&img).unwrap();
        assert_eq!(observe(&original), observe(&restored));

        let a = run(&mut original);
        let b = run(&mut restored);
        assert_eq!(a, b);
        assert_eq!(observe(&original), observe(&restored));
        assert!(matches!(a, Outcome::Exited(_)));
    }

    #[test]
    fn restored_kernel_can_spawn_and_fault_identically() {
        // Post-restore, task creation, demand paging and fault delivery
        // all behave as in the never-checkpointed world.
        let mut original = Kernel::boot();
        spawn(&mut original, "_start:\nmov eax, [0xD0000000]\nhlt\n");
        let img = original.save_image();
        let mut restored = Kernel::restore_image(&img).unwrap();
        let a = run(&mut original);
        let b = run(&mut restored);
        assert_eq!(a, b);
        assert!(matches!(a, Outcome::Signaled { sig: SIGSEGV, .. }));
        assert_eq!(observe(&original), observe(&restored));
        // And both worlds can still spawn fresh tasks deterministically.
        spawn(&mut original, &busy_src());
        spawn(&mut restored, &busy_src());
        assert_eq!(run(&mut original), run(&mut restored));
        assert_eq!(observe(&original), observe(&restored));
    }

    #[test]
    fn mailbox_and_ldt_survive_checkpoint() {
        let mut k = Kernel::boot();
        let tid = spawn(&mut k, &busy_src());
        k.task_mut(tid).mailbox.push_back((7, b"ping".to_vec()));
        k.palladium_init_pl();
        let gate = k.palladium_set_call_gate(USER_TEXT + 4);
        assert!(gate > 0);
        k.save_current();
        let img = k.save_image();
        let r = Kernel::restore_image(&img).unwrap();
        assert_eq!(r.task(tid).mailbox.front(), k.task(tid).mailbox.front());
        assert_eq!(r.task(tid).task_spl, 2);
        assert_eq!(r.task(tid).ldt.len(), k.task(tid).ldt.len());
    }

    #[test]
    fn corrupt_kernel_images_are_rejected() {
        let mut k = Kernel::boot();
        spawn(&mut k, &busy_src());
        let img = k.save_image();
        // A bit flip inside the embedded machine blob must surface as a
        // typed error, never a silently-wrong kernel.
        let mut bad = img.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x10;
        assert!(Kernel::restore_image(&bad).is_err());
        assert!(Kernel::restore_image(&img[..img.len() - 5]).is_err());
        // Wrong kind: a machine image is not a kernel image.
        let m = x86sim::Machine::new();
        assert!(matches!(
            Kernel::restore_image(&m.save_image()),
            Err(x86sim::RestoreError::Kind { .. })
        ));
        let _ = errno::EPERM; // keep the import used on all paths
    }
}
