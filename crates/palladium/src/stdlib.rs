//! A miniature libc and the extension-side allocator.
//!
//! The paper's user-level design lets extensions call **non-buffering**
//! library routines (`strcpy`, `strlen`, ...) directly, because those
//! routines' code pages are shared at PPL 1 and they keep no internal
//! state. **Buffering** routines (`fprintf`-style) must be exposed as
//! application services instead, because their data areas stay at PPL 0.
//!
//! `xmalloc` allocates from the *extension's* heap (a bump allocator whose
//! state lives in the extension's own writable PPL 1 page) — using plain
//! `malloc` would try to grow the application's PPL 0 heap and fault.

use asm86::{Assembler, Object};
use minikernel::layout::sys;

/// Assembly prelude of `.equ` constants for guest programmers: syscall
/// numbers and the kernel-service numbers kernel extensions may use.
/// Prepend to hand-written sources so magic numbers get names.
pub fn prelude() -> String {
    format!(
        ".equ SYS_EXIT, {exit}
.equ SYS_FORK, {fork}
.equ SYS_WRITE, {write}
.equ SYS_GETPID, {getpid}
.equ SYS_WAITPID, {waitpid}
.equ SYS_BRK, {brk}
.equ SYS_MMAP, {mmap}
.equ SYS_MUNMAP, {munmap}
.equ SYS_CYCLES, {cycles}
.equ SYS_INIT_PL, {init_pl}
.equ SYS_SET_RANGE, {set_range}
.equ SYS_SET_CALL_GATE, {set_call_gate}
.equ KSVC_LOG, {ksvc_log}
.equ KSVC_CYCLES, {ksvc_cycles}
.equ KSVC_SHARED_SIZE, {ksvc_shared}
",
        exit = sys::EXIT,
        fork = sys::FORK,
        write = sys::WRITE,
        getpid = sys::GETPID,
        waitpid = sys::WAITPID,
        brk = sys::BRK,
        mmap = sys::MMAP,
        munmap = sys::MUNMAP,
        cycles = sys::CYCLES,
        init_pl = sys::INIT_PL,
        set_range = sys::SET_RANGE,
        set_call_gate = sys::SET_CALL_GATE,
        ksvc_log = crate::kernel_ext::kservice::LOG,
        ksvc_cycles = crate::kernel_ext::kservice::CYCLES,
        ksvc_shared = crate::kernel_ext::kservice::SHARED_SIZE,
    )
}

/// Assembles the shared mini-libc (non-buffering routines only).
///
/// Exported symbols: `strlen`, `strcpy`, `memcpy`, `strrev`, `strcmp`.
/// All follow cdecl: arguments on the stack, result in `eax`, `ecx`/`edx`
/// caller-saved.
pub fn libc_object() -> Object {
    Assembler::assemble(
        "\
; size_t strlen(const char *s)
strlen:
    mov edx, [esp+4]
    mov eax, 0
strlen_loop:
    mov ecx, byte [edx]
    cmp ecx, 0
    je strlen_done
    inc eax
    inc edx
    jmp strlen_loop
strlen_done:
    ret

; char *strcpy(char *dst, const char *src) — returns dst
strcpy:
    mov eax, [esp+4]
    mov edx, [esp+8]
    mov ecx, eax
strcpy_loop:
    mov esi, byte [edx]
    mov byte [ecx], esi
    cmp esi, 0
    je strcpy_done
    inc ecx
    inc edx
    jmp strcpy_loop
strcpy_done:
    ret

; void *memcpy(void *dst, const void *src, size_t n) — returns dst
memcpy:
    mov eax, [esp+4]
    mov edx, [esp+8]
    mov ecx, [esp+12]
    mov esi, eax
memcpy_loop:
    cmp ecx, 0
    je memcpy_done
    mov edi, byte [edx]
    mov byte [esi], edi
    inc esi
    inc edx
    dec ecx
    jmp memcpy_loop
memcpy_done:
    ret

; int strcmp(const char *a, const char *b)
strcmp:
    mov ecx, [esp+4]
    mov edx, [esp+8]
strcmp_loop:
    mov eax, byte [ecx]
    mov esi, byte [edx]
    cmp eax, esi
    jne strcmp_diff
    cmp eax, 0
    je strcmp_eq
    inc ecx
    inc edx
    jmp strcmp_loop
strcmp_diff:
    sub eax, esi
    ret
strcmp_eq:
    mov eax, 0
    ret

; void strrev(char *s, int len) — reverse in place
strrev:
    mov ecx, [esp+4]        ; i = s
    mov edx, [esp+4]
    add edx, [esp+8]
    dec edx                 ; j = s + len - 1
strrev_loop:
    cmp ecx, edx
    jae strrev_done
    mov eax, byte [ecx]
    mov esi, byte [edx]
    mov byte [ecx], esi
    mov byte [edx], eax
    inc ecx
    dec edx
    jmp strrev_loop
strrev_done:
    ret
",
    )
    .expect("libc assembles")
}

/// Assembles the `xmalloc` bump allocator, linked *into* each extension
/// image so that its heap-cursor state (`xheap_next`, `xheap_end`) lives
/// in the extension's own PPL 1 pages. The loader initializes the cursor
/// to the extension heap's bounds. Returns null (0) when exhausted.
pub fn xmalloc_object() -> Object {
    Assembler::assemble(
        "\
; void *xmalloc(size_t n) — 8-byte aligned bump allocation
xmalloc:
    mov ecx, [esp+4]
    add ecx, 7
    mov edx, -8
    and ecx, edx            ; round up to 8
    mov eax, [xheap_next]
    mov edx, eax
    add edx, ecx
    cmp [xheap_end], edx
    jb xmalloc_oom
    mov [xheap_next], edx
    ret
xmalloc_oom:
    mov eax, 0
    ret

; current heap cursor (set by seg_dlopen)
xheap_next:
    .dd 0
; heap limit (set by seg_dlopen)
xheap_end:
    .dd 0
",
    )
    .expect("xmalloc assembles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn libc_exports_expected_symbols() {
        let o = libc_object();
        for sym in ["strlen", "strcpy", "memcpy", "strcmp", "strrev"] {
            assert!(o.symbol(sym).is_some(), "missing {sym}");
        }
        assert!(o.undefined_symbols().is_empty());
    }

    #[test]
    fn xmalloc_exports_heap_slots() {
        let o = xmalloc_object();
        assert!(o.symbol("xmalloc").is_some());
        assert!(o.symbol("xheap_next").is_some());
        assert!(o.symbol("xheap_end").is_some());
    }

    #[test]
    fn libc_links_standalone() {
        let o = libc_object();
        assert!(o.link(0x4000_0000, &Default::default()).is_ok());
    }
}

#[cfg(test)]
mod prelude_tests {
    use super::*;

    #[test]
    fn prelude_names_work_in_guest_programs() {
        use minikernel::{Budget, Kernel, Outcome};
        let src = format!(
            "{}\n_start:\nmov eax, SYS_EXIT\nmov ebx, 42\nint 0x80\n",
            prelude()
        );
        let obj = Assembler::assemble(&src).unwrap();
        let mut k = Kernel::boot();
        let tid = k.spawn(&obj, &Default::default()).unwrap();
        k.switch_to(tid);
        assert_eq!(k.run_current(Budget::Insns(100)), Outcome::Exited(42));
    }

    #[test]
    fn prelude_constants_do_not_shift_with_base() {
        let obj =
            Assembler::assemble(&format!("{}\nf:\nmov eax, SYS_WRITE\nret\n", prelude())).unwrap();
        let a = obj.link(0, &Default::default()).unwrap();
        let b = obj.link(0x7000, &Default::default()).unwrap();
        assert_eq!(a, b, "pure-constant code is position independent");
    }
}
