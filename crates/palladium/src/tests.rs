//! End-to-end tests of both Palladium mechanisms, running the full
//! Figure 6 sequences on the simulated CPU.

use asm86::Assembler;
use minikernel::{Kernel, USER_TEXT};

use crate::kernel_ext::{KernelExtensions, KextError, SegmentConfig};
use crate::user_ext::{DlopenOptions, ExtCallError, ExtensibleApp};

fn obj(src: &str) -> asm86::Object {
    Assembler::assemble(src).expect("asm")
}

// ---------- user-level mechanism -------------------------------------------

#[test]
fn null_extension_call_round_trip() {
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).unwrap();
    let h = app
        .dlopen(&mut k, &obj("null_fn:\nret\n"), &DlopenOptions::new())
        .unwrap();
    let prep = app.seg_dlsym(&mut k, h, "null_fn").unwrap();

    let r = app.call_extension(&mut k, prep, 0xDEAD).unwrap();
    // A null function leaves eax = the argument (invoke stub put it there).
    assert_eq!(r, 0xDEAD);
    assert_eq!(app.calls, 1);
    assert_eq!(app.aborted_calls, 0);
}

#[test]
fn extension_computes_a_result() {
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).unwrap();
    let h = app
        .dlopen(
            &mut k,
            &obj("triple_plus_one:\n\
                 mov eax, [esp+4]\n\
                 imul eax, 3\n\
                 inc eax\n\
                 ret\n"),
            &DlopenOptions::new(),
        )
        .unwrap();
    let prep = app.seg_dlsym(&mut k, h, "triple_plus_one").unwrap();
    assert_eq!(app.call_extension(&mut k, prep, 14).unwrap(), 43);
    // Repeated calls are stable (warm state).
    assert_eq!(app.call_extension(&mut k, prep, 0).unwrap(), 1);
    assert_eq!(app.call_extension(&mut k, prep, 100).unwrap(), 301);
}

#[test]
fn warm_protected_call_cost_is_deterministic() {
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).unwrap();
    let h = app
        .dlopen(&mut k, &obj("null_fn:\nret\n"), &DlopenOptions::new())
        .unwrap();
    let prep = app.seg_dlsym(&mut k, h, "null_fn").unwrap();

    // Warm up (first call walks cold TLB entries).
    app.call_extension(&mut k, prep, 0).unwrap();
    let c0 = k.m.cycles();
    app.call_extension(&mut k, prep, 0).unwrap();
    let c1 = k.m.cycles();
    app.call_extension(&mut k, prep, 0).unwrap();
    let c2 = k.m.cycles();
    assert_eq!(c1 - c0, c2 - c1, "warm calls cost identically");
    // The protected-call core is 142 cycles; the measured path adds the
    // invoke stub, the yield int and host bookkeeping.
    let warm = c2 - c1;
    assert!(warm >= 142, "at least the Figure 6 cost, got {warm}");
    assert!(warm < 500, "no unexpected overhead, got {warm}");
}

#[test]
fn extension_cannot_touch_application_memory() {
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).unwrap();
    // The app image page (PPL 0 after init_PL) is the target.
    let h = app
        .dlopen(
            &mut k,
            &obj(&format!(
                "evil:\n\
                 mov eax, 1\n\
                 mov [{USER_TEXT}], eax\n\
                 ret\n"
            )),
            &DlopenOptions::new(),
        )
        .unwrap();
    let prep = app.seg_dlsym(&mut k, h, "evil").unwrap();

    match app.call_extension(&mut k, prep, 0) {
        Err(ExtCallError::Fault { sig, addr, cause }) => {
            assert_eq!(sig, minikernel::SIGSEGV);
            assert_eq!(addr, USER_TEXT);
            // Satellite check: the structured cause made it through the
            // guest signal trampoline round-trip.
            assert_eq!(cause.expect("cause recorded").tag(), "page-protection");
        }
        other => panic!("expected fault, got {other:?}"),
    }
    assert_eq!(app.aborted_calls, 1);
    // The application memory is intact and the app still works.
    assert_ne!(k.m.host_read(USER_TEXT, 4), vec![1, 0, 0, 0]);

    let h2 = app
        .dlopen(
            &mut k,
            &obj("ok:\nmov eax, 7\nret\n"),
            &DlopenOptions::new(),
        )
        .unwrap();
    let prep2 = app.seg_dlsym(&mut k, h2, "ok").unwrap();
    assert_eq!(app.call_extension(&mut k, prep2, 0).unwrap(), 7);
}

#[test]
fn extension_cannot_read_application_memory_either() {
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).unwrap();
    let h = app
        .dlopen(
            &mut k,
            &obj(&format!("snoop:\nmov eax, [{USER_TEXT}]\nret\n")),
            &DlopenOptions::new(),
        )
        .unwrap();
    let prep = app.seg_dlsym(&mut k, h, "snoop").unwrap();
    assert!(matches!(
        app.call_extension(&mut k, prep, 0),
        Err(ExtCallError::Fault { .. })
    ));
}

#[test]
fn extension_cannot_reach_kernel_space() {
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).unwrap();
    let h = app
        .dlopen(
            &mut k,
            &obj("probe:\nmov eax, [0xD0000000]\nret\n"),
            &DlopenOptions::new(),
        )
        .unwrap();
    let prep = app.seg_dlsym(&mut k, h, "probe").unwrap();
    // Segment limit (3 GB) raises #GP before paging is even consulted.
    assert!(matches!(
        app.call_extension(&mut k, prep, 0),
        Err(ExtCallError::Fault { .. })
    ));
}

#[test]
fn runaway_extension_hits_time_limit() {
    let mut k = Kernel::boot();
    k.extension_cycle_limit = 50_000;
    let mut app = ExtensibleApp::new(&mut k).unwrap();
    let h = app
        .dlopen(&mut k, &obj("spin:\njmp spin\n"), &DlopenOptions::new())
        .unwrap();
    let prep = app.seg_dlsym(&mut k, h, "spin").unwrap();
    assert_eq!(
        app.call_extension(&mut k, prep, 0),
        Err(ExtCallError::TimeLimit)
    );
    // The app survives and can still call well-behaved extensions.
    let h2 = app
        .dlopen(&mut k, &obj("f:\nmov eax, 5\nret\n"), &DlopenOptions::new())
        .unwrap();
    let prep2 = app.seg_dlsym(&mut k, h2, "f").unwrap();
    assert_eq!(app.call_extension(&mut k, prep2, 0).unwrap(), 5);
}

#[test]
fn shared_data_area_is_visible_to_both_sides() {
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).unwrap();
    let shared = app.alloc_shared(&mut k, 1).unwrap();

    // App-side (host) write; extension reads, increments, writes back.
    k.m.host_write_u32(shared, 41);
    let h = app
        .dlopen(
            &mut k,
            &obj("bump:\n\
                 mov ecx, [esp+4]\n\
                 mov eax, [ecx]\n\
                 inc eax\n\
                 mov [ecx], eax\n\
                 ret\n"),
            &DlopenOptions::new(),
        )
        .unwrap();
    let prep = app.seg_dlsym(&mut k, h, "bump").unwrap();
    // Pointers pass unswizzled: hand the extension the raw address.
    assert_eq!(app.call_extension(&mut k, prep, shared).unwrap(), 42);
    assert_eq!(k.m.host_read_u32(shared), 42);
}

#[test]
fn extension_calls_shared_libc_directly() {
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).unwrap();
    app.load_libc(&mut k).unwrap();
    let shared = app.alloc_shared(&mut k, 1).unwrap();
    k.m.host_write(shared, b"hello\0");

    // The extension imports strlen from the shared library; the call goes
    // through the PLT -> sealed GOT -> libc at PPL 1.
    let h = app
        .dlopen(
            &mut k,
            &obj("measure:\n\
                 push dword [esp+4]\n\
                 call strlen\n\
                 add esp, 4\n\
                 ret\n"),
            &DlopenOptions::new(),
        )
        .unwrap();
    assert!(app.got_page(h).unwrap().is_some(), "GOT was built");
    let prep = app.seg_dlsym(&mut k, h, "measure").unwrap();
    assert_eq!(app.call_extension(&mut k, prep, shared).unwrap(), 5);
}

#[test]
fn libc_strrev_reverses_in_shared_area() {
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).unwrap();
    app.load_libc(&mut k).unwrap();
    let shared = app.alloc_shared(&mut k, 1).unwrap();
    k.m.host_write(shared, b"abcdef");

    let h = app
        .dlopen(
            &mut k,
            &obj("rev6:\n\
                 push 6\n\
                 push dword [esp+8]\n\
                 call strrev\n\
                 add esp, 8\n\
                 mov eax, 0\n\
                 ret\n"),
            &DlopenOptions::new(),
        )
        .unwrap();
    let prep = app.seg_dlsym(&mut k, h, "rev6").unwrap();
    app.call_extension(&mut k, prep, shared).unwrap();
    assert_eq!(k.m.host_read(shared, 6), b"fedcba");
}

#[test]
fn got_is_sealed_read_only() {
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).unwrap();
    app.load_libc(&mut k).unwrap();

    let h = app
        .dlopen(
            &mut k,
            &obj("pwn_got:\n\
                 mov ecx, [esp+4]     ; GOT address passed as arg\n\
                 mov eax, 0x41414141\n\
                 mov [ecx], eax       ; redirect strlen? denied.\n\
                 ret\n\
                 uses_strlen:\n\
                 call strlen\n\
                 ret\n"),
            &DlopenOptions::new(),
        )
        .unwrap();
    let got = app.got_page(h).unwrap().expect("has GOT");
    let prep = app.seg_dlsym(&mut k, h, "pwn_got").unwrap();
    match app.call_extension(&mut k, prep, got) {
        Err(ExtCallError::Fault { addr, .. }) => assert_eq!(addr, got),
        other => panic!("expected GOT write to fault, got {other:?}"),
    }
}

#[test]
fn extension_syscalls_are_rejected() {
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).unwrap();
    let h = app
        .dlopen(
            &mut k,
            &obj("try_syscall:\n\
                 mov eax, 20          ; getpid\n\
                 int 0x80\n\
                 ret\n"),
            &DlopenOptions::new(),
        )
        .unwrap();
    let prep = app.seg_dlsym(&mut k, h, "try_syscall").unwrap();
    let r = app.call_extension(&mut k, prep, 0).unwrap();
    assert_eq!(
        r as i32, -1,
        "EPERM: extensions cannot make direct syscalls"
    );
    assert_eq!(k.stats.syscalls_rejected, 1);
}

#[test]
fn application_service_via_call_gate() {
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).unwrap();

    // An application service at SPL 2: doubles its stack argument and adds
    // the pid (so it demonstrably can make syscalls the extension cannot).
    let syms = app
        .install_app_code(
            &mut k,
            &obj("svc_impl:\n\
                 mov ecx, [esp+4]\n\
                 add ecx, ecx\n\
                 mov eax, 20          ; getpid\n\
                 int 0x80\n\
                 add eax, ecx\n\
                 ret\n"),
        )
        .unwrap();
    let gate = app.register_service(&mut k, syms["svc_impl"]).unwrap();

    let h = app
        .dlopen(
            &mut k,
            &obj("use_service:\n\
                 push dword [esp+4]\n\
                 patchme:\n\
                 lcall 0, 0\n\
                 add esp, 4\n\
                 ret\n"),
            &DlopenOptions::new(),
        )
        .unwrap();
    // Patch the gate selector into the extension's lcall (a real extension
    // would receive it through the shared area or a header).
    let patch_at = app.dlsym(h, "patchme").unwrap() + 1;
    assert!(k.m.host_write(patch_at, &gate.to_le_bytes()));

    let prep = app.seg_dlsym(&mut k, h, "use_service").unwrap();
    let pid = app.tid;
    assert_eq!(app.call_extension(&mut k, prep, 21).unwrap(), 42 + pid);
    assert_eq!(
        k.stats.syscalls_rejected, 0,
        "the service's syscall was accepted (CS at SPL 2)"
    );
}

#[test]
fn xmalloc_allocates_from_extension_heap() {
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).unwrap();
    let h = app
        .dlopen(
            &mut k,
            &obj("alloc2:\n\
                 push 16\n\
                 call xmalloc\n\
                 add esp, 4\n\
                 mov esi, eax          ; esi survives xmalloc (ecx does not)\n\
                 push 24\n\
                 call xmalloc\n\
                 add esp, 4\n\
                 sub eax, esi\n\
                 ret\n"),
            &DlopenOptions::new(),
        )
        .unwrap();
    let prep = app.seg_dlsym(&mut k, h, "alloc2").unwrap();
    assert_eq!(app.call_extension(&mut k, prep, 0).unwrap(), 16);

    // The returned memory is writable by the extension.
    let h2 = app
        .dlopen(
            &mut k,
            &obj("alloc_use:\n\
                 push 64\n\
                 call xmalloc\n\
                 add esp, 4\n\
                 mov ecx, 0xFEED\n\
                 mov [eax], ecx\n\
                 mov eax, [eax]\n\
                 ret\n"),
            &DlopenOptions::new(),
        )
        .unwrap();
    let prep2 = app.seg_dlsym(&mut k, h2, "alloc_use").unwrap();
    assert_eq!(app.call_extension(&mut k, prep2, 0).unwrap(), 0xFEED);
}

#[test]
fn seg_dlclose_revokes_the_extension() {
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).unwrap();
    let h = app
        .dlopen(&mut k, &obj("f:\nmov eax, 9\nret\n"), &DlopenOptions::new())
        .unwrap();
    let prep = app.seg_dlsym(&mut k, h, "f").unwrap();
    assert_eq!(app.call_extension(&mut k, prep, 0).unwrap(), 9);

    app.seg_dlclose(&mut k, h).unwrap();
    // Symbol lookups now fail...
    assert!(app.dlsym(h, "f").is_err());
    // ...and the stale Prepare faults when the extension code is fetched.
    assert!(matches!(
        app.call_extension(&mut k, prep, 0),
        Err(ExtCallError::Fault { .. })
    ));
}

#[test]
fn dlsym_returns_raw_data_addresses() {
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).unwrap();
    let h = app
        .dlopen(
            &mut k,
            &obj("get:\nmov eax, [table]\nret\ntable:\n.dd 0x1234\n"),
            &DlopenOptions::new(),
        )
        .unwrap();
    let table = app.dlsym(h, "table").unwrap();
    assert_eq!(k.m.host_read_u32(table), 0x1234);
    // The same address works from both sides — no swizzling.
    let prep = app.seg_dlsym(&mut k, h, "get").unwrap();
    assert_eq!(app.call_extension(&mut k, prep, 0).unwrap(), 0x1234);
}

// ---------- kernel-level mechanism ------------------------------------------

#[test]
fn kernel_extension_invoke_round_trip() {
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).unwrap();
    let seg = kx.create_segment(&mut k, 16).unwrap();
    kx.insmod(
        &mut k,
        seg,
        "double",
        &obj("ext_double:\nmov eax, [esp+4]\nadd eax, eax\nret\n"),
        &["ext_double"],
    )
    .unwrap();

    assert_eq!(kx.invoke(&mut k, seg, "ext_double", 21).unwrap(), 42);
    assert_eq!(kx.invoke(&mut k, seg, "ext_double", 100).unwrap(), 200);
    assert_eq!(kx.calls, 2);
    assert_eq!(kx.aborts, 0);
}

#[test]
fn unknown_extension_function_is_reported() {
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).unwrap();
    let seg = kx.create_segment(&mut k, 8).unwrap();
    assert_eq!(
        kx.invoke(&mut k, seg, "missing", 0),
        Err(KextError::NoSuchFunction("missing".into()))
    );
}

#[test]
fn kernel_extension_confined_by_segment_limit() {
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).unwrap();
    let seg = kx.create_segment(&mut k, 8).unwrap();
    // The extension tries to read past its segment limit (offset 1 MB in
    // an 32 KB segment): #GP, extension aborted.
    kx.insmod(
        &mut k,
        seg,
        "escape",
        &obj("esc:\nmov eax, [0x100000]\nret\n"),
        &["esc"],
    )
    .unwrap();
    let before = k.m.cycles();
    match kx.invoke(&mut k, seg, "esc", 0) {
        Err(KextError::Aborted(f)) => {
            assert_eq!(f.vector, x86sim::Vector::GeneralProtection);
            assert_eq!(f.cpl, 1, "fault at SPL 1");
        }
        other => panic!("expected abort, got {other:?}"),
    }
    // §5.2: the abort path costs ~1,020 cycles on top of the partial run.
    assert!(k.m.cycles() - before >= 1_020);
    assert_eq!(kx.aborts, 1);
    // One fault is a strike, not a death sentence: the segment stays
    // usable until the quarantine threshold.
    assert_eq!(kx.segment(seg).strikes, 1);
    assert!(!kx.segment(seg).dead);
    assert!(matches!(
        kx.invoke(&mut k, seg, "esc", 0),
        Err(KextError::Aborted(_))
    ));
    assert!(matches!(
        kx.invoke(&mut k, seg, "esc", 0),
        Err(KextError::Aborted(_))
    ));
    // Third strike: automatic quarantine — modules unloaded, EFT
    // tombstoned, descriptors revoked.
    assert_eq!(kx.aborts, 3);
    assert!(kx.segment(seg).quarantined);
    assert!(kx.segment(seg).dead);
    assert_eq!(kx.quarantines, 1);
    assert!(kx.segment(seg).tombstones.contains_key("esc"));
    assert!(kx.segment(seg).modules.is_empty());
    assert_eq!(
        kx.invoke(&mut k, seg, "esc", 0),
        Err(KextError::Quarantined { strikes: 3 })
    );
}

#[test]
fn kernel_extension_cannot_write_kernel_memory() {
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).unwrap();
    let seg = kx.create_segment(&mut k, 8).unwrap();
    // Try to store through an absolute kernel linear address: interpreted
    // against the extension's segment base, 0xD0000000 is far beyond the
    // limit -> #GP. (Wrap-around addresses equally die on the limit.)
    kx.insmod(
        &mut k,
        seg,
        "scribble",
        &obj("w:\nmov eax, 0x41\nmov [0xD0000000], eax\nret\n"),
        &["w"],
    )
    .unwrap();
    assert!(matches!(
        kx.invoke(&mut k, seg, "w", 0),
        Err(KextError::Aborted(_))
    ));
}

#[test]
fn shared_data_area_passes_bulk_arguments() {
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).unwrap();
    let seg = kx.create_segment(&mut k, 16).unwrap();
    kx.insmod(
        &mut k,
        seg,
        "summer",
        &obj("; sums shared_area[0..n), n passed as the argument\n\
             sum:\n\
             mov ecx, [esp+4]\n\
             mov eax, 0\n\
             mov edx, shared_area\n\
             sum_loop:\n\
             cmp ecx, 0\n\
             je sum_done\n\
             add eax, [edx]\n\
             add edx, 4\n\
             dec ecx\n\
             jmp sum_loop\n\
             sum_done:\n\
             ret\n\
             .align 16\n\
             shared_area:\n\
             .space 256\n\
             shared_area_end:\n"),
        &["sum"],
    )
    .unwrap();

    let (lin, size) = kx.shared_area_linear(seg).expect("shared area found");
    assert_eq!(size, 256);
    // Kernel writes arguments into the shared area without copying through
    // the invocation interface.
    for i in 0..10u32 {
        k.m.host_write_u32(lin + i * 4, i + 1);
    }
    assert_eq!(kx.invoke(&mut k, seg, "sum", 10).unwrap(), 55);
}

#[test]
fn kernel_service_log_from_extension() {
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).unwrap();
    let seg = kx.create_segment(&mut k, 16).unwrap();
    kx.insmod(
        &mut k,
        seg,
        "logger",
        &obj("hello:\n\
             mov eax, 0           ; KSVC log\n\
             mov ebx, msg         ; segment-relative offset\n\
             mov ecx, 3\n\
             int 0x81\n\
             ret\n\
             msg:\n\
             .asciz \"ext\"\n"),
        &["hello"],
    )
    .unwrap();
    kx.invoke(&mut k, seg, "hello", 0).unwrap();
    assert_eq!(k.console_text(), "ext");
}

#[test]
fn kernel_extension_time_limit() {
    let mut k = Kernel::boot();
    k.extension_cycle_limit = 20_000;
    let mut kx = KernelExtensions::new(&mut k).unwrap();
    // Abort-once semantics for this test: first strike quarantines.
    let seg = kx
        .create_segment_with(
            &mut k,
            8,
            SegmentConfig {
                quarantine_threshold: 1,
                ..SegmentConfig::default()
            },
        )
        .unwrap();
    kx.insmod(&mut k, seg, "loop", &obj("spin:\njmp spin\n"), &["spin"])
        .unwrap();
    assert_eq!(kx.invoke(&mut k, seg, "spin", 0), Err(KextError::TimeLimit));
    assert!(kx.segment(seg).dead);
}

#[test]
fn async_requests_run_to_completion_in_order() {
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).unwrap();
    let seg = kx.create_segment(&mut k, 16).unwrap();
    kx.insmod(
        &mut k,
        seg,
        "acc",
        &obj("; accumulates into a module-static counter\n\
             accumulate:\n\
             mov eax, [counter]\n\
             add eax, [esp+4]\n\
             mov [counter], eax\n\
             ret\n\
             counter:\n\
             .dd 0\n"),
        &["accumulate"],
    )
    .unwrap();

    kx.queue_async(seg, "accumulate", 5);
    kx.queue_async(seg, "accumulate", 7);
    kx.queue_async(seg, "accumulate", 30);
    assert!(kx.segment(seg).busy);
    let results = kx.run_pending(&mut k, seg);
    assert_eq!(
        results,
        vec![Ok(5), Ok(12), Ok(42)],
        "requests ran in order, to completion"
    );
    assert!(!kx.segment(seg).busy);
}

#[test]
fn modules_in_one_segment_share_state() {
    // §4.3: modules in the same segment share the stack and can share data
    // freely; Palladium does not protect them from each other.
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).unwrap();
    let seg = kx.create_segment(&mut k, 16).unwrap();
    let store = obj("put:\n\
         mov eax, [esp+4]\n\
         mov [slot], eax\n\
         ret\n\
         slot:\n\
         .dd 0\n");
    kx.insmod(&mut k, seg, "writer", &store, &["put"]).unwrap();
    // The second module reads the first one's slot by absolute offset —
    // allowed within a segment.
    let slot_off = {
        let seg_ref = kx.segment(seg);
        seg_ref.functions["put"] + store.symbol("slot").unwrap()
    };
    let reader = obj(&format!("peek:\nmov eax, [{slot_off}]\nret\n"));
    kx.insmod(&mut k, seg, "reader", &reader, &["peek"])
        .unwrap();

    kx.invoke(&mut k, seg, "put", 0xBEEF).unwrap();
    assert_eq!(kx.invoke(&mut k, seg, "peek", 0).unwrap(), 0xBEEF);
}

#[test]
fn separate_segments_isolate_modules() {
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).unwrap();
    let seg_a = kx.create_segment(&mut k, 8).unwrap();
    let seg_b = kx.create_segment(&mut k, 8).unwrap();
    kx.insmod(
        &mut k,
        seg_a,
        "a",
        &obj("fa:\nmov [mine], eax\nret\nmine:\n.dd 0\n"),
        &["fa"],
    )
    .unwrap();
    // B tries to read A's memory through a flat offset — its own segment
    // limit stops it (A's base is far outside B's 32 KB window).
    kx.insmod(
        &mut k,
        seg_b,
        "b",
        &obj("fb:\nmov eax, [0x200000]\nret\n"),
        &["fb"],
    )
    .unwrap();
    assert!(matches!(
        kx.invoke(&mut k, seg_b, "fb", 0),
        Err(KextError::Aborted(_))
    ));
    // A is untouched by B's abort.
    assert!(!kx.segment(seg_a).dead);
    assert!(kx.invoke(&mut k, seg_a, "fa", 1).is_ok());
}

#[test]
fn rmmod_unregisters_functions() {
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).unwrap();
    let seg = kx.create_segment(&mut k, 8).unwrap();
    kx.insmod(&mut k, seg, "m", &obj("f:\nmov eax, 3\nret\n"), &["f"])
        .unwrap();
    assert_eq!(kx.invoke(&mut k, seg, "f", 0).unwrap(), 3);

    assert!(kx.rmmod(seg, "m"));
    assert!(!kx.rmmod(seg, "m"), "second rmmod is a no-op");
    assert_eq!(
        kx.invoke(&mut k, seg, "f", 0),
        Err(KextError::NoSuchFunction("f".into()))
    );
    // The segment stays usable for new modules.
    kx.insmod(&mut k, seg, "m2", &obj("g:\nmov eax, 4\nret\n"), &["g"])
        .unwrap();
    assert_eq!(kx.invoke(&mut k, seg, "g", 0).unwrap(), 4);
}

#[test]
fn destroy_segment_revokes_descriptors() {
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).unwrap();
    let seg = kx.create_segment(&mut k, 8).unwrap();
    kx.insmod(&mut k, seg, "m", &obj("f:\nret\n"), &["f"])
        .unwrap();
    let code_sel = kx.segment(seg).code_sel;

    kx.destroy_segment(&mut k, seg);
    assert_eq!(kx.invoke(&mut k, seg, "f", 0), Err(KextError::SegmentDead));

    // The descriptor is now not-present: any attempt to transfer through
    // the stale selector faults.
    match k.m.gdt.get(code_sel.index()).copied().unwrap() {
        x86sim::Descriptor::Code(c) => assert!(!c.present, "descriptor revoked"),
        other => panic!("unexpected descriptor {other:?}"),
    }

    // Other segments are unaffected.
    let seg2 = kx.create_segment(&mut k, 8).unwrap();
    kx.insmod(&mut k, seg2, "m", &obj("g:\nmov eax, 8\nret\n"), &["g"])
        .unwrap();
    assert_eq!(kx.invoke(&mut k, seg2, "g", 0).unwrap(), 8);
}

#[test]
fn service_stubs_make_services_plain_calls() {
    use crate::dl::merge_objects;
    use crate::user_ext::ExtensibleApp as App;

    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).unwrap();

    // Two application services at SPL 2.
    let syms = app
        .install_app_code(
            &mut k,
            &obj("svc_double:\n\
                 mov eax, [esp+4]\n\
                 add eax, eax\n\
                 ret\n\
                 svc_sum2:\n\
                 mov eax, [esp+4]\n\
                 add eax, [esp+8]\n\
                 ret\n"),
        )
        .unwrap();
    let g1 = app.register_service(&mut k, syms["svc_double"]).unwrap();
    let g2 = app.register_service(&mut k, syms["svc_sum2"]).unwrap();

    // The stub generator synthesizes near-callable wrappers; the
    // extension just `call`s them — no lcall, no selector knowledge.
    let stubs = App::service_stubs_object(&[("double", g1), ("sum2", g2)]);
    let ext = obj("use_both:\n\
         push dword [esp+4]\n\
         call double\n\
         add esp, 4\n\
         push 5\n\
         push eax\n\
         call sum2\n\
         add esp, 8\n\
         ret\n");
    let merged = merge_objects(&[&ext, &stubs]).unwrap();
    let h = app.dlopen(&mut k, &merged, &DlopenOptions::new()).unwrap();
    let f = app.seg_dlsym(&mut k, h, "use_both").unwrap();

    // (21*2) + 5 = 47, computed across four protection-domain crossings.
    assert_eq!(app.call_extension(&mut k, f, 21).unwrap(), 47);
}

#[test]
fn multi_argument_services_see_gcc_layout() {
    use crate::dl::merge_objects;
    use crate::user_ext::ExtensibleApp as App;

    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).unwrap();
    // A three-argument service: a*x + b (stack layout as a plain call).
    let syms = app
        .install_app_code(
            &mut k,
            &obj("axb:\n\
                 mov eax, [esp+4]\n\
                 imul eax, [esp+8]\n\
                 add eax, [esp+12]\n\
                 ret\n"),
        )
        .unwrap();
    let gate = app.register_service(&mut k, syms["axb"]).unwrap();
    let stubs = App::service_stubs_object(&[("axb", gate)]);
    let ext = obj("entry:\n\
         push 7\n\
         push 6\n\
         push dword [esp+12]\n\
         call axb\n\
         add esp, 12\n\
         ret\n");
    let merged = merge_objects(&[&ext, &stubs]).unwrap();
    let h = app.dlopen(&mut k, &merged, &DlopenOptions::new()).unwrap();
    let f = app.seg_dlsym(&mut k, h, "entry").unwrap();
    // arg*6 + 7 with arg = 5.
    assert_eq!(app.call_extension(&mut k, f, 5).unwrap(), 37);
}

#[test]
fn kernel_extension_trace_shows_spl0_spl1_round_trip() {
    use crate::segdb::SegDb;

    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).unwrap();
    let seg = kx.create_segment(&mut k, 8).unwrap();
    kx.insmod(
        &mut k,
        seg,
        "m",
        &obj("f:\nmov eax, [esp+4]\nadd eax, 2\nret\n"),
        &["f"],
    )
    .unwrap();
    kx.invoke(&mut k, seg, "f", 0).unwrap(); // warm

    k.m.enable_trace(256);
    assert_eq!(kx.invoke(&mut k, seg, "f", 40).unwrap(), 42);
    let trace = k.m.disable_trace().unwrap();

    // SPL 0 (stub/prepare/kret) and SPL 1 (transfer + extension) both ran;
    // exactly two crossings, mirroring the user-level path.
    let profile = SegDb::domain_profile(&trace);
    assert!(profile[&0] > 0, "ring-0 stub cycles");
    assert!(profile[&1] > 0, "ring-1 extension cycles");
    assert_eq!(SegDb::crossings(&trace), 2);

    // The ring-1 side includes the DS reload (12-cycle MovToSeg) the
    // paper attributes to cross-segment kernel extensions.
    let ring1 = crate::segdb::in_domain(&trace, 1);
    assert!(
        ring1
            .iter()
            .any(|r| matches!(r.insn, asm86::Insn::MovToSeg(..))),
        "kernel Transfer reloads DS: {ring1:?}"
    );
}

#[test]
fn ring1_extension_can_name_sibling_segment_documented_nuance() {
    // DESIGN.md §11: on real x86 (and here), a ring-1 code segment may
    // *load* another ring-1 data segment if it can guess the GDT
    // selector — segments protect the kernel (limit + SPL), and
    // inter-module isolation relies on selector opacity plus the
    // segment-per-module discipline. This test pins the semantics so the
    // deviation note stays true.
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).unwrap();
    let seg_a = kx.create_segment(&mut k, 8).unwrap();
    let seg_b = kx.create_segment(&mut k, 8).unwrap();
    kx.insmod(
        &mut k,
        seg_a,
        "victim",
        &obj("fa:\nret\nsecret:\n.dd 0x5EC2E7\n"),
        &["fa"],
    )
    .unwrap();
    let secret_off = {
        let store = obj("fa:\nret\nsecret:\n.dd 0x5EC2E7\n");
        kx.segment(seg_a).functions["fa"] + store.symbol("secret").unwrap()
    };
    let b_data_sel_of_a = kx.segment(seg_a).data_sel.0;

    // Extension B loads A's data selector (same DPL) and reads the
    // "secret" — permitted by the hardware rules.
    let spy = obj(&format!(
        "spy:\n\
         mov ecx, {b_data_sel_of_a}\n\
         mov es, ecx\n\
         mov eax, es:[{secret_off}]\n\
         ret\n"
    ));
    kx.insmod(&mut k, seg_b, "spy", &spy, &["spy"]).unwrap();
    assert_eq!(
        kx.invoke(&mut k, seg_b, "spy", 0).unwrap(),
        0x5EC2E7,
        "same-ring sibling segments are loadable when the selector is known"
    );

    // What it can NOT do is reach ring-0 data: kernel selectors fault.
    let kdata = k.sel.kdata.0;
    let escalate = obj(&format!(
        "esc:\n\
         mov ecx, {kdata}\n\
         mov es, ecx\n\
         ret\n"
    ));
    kx.insmod(&mut k, seg_b, "esc", &escalate, &["esc"])
        .unwrap();
    assert!(matches!(
        kx.invoke(&mut k, seg_b, "esc", 0),
        Err(KextError::Aborted(_))
    ));
}

#[test]
fn extension_cannot_rewrite_its_own_transfer_routine() {
    // The SPL 3 trampoline page is sealed read-only: an extension that
    // tries to redirect its Transfer (e.g. to skip the gate) faults.
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).unwrap();
    let h = app
        .dlopen(
            &mut k,
            &obj("vandal:\n\
                 mov ecx, [esp+4]       ; transfer address (passed in)\n\
                 mov eax, 0x90909090\n\
                 mov [ecx], eax\n\
                 ret\n"),
            &DlopenOptions::new(),
        )
        .unwrap();
    let prep = app.seg_dlsym(&mut k, h, "vandal").unwrap();
    let (_, transfer) = app.trampoline_addrs(h, "vandal").unwrap();
    match app.call_extension(&mut k, prep, transfer) {
        Err(ExtCallError::Fault { addr, .. }) => assert_eq!(addr, transfer),
        other => panic!("expected RO fault on the trampoline, got {other:?}"),
    }
    // The trampoline is intact: the function still calls fine with a
    // harmless argument target (its own stack scratch).
    let shared = app.alloc_shared(&mut k, 1).unwrap();
    assert!(app.call_extension(&mut k, prep, shared).is_ok());
}

#[test]
fn user_extension_cannot_reach_the_kernel_return_gate() {
    // The kernel-extension return gate has DPL 1; SPL 3 code naming it
    // faults on the gate privilege check (and cannot fabricate a path to
    // ring 0 through it).
    let mut k = Kernel::boot();
    let kx = KernelExtensions::new(&mut k).unwrap();
    let _ = &kx;
    // Find the gate the mechanism installed (the only DPL 1 gate).
    let mut gate_sel = None;
    for idx in 1..k.m.gdt.len() as u16 {
        if let Some(x86sim::Descriptor::Gate(g)) = k.m.gdt.get(idx) {
            if g.dpl == 1 {
                gate_sel = Some(x86sim::Selector::new(idx, false, 3));
            }
        }
    }
    let gate_sel = gate_sel.expect("kret gate exists");

    let mut app = ExtensibleApp::new(&mut k).unwrap();
    let h = app
        .dlopen(
            &mut k,
            &obj(&format!("f:\nlcall {}, 0\nret\n", gate_sel.0)),
            &DlopenOptions::new(),
        )
        .unwrap();
    let prep = app.seg_dlsym(&mut k, h, "f").unwrap();
    assert!(matches!(
        app.call_extension(&mut k, prep, 0),
        Err(ExtCallError::Fault { .. })
    ));
}

#[test]
fn two_extensible_applications_coexist_in_one_kernel() {
    // Two promoted apps, each with its own LDT call gates, extensions and
    // shared areas; calls interleave across context switches.
    let mut k = Kernel::boot();
    let mut app_a = ExtensibleApp::new(&mut k).unwrap();
    let mut app_b = ExtensibleApp::new(&mut k).unwrap();
    assert_ne!(app_a.tid, app_b.tid);

    let ha = app_a
        .dlopen(
            &mut k,
            &obj("f:\nmov eax, [esp+4]\nadd eax, 100\nret\n"),
            &DlopenOptions::new(),
        )
        .unwrap();
    let fa = app_a.seg_dlsym(&mut k, ha, "f").unwrap();
    let hb = app_b
        .dlopen(
            &mut k,
            &obj("f:\nmov eax, [esp+4]\nimul eax, 2\nret\n"),
            &DlopenOptions::new(),
        )
        .unwrap();
    let fb = app_b.seg_dlsym(&mut k, hb, "f").unwrap();

    // Interleaved protected calls force LDT/CR3/TSS swaps every time.
    for i in 0..10u32 {
        assert_eq!(app_a.call_extension(&mut k, fa, i).unwrap(), i + 100);
        assert_eq!(app_b.call_extension(&mut k, fb, i).unwrap(), i * 2);
    }
    assert_eq!(app_a.calls, 10);
    assert_eq!(app_b.calls, 10);
    assert!(
        k.stats.context_switches >= 19,
        "switched on each interleave"
    );

    // A's gate selector means nothing in B's LDT: the same numeric
    // selector either fails to resolve or names a different gate.
    assert_ne!(app_a.tid, app_b.tid);
    let ga = app_a.gate_sel;
    let gb = app_b.gate_sel;
    assert_eq!(
        ga, gb,
        "same LDT slot in different tables — and still isolated"
    );
}

// ---------- Session façade --------------------------------------------------

#[test]
fn session_full_lifecycle() {
    use crate::error::Error;
    use crate::session::Session;

    let mut s = Session::new().unwrap();
    let h = s
        .dlopen(
            &obj("inc:\nmov eax, [esp+4]\ninc eax\nret\n"),
            &DlopenOptions::new().verify(&["inc"]),
        )
        .unwrap();
    assert!(s.attestation(h).unwrap().is_some());
    let inc = s.dlsym(h, "inc").unwrap();
    assert_eq!(s.call(inc, 41).unwrap(), 42);

    // Closing revokes the pages; a later call is aborted, not fatal.
    s.dlclose(h).unwrap();
    match s.call(inc, 1) {
        Err(Error::Call(ExtCallError::Fault { .. })) => {}
        other => panic!("call into a closed extension must fault, got {other:?}"),
    }
    assert_eq!(s.app().aborted_calls, 1);
}

#[test]
fn session_verify_rejection_is_one_match_arm() {
    use crate::error::Error;
    use crate::session::Session;

    let mut s = Session::new().unwrap();
    let evil = obj(&format!("evil:\nmov eax, 1\nmov [{USER_TEXT}], eax\nret\n"));
    match s.dlopen(&evil, &DlopenOptions::new().verify(&["evil"])) {
        Err(Error::Verify(_)) => {}
        other => panic!("expected Error::Verify, got {other:?}"),
    }
    // The rejected load was rolled back: a fresh load still works.
    let h = s
        .dlopen(&obj("id:\nmov eax, [esp+4]\nret\n"), &DlopenOptions::new())
        .unwrap();
    let id = s.dlsym(h, "id").unwrap();
    assert_eq!(s.call(id, 7).unwrap(), 7);
}

#[test]
fn session_matches_primitive_api_results() {
    use crate::session::Session;

    let src = "sq:\nmov eax, [esp+4]\nimul eax, eax\nret\n";

    let mut s = Session::new().unwrap();
    let h = s.dlopen(&obj(src), &DlopenOptions::new()).unwrap();
    let sq = s.dlsym(h, "sq").unwrap();
    let via_session: Vec<u32> = (0..8).map(|n| s.call(sq, n).unwrap()).collect();

    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).unwrap();
    let h = app
        .dlopen(&mut k, &obj(src), &DlopenOptions::new())
        .unwrap();
    let sq = app.seg_dlsym(&mut k, h, "sq").unwrap();
    let via_primitives: Vec<u32> = (0..8)
        .map(|n| app.call_extension(&mut k, sq, n).unwrap())
        .collect();

    assert_eq!(via_session, via_primitives);
}

#[test]
fn segment_config_builder_matches_manual_construction() {
    let built = SegmentConfig::builder()
        .quarantine_threshold(5)
        .recycle_descriptors(false)
        .verify(true)
        .build();
    assert_eq!(built.quarantine_threshold, 5);
    assert!(!built.recycle_descriptors);
    assert!(built.verify);
    assert!(built.verified.is_none());

    let dflt = SegmentConfig::builder().build();
    assert_eq!(
        dflt.quarantine_threshold,
        SegmentConfig::default().quarantine_threshold
    );
}

// ---------- durable checkpoints --------------------------------------------

mod checkpoint {
    use seedrng::SeedRng;
    use x86sim::image::{Dec, Enc, RestoreError};

    use super::obj;
    use crate::kernel_ext::{KernelExtensions, SegmentConfig};
    use crate::session::Session;
    use crate::supervisor::{ModuleImage, RestartPolicy, Supervisor};
    use crate::user_ext::DlopenOptions;

    fn warm_session() -> (Session, u32) {
        let mut s = Session::new().unwrap();
        let ext = obj("double:\nmov eax, [esp+4]\nadd eax, eax\nret\n");
        let h = s
            .dlopen(&ext, &DlopenOptions::new().verify(&["double"]))
            .unwrap();
        let double = s.dlsym(h, "double").unwrap();
        assert_eq!(s.call(double, 21).unwrap(), 42);
        (s, double)
    }

    fn observe(s: &Session) -> (u64, u64, u64, u64, u64) {
        (
            s.kernel().m.cycles(),
            s.kernel().m.insns(),
            s.app().calls,
            s.app().aborted_calls,
            s.app().verified_calls,
        )
    }

    #[test]
    fn session_checkpoint_roundtrips_and_resumes_identically() {
        let (mut live, double) = warm_session();
        let image = live.checkpoint();
        let mut restored = Session::restore(&image).unwrap();

        assert_eq!(observe(&live), observe(&restored));
        for arg in [1u32, 7, 100, 0x7FFF] {
            assert_eq!(
                live.call(double, arg).unwrap(),
                restored.call(double, arg).unwrap()
            );
            assert_eq!(observe(&live), observe(&restored));
        }
        // The restored world saves to the same bytes as the original.
        assert_eq!(live.checkpoint(), restored.checkpoint());
    }

    #[test]
    fn checkpoint_is_deterministic() {
        let (s, _) = warm_session();
        assert_eq!(s.checkpoint(), s.checkpoint());
        // Forks checkpoint to the same bytes as the parent.
        assert_eq!(s.fork().checkpoint(), s.checkpoint());
    }

    #[test]
    fn restored_session_survives_extension_fault() {
        let (mut live, _) = warm_session();
        let wild = obj("stray:\nmov eax, [0x00400000]\nret\n");
        let h = live.dlopen(&wild, &DlopenOptions::new()).unwrap();
        let stray = live.dlsym(h, "stray").unwrap();

        let image = live.checkpoint();
        let mut restored = Session::restore(&image).unwrap();

        let live_err = live.call(stray, 0).unwrap_err();
        let restored_err = restored.call(stray, 0).unwrap_err();
        assert_eq!(
            format!("{live_err:?}"),
            format!("{restored_err:?}"),
            "fault path must replay identically after restore"
        );
        assert_eq!(observe(&live), observe(&restored));
    }

    #[test]
    fn kernel_extensions_and_supervisor_roundtrip() {
        let mut k = minikernel::Kernel::boot();
        let mut kx = KernelExtensions::new(&mut k).unwrap();
        let mut sup = Supervisor::new(RestartPolicy::default());
        let img = ModuleImage::new(
            "double",
            obj("ext_double:\nmov eax, [esp+4]\nadd eax, eax\nret\n"),
            &["ext_double"],
        );
        let id = sup
            .install(&mut k, &mut kx, 16, SegmentConfig::default(), vec![img])
            .unwrap();
        assert_eq!(
            sup.invoke(&mut k, &mut kx, id, "ext_double", 8).unwrap(),
            16
        );

        let kbytes = k.save_image();
        let mut enc = Enc::new();
        kx.save_into(&mut enc);
        sup.save_into(&mut enc);
        let bytes = enc.into_vec();

        let mut k2 = minikernel::Kernel::restore_image(&kbytes).unwrap();
        let mut d = Dec::new(&bytes, "test.kx");
        let mut kx2 = KernelExtensions::restore_from(&mut d).unwrap();
        let mut sup2 = Supervisor::restore_from(&mut d).unwrap();
        d.finish().unwrap();

        for arg in [3u32, 11, 500] {
            assert_eq!(
                sup.invoke(&mut k, &mut kx, id, "ext_double", arg).unwrap(),
                sup2.invoke(&mut k2, &mut kx2, id, "ext_double", arg)
                    .unwrap()
            );
        }
        assert_eq!(kx.calls, kx2.calls);
        assert_eq!(kx.aborts, kx2.aborts);
        assert_eq!(k.m.cycles(), k2.m.cycles());
        assert_eq!(sup.restarts, sup2.restarts);
    }

    #[test]
    fn corrupt_session_images_are_rejected() {
        let (s, _) = warm_session();
        let image = s.checkpoint();
        let mut rng = SeedRng::new(0x5E55_10FF);

        for _ in 0..48 {
            let mut bad = image.clone();
            let bit = rng.gen_range(0, (bad.len() * 8) as u32) as usize;
            bad[bit / 8] ^= 1 << (bit % 8);
            match Session::restore(&bad) {
                Ok(_) => panic!("bit flip at {bit} silently restored"),
                Err(e) => {
                    let _: RestoreError = e; // typed, never a panic
                }
            }
        }
        for _ in 0..24 {
            let cut = rng.gen_range(0, image.len() as u32) as usize;
            assert!(
                Session::restore(&image[..cut]).is_err(),
                "truncation at {cut} silently restored"
            );
        }
    }
}

// ---------- isolation backends ---------------------------------------------

mod backends {
    use super::obj;
    use crate::backend::{backend_for, BackendKind, FaultAttribution};
    use crate::error::Error;
    use crate::session::Session;
    use crate::user_ext::DlopenOptions;

    /// An extension that stores its argument through itself as a pointer
    /// — the canonical wild write when called with an app-private address.
    const WILD: &str = "wild:\nmov eax, [esp+4]\nmov [eax], eax\nret\n";

    #[test]
    fn every_backend_runs_a_plain_extension() {
        for kind in BackendKind::ALL {
            let mut s = Session::with_backend(kind).unwrap();
            let h = s
                .dlopen(
                    &obj("double:\nmov eax, [esp+4]\nadd eax, eax\nret\n"),
                    &DlopenOptions::new(),
                )
                .unwrap();
            assert_eq!(s.app().backend_of(h).unwrap(), kind);
            let f = s.dlsym(h, "double").unwrap();
            assert_eq!(s.call(f, 21).unwrap(), 42, "{kind}");
            assert!(
                backend_for(kind).leak_audit(s.kernel(), s.app()).is_empty(),
                "{kind}: leak audit on a live extension"
            );
        }
    }

    #[test]
    fn hardware_backends_fault_the_wild_write_with_their_own_check() {
        for (kind, tag) in [
            (BackendKind::SegPaging, "page-protection"),
            (BackendKind::ProtKeys, "page-key"),
        ] {
            let mut s = Session::with_backend(kind).unwrap();
            let h = s.dlopen(&obj(WILD), &DlopenOptions::new()).unwrap();
            let f = s.dlsym(h, "wild").unwrap();
            let victim = s.app().save_slot_addr();
            let e = match s.call(f, victim) {
                Err(Error::Call(e)) => e,
                other => panic!("{kind}: wild write must abort the call, got {other:?}"),
            };
            assert_eq!(
                backend_for(kind).attribute_fault(&e),
                FaultAttribution::Contained { check: tag },
                "{kind}: {e:?}"
            );
            // The slot is legitimately rewritten by Prepare on every call,
            // but the extension's poison value must never have landed.
            assert_ne!(
                s.kernel().m.host_read_u32(victim),
                victim,
                "{kind}: poison landed"
            );
        }
    }

    #[test]
    fn sfi_masks_the_wild_write_into_the_sandbox() {
        let mut s = Session::with_backend(BackendKind::Sfi).unwrap();
        let h = s.dlopen(&obj(WILD), &DlopenOptions::new()).unwrap();
        let f = s.dlsym(h, "wild").unwrap();
        let victim = s.app().save_slot_addr();
        let before = s.kernel().m.host_read_u32(victim);
        // SFI redirects rather than faults: the call completes...
        s.call(f, victim).unwrap();
        // ...the victim is untouched...
        assert_eq!(s.kernel().m.host_read_u32(victim), before);
        // ...and the store landed inside the sandbox at the masked offset.
        let (base, size) = s.app().sandbox_of(h).unwrap().unwrap();
        let landed = base + (victim & (size - 1));
        assert_eq!(s.kernel().m.host_read_u32(landed), victim);
    }

    #[test]
    fn prot_keys_key_gates_survive_close() {
        let mut s = Session::with_backend(BackendKind::ProtKeys).unwrap();
        let h = s.dlopen(&obj("f:\nret\n"), &DlopenOptions::new()).unwrap();
        let f = s.dlsym(h, "f").unwrap();
        s.call(f, 0).unwrap();
        assert!(s.kernel().m.key_gate_sites().next().is_some());
        s.dlclose(h).unwrap();
        // Close unregisters the gate; the audit stays clean.
        assert_eq!(s.kernel().m.key_gate_sites().count(), 0);
        assert!(backend_for(BackendKind::ProtKeys)
            .leak_audit(s.kernel(), s.app())
            .is_empty());
    }

    #[test]
    fn checkpoints_carry_backend_identity() {
        let mut s = Session::with_backend(BackendKind::ProtKeys).unwrap();
        let h = s
            .dlopen(&obj("f:\nmov eax, 7\nret\n"), &DlopenOptions::new())
            .unwrap();
        let f = s.dlsym(h, "f").unwrap();
        let image = s.checkpoint();

        // Plain restore keeps the backend; restore_as demands it.
        let mut r = Session::restore(&image).unwrap();
        assert_eq!(r.backend(), BackendKind::ProtKeys);
        assert_eq!(r.call(f, 0).unwrap(), 7);
        assert!(Session::restore_as(&image, BackendKind::ProtKeys).is_ok());
        match Session::restore_as(&image, BackendKind::SegPaging) {
            Err(Error::BackendMismatch { found, expected }) => {
                assert_eq!(found, BackendKind::ProtKeys);
                assert_eq!(expected, BackendKind::SegPaging);
            }
            other => panic!("wrong-backend restore must be a typed rejection, got {other:?}"),
        }
    }

    #[test]
    fn forks_inherit_the_backend() {
        let mut s = Session::with_backend(BackendKind::Sfi).unwrap();
        let h = s
            .dlopen(&obj("f:\nmov eax, 9\nret\n"), &DlopenOptions::new())
            .unwrap();
        let f = s.dlsym(h, "f").unwrap();
        let mut child = s.fork();
        assert_eq!(child.backend(), BackendKind::Sfi);
        assert_eq!(child.call(f, 0).unwrap(), 9);
        assert_eq!(s.call(f, 0).unwrap(), 9);
    }

    #[test]
    fn sfi_rejects_what_the_rewriter_cannot_sandbox() {
        let mut s = Session::with_backend(BackendKind::Sfi).unwrap();
        // A relative branch is fine for the hardware backends but outside
        // the SFI rewriter's admitted subset.
        let src = "f:\njmp out\nout:\nret\n";
        match s.dlopen(&obj(src), &DlopenOptions::new()) {
            Err(Error::Sfi(_)) => {}
            other => panic!("expected an SFI rejection, got {other:?}"),
        }
        let mut seg = Session::new().unwrap();
        seg.dlopen(&obj(src), &DlopenOptions::new()).unwrap();
    }

    #[test]
    fn per_load_backend_overrides_the_session_default() {
        let mut s = Session::new().unwrap();
        let h = s
            .dlopen(
                &obj("f:\nmov eax, 5\nret\n"),
                &DlopenOptions::new().backend(BackendKind::ProtKeys),
            )
            .unwrap();
        assert_eq!(s.app().backend_of(h).unwrap(), BackendKind::ProtKeys);
        let f = s.dlsym(h, "f").unwrap();
        assert_eq!(s.call(f, 0).unwrap(), 5);
    }
}
