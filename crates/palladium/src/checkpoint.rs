//! Shared codec helpers for durable checkpoints of the Palladium
//! runtime state (extension tables, supervisors, module images).
//!
//! The wire format and integrity machinery live in [`x86sim::image`];
//! this module only provides `put_*`/`get_*` pairs for the composite
//! types the runtime layers serialize. Every decoder is bounds-checked
//! and rejects malformed payloads with a typed
//! [`RestoreError`](x86sim::image::RestoreError) — a corrupted image is
//! never silently restored.

use std::collections::BTreeMap;

use asm86::obj::{Reloc, RelocKind};
use asm86::Object;
use verifier::{Attestation, BlockProof, LoopClass, ProofMap};
use x86sim::image::{Dec, Enc, RestoreError};

pub(crate) fn put_opt_u32(e: &mut Enc, v: Option<u32>) {
    e.bool(v.is_some());
    if let Some(v) = v {
        e.u32(v);
    }
}

pub(crate) fn get_opt_u32(d: &mut Dec) -> Result<Option<u32>, RestoreError> {
    Ok(if d.bool()? { Some(d.u32()?) } else { None })
}

pub(crate) fn put_opt_pair(e: &mut Enc, v: Option<(u32, u32)>) {
    e.bool(v.is_some());
    if let Some((a, b)) = v {
        e.u32(a);
        e.u32(b);
    }
}

pub(crate) fn get_opt_pair(d: &mut Dec) -> Result<Option<(u32, u32)>, RestoreError> {
    Ok(if d.bool()? {
        Some((d.u32()?, d.u32()?))
    } else {
        None
    })
}

pub(crate) fn put_opt_str(e: &mut Enc, v: Option<&str>) {
    e.bool(v.is_some());
    if let Some(s) = v {
        e.str(s);
    }
}

pub(crate) fn get_opt_str(d: &mut Dec) -> Result<Option<String>, RestoreError> {
    Ok(if d.bool()? { Some(d.str()?) } else { None })
}

pub(crate) fn put_str_vec(e: &mut Enc, v: &[String]) {
    e.u32(v.len() as u32);
    for s in v {
        e.str(s);
    }
}

pub(crate) fn get_str_vec(d: &mut Dec) -> Result<Vec<String>, RestoreError> {
    let n = d.u32()?;
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        out.push(d.str()?);
    }
    Ok(out)
}

pub(crate) fn put_str_u32_map(e: &mut Enc, m: &BTreeMap<String, u32>) {
    e.u32(m.len() as u32);
    for (k, v) in m {
        e.str(k);
        e.u32(*v);
    }
}

pub(crate) fn get_str_u32_map(d: &mut Dec) -> Result<BTreeMap<String, u32>, RestoreError> {
    let n = d.u32()?;
    let mut out = BTreeMap::new();
    for _ in 0..n {
        let k = d.str()?;
        let v = d.u32()?;
        out.insert(k, v);
    }
    Ok(out)
}

fn put_block_proof(e: &mut Enc, p: &BlockProof) {
    e.u32(p.start);
    e.u32(p.len);
    put_opt_pair(e, p.ds_bounds);
    e.bool(p.ds_loads);
    e.bool(p.ds_stores);
    e.bool(p.no_privileged);
    e.bool(p.fall_through_only);
    match p.loop_class {
        LoopClass::NotInLoop => e.u8(0),
        LoopClass::Counted { header } => {
            e.u8(1);
            e.u32(header);
        }
        LoopClass::Unknown { header } => {
            e.u8(2);
            e.u32(header);
        }
    }
}

fn get_block_proof(d: &mut Dec) -> Result<BlockProof, RestoreError> {
    let start = d.u32()?;
    let len = d.u32()?;
    let ds_bounds = get_opt_pair(d)?;
    let ds_loads = d.bool()?;
    let ds_stores = d.bool()?;
    let no_privileged = d.bool()?;
    let fall_through_only = d.bool()?;
    let loop_class = match d.u8()? {
        0 => LoopClass::NotInLoop,
        1 => LoopClass::Counted { header: d.u32()? },
        2 => LoopClass::Unknown { header: d.u32()? },
        _ => return Err(d.fail("bad loop class")),
    };
    Ok(BlockProof {
        start,
        len,
        ds_bounds,
        ds_loads,
        ds_stores,
        no_privileged,
        fall_through_only,
        loop_class,
    })
}

pub(crate) fn put_proof_map(e: &mut Enc, m: &ProofMap) {
    e.u32(m.blocks.len() as u32);
    for (k, p) in &m.blocks {
        e.u32(*k);
        put_block_proof(e, p);
    }
}

pub(crate) fn get_proof_map(d: &mut Dec) -> Result<ProofMap, RestoreError> {
    let n = d.u32()?;
    let mut m = ProofMap::default();
    for _ in 0..n {
        let k = d.u32()?;
        let p = get_block_proof(d)?;
        m.blocks.insert(k, p);
    }
    Ok(m)
}

pub(crate) fn put_attestation(e: &mut Enc, a: &Attestation) {
    for v in [
        a.entries,
        a.insns,
        a.blocks,
        a.memory_checks,
        a.proven_accesses,
        a.unknown_accesses,
        a.external_transfers,
        a.resolved_indirect,
    ] {
        e.u32(v);
    }
    put_proof_map(e, &a.proofs);
}

pub(crate) fn get_attestation(d: &mut Dec) -> Result<Attestation, RestoreError> {
    Ok(Attestation {
        entries: d.u32()?,
        insns: d.u32()?,
        blocks: d.u32()?,
        memory_checks: d.u32()?,
        proven_accesses: d.u32()?,
        unknown_accesses: d.u32()?,
        external_transfers: d.u32()?,
        resolved_indirect: d.u32()?,
        proofs: get_proof_map(d)?,
    })
}

pub(crate) fn put_opt_attestation(e: &mut Enc, a: Option<&Attestation>) {
    e.bool(a.is_some());
    if let Some(a) = a {
        put_attestation(e, a);
    }
}

pub(crate) fn get_opt_attestation(d: &mut Dec) -> Result<Option<Attestation>, RestoreError> {
    Ok(if d.bool()? {
        Some(get_attestation(d)?)
    } else {
        None
    })
}

pub(crate) fn put_object(e: &mut Enc, o: &Object) {
    e.blob(&o.bytes);
    put_str_u32_map(e, &o.symbols);
    put_str_u32_map(e, &o.abs_symbols);
    e.u32(o.relocs.len() as u32);
    for r in &o.relocs {
        e.u32(r.offset);
        e.str(&r.sym);
        e.i32(r.addend);
        e.u8(match r.kind {
            RelocKind::Abs32 => 0,
            RelocKind::Rel32 => 1,
        });
    }
}

pub(crate) fn get_object(d: &mut Dec) -> Result<Object, RestoreError> {
    let bytes = d.blob()?.to_vec();
    let symbols = get_str_u32_map(d)?;
    let abs_symbols = get_str_u32_map(d)?;
    let nrelocs = d.u32()?;
    let mut relocs = Vec::with_capacity(nrelocs as usize);
    for _ in 0..nrelocs {
        let offset = d.u32()?;
        let sym = d.str()?;
        let addend = d.i32()?;
        let kind = match d.u8()? {
            0 => RelocKind::Abs32,
            1 => RelocKind::Rel32,
            _ => return Err(d.fail("bad reloc kind")),
        };
        relocs.push(Reloc {
            offset,
            sym,
            addend,
            kind,
        });
    }
    Ok(Object {
        bytes,
        symbols,
        abs_symbols,
        relocs,
    })
}
