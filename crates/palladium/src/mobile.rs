//! A mobile-code system on top of the user-level mechanism (§6).
//!
//! The paper's first item of on-going work: "a mobile code system based
//! on Palladium. Combined with restricted OS services, Palladium could
//! provide the security guarantee for mobile applets that are written in
//! a compiled language such as C."
//!
//! The pitch is that *no verification of the applet binary is needed* —
//! unlike Java bytecode or proof-carrying code, the hardware contains
//! whatever the applet does. An [`AppletHost`] therefore accepts raw
//! compiled images from an untrusted source, confines each applet to the
//! extension protection domain, exposes only an explicit allow-list of
//! host services through call gates, enforces per-applet memory and CPU
//! quotas, and revokes an applet after repeated misbehaviour.

use std::collections::BTreeMap;

use asm86::{decode_program, Object};
use minikernel::Kernel;

use crate::user_ext::{DlopenOptions, ExtCallError, ExtensibleApp, ExtensionHandle, PalError};

/// Per-applet resource limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppletQuota {
    /// Pages for the applet image + stack + heap.
    pub memory_pages: u32,
    /// Cycle budget per invocation.
    pub cycles_per_call: u64,
    /// Misbehaviours (faults/overruns) tolerated before revocation.
    pub max_strikes: u32,
}

impl Default for AppletQuota {
    fn default() -> AppletQuota {
        AppletQuota {
            memory_pages: 16,
            cycles_per_call: 500_000,
            max_strikes: 3,
        }
    }
}

/// Why an applet was rejected at admission.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionError {
    /// The image exceeds the memory quota.
    TooLarge { pages: u32, quota: u32 },
    /// The image bytes do not decode as a program (truncated/garbage
    /// download). This is *integrity* checking, not safety — safety comes
    /// from the hardware.
    Corrupt(String),
    /// The applet has unresolved imports outside the service allow-list.
    UnknownImport(String),
    /// Missing the required `applet_main` entry point.
    NoEntryPoint,
    /// Loading failed.
    Load(String),
}

impl core::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AdmissionError::TooLarge { pages, quota } => {
                write!(f, "applet needs {pages} pages, quota is {quota}")
            }
            AdmissionError::Corrupt(e) => write!(f, "corrupt image: {e}"),
            AdmissionError::UnknownImport(s) => write!(f, "unknown import `{s}`"),
            AdmissionError::NoEntryPoint => write!(f, "no `applet_main` entry point"),
            AdmissionError::Load(e) => write!(f, "load failed: {e}"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// A running applet.
#[derive(Debug)]
struct Applet {
    name: String,
    handle: ExtensionHandle,
    entry: u32,
    strikes: u32,
    revoked: bool,
    calls: u64,
}

/// Identifies an admitted applet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppletId(usize);

/// Result of one applet invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AppletOutcome {
    /// Completed with a result.
    Done(u32),
    /// Aborted by the hardware; strike recorded.
    Faulted {
        /// Strikes so far.
        strikes: u32,
        /// True if this abort revoked the applet.
        revoked: bool,
    },
    /// Exceeded its cycle quota; strike recorded.
    OverBudget {
        /// Strikes so far.
        strikes: u32,
        /// True if this abort revoked the applet.
        revoked: bool,
    },
    /// The applet was revoked earlier.
    Revoked,
}

/// Hosts untrusted compiled applets inside an extensible application.
#[derive(Debug)]
pub struct AppletHost {
    app: ExtensibleApp,
    quota: AppletQuota,
    applets: Vec<Applet>,
    /// Service allow-list: import name → resolved gate-call shim or
    /// library routine address.
    services: BTreeMap<String, u32>,
}

impl AppletHost {
    /// Creates a host with the shared mini-libc pre-loaded (its
    /// non-buffering routines are the only imports admitted by default).
    pub fn new(k: &mut Kernel, quota: AppletQuota) -> Result<AppletHost, PalError> {
        let mut app = ExtensibleApp::new(k)?;
        let libc_base = app.load_libc(k)?;
        let _ = libc_base;
        let services = crate::stdlib::libc_object()
            .symbols
            .keys()
            .map(|name| (name.clone(), 0u32))
            .collect();
        Ok(AppletHost {
            app,
            quota,
            applets: Vec::new(),
            services,
        })
    }

    /// Adds a host service to the allow-list: an SPL 2 implementation,
    /// exported through a call gate, callable by applets.
    pub fn allow_service(
        &mut self,
        k: &mut Kernel,
        name: &str,
        impl_obj: &Object,
        impl_symbol: &str,
    ) -> Result<u16, PalError> {
        let syms = self.app.install_app_code(k, impl_obj)?;
        let addr = *syms
            .get(impl_symbol)
            .ok_or_else(|| PalError::NoSymbol(impl_symbol.to_string()))?;
        let gate = self.app.register_service(k, addr)?;
        self.services.insert(name.to_string(), gate as u32);
        Ok(gate)
    }

    /// Admits an applet "downloaded" as raw image bytes plus its symbol
    /// table (the wire format of this little system).
    ///
    /// Admission checks are integrity and policy only; safety needs no
    /// verification because the hardware contains the applet (the
    /// system's whole point).
    pub fn admit(
        &mut self,
        k: &mut Kernel,
        name: &str,
        obj: &Object,
    ) -> Result<AppletId, AdmissionError> {
        let pages = (obj.len() as u32).div_ceil(4096).max(1) + 8; // + stack/heap
        if pages > self.quota.memory_pages {
            return Err(AdmissionError::TooLarge {
                pages,
                quota: self.quota.memory_pages,
            });
        }
        // Integrity: the image must decode as instructions up to the
        // first data symbol (heuristic: decode the whole image when it
        // has no data section marker; tolerate trailing data).
        let code_end = obj
            .symbol("applet_data")
            .map(|o| o as usize)
            .unwrap_or(obj.bytes.len());
        decode_program(&obj.bytes[..code_end])
            .map_err(|e| AdmissionError::Corrupt(e.to_string()))?;

        if obj.symbol("applet_main").is_none() {
            return Err(AdmissionError::NoEntryPoint);
        }
        for import in obj.undefined_symbols() {
            if !self.services.contains_key(import) {
                return Err(AdmissionError::UnknownImport(import.to_string()));
            }
        }

        let handle = self
            .app
            .dlopen(k, obj, &DlopenOptions::new().stack_pages(4).heap_pages(4))
            .map_err(|e| AdmissionError::Load(e.to_string()))?;
        let entry = self
            .app
            .seg_dlsym(k, handle, "applet_main")
            .map_err(|e| AdmissionError::Load(e.to_string()))?;

        self.applets.push(Applet {
            name: name.to_string(),
            handle,
            entry,
            strikes: 0,
            revoked: false,
            calls: 0,
        });
        Ok(AppletId(self.applets.len() - 1))
    }

    /// Invokes an applet under its quota. Misbehaviour earns strikes;
    /// enough strikes revoke it (its pages are pulled, as `seg_dlclose`).
    pub fn invoke(&mut self, k: &mut Kernel, id: AppletId, arg: u32) -> AppletOutcome {
        if self.applets[id.0].revoked {
            return AppletOutcome::Revoked;
        }
        let entry = self.applets[id.0].entry;
        let saved_limit = k.extension_cycle_limit;
        k.extension_cycle_limit = self.quota.cycles_per_call;
        let result = self.app.call_extension(k, entry, arg);
        k.extension_cycle_limit = saved_limit;
        let a = &mut self.applets[id.0];
        match result {
            Ok(v) => {
                a.calls += 1;
                AppletOutcome::Done(v)
            }
            Err(ExtCallError::Fault { .. }) | Err(ExtCallError::Killed(_)) => {
                a.strikes += 1;
                let revoked = a.strikes >= self.quota.max_strikes;
                if revoked {
                    a.revoked = true;
                    let h = a.handle;
                    let _ = self.app.seg_dlclose(k, h);
                }
                AppletOutcome::Faulted {
                    strikes: self.applets[id.0].strikes,
                    revoked,
                }
            }
            Err(ExtCallError::TimeLimit) => {
                a.strikes += 1;
                let revoked = a.strikes >= self.quota.max_strikes;
                if revoked {
                    a.revoked = true;
                    let h = a.handle;
                    let _ = self.app.seg_dlclose(k, h);
                }
                AppletOutcome::OverBudget {
                    strikes: self.applets[id.0].strikes,
                    revoked,
                }
            }
        }
    }

    /// Applet status: (name, calls completed, strikes, revoked).
    pub fn status(&self, id: AppletId) -> (&str, u64, u32, bool) {
        let a = &self.applets[id.0];
        (&a.name, a.calls, a.strikes, a.revoked)
    }

    /// Allocates a shared data area readable and writable by both the
    /// host application and its applets.
    pub fn alloc_shared(&mut self, k: &mut Kernel, pages: u32) -> Result<u32, PalError> {
        self.app.alloc_shared(k, pages)
    }

    /// Number of admitted applets.
    pub fn len(&self) -> usize {
        self.applets.len()
    }

    /// True if no applets were admitted.
    pub fn is_empty(&self) -> bool {
        self.applets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm86::Assembler;

    fn host(k: &mut Kernel) -> AppletHost {
        AppletHost::new(k, AppletQuota::default()).unwrap()
    }

    fn applet(src: &str) -> Object {
        Assembler::assemble(src).unwrap()
    }

    #[test]
    fn well_behaved_applet_runs() {
        let mut k = Kernel::boot();
        let mut h = host(&mut k);
        let id = h
            .admit(
                &mut k,
                "adder",
                &applet("applet_main:\nmov eax, [esp+4]\nadd eax, 100\nret\n"),
            )
            .unwrap();
        assert_eq!(h.invoke(&mut k, id, 11), AppletOutcome::Done(111));
        assert_eq!(h.status(id), ("adder", 1, 0, false));
    }

    #[test]
    fn applet_can_use_allowed_libc() {
        let mut k = Kernel::boot();
        let mut h = host(&mut k);
        // strlen is on the default allow-list (shared libc at PPL 1).
        let id = h
            .admit(
                &mut k,
                "measurer",
                &applet(
                    "applet_main:\n\
                     push dword [esp+4]\n\
                     call strlen\n\
                     add esp, 4\n\
                     ret\n",
                ),
            )
            .unwrap();
        // Hand it a string in a shared area.
        let shared = h.app.alloc_shared(&mut k, 1).unwrap();
        k.m.host_write(shared, b"mobile\0");
        assert_eq!(h.invoke(&mut k, id, shared), AppletOutcome::Done(6));
    }

    #[test]
    fn unknown_imports_rejected_at_admission() {
        let mut k = Kernel::boot();
        let mut h = host(&mut k);
        let e = h
            .admit(
                &mut k,
                "sneaky",
                &applet("applet_main:\ncall secret_kernel_api\nret\n"),
            )
            .unwrap_err();
        assert_eq!(e, AdmissionError::UnknownImport("secret_kernel_api".into()));
    }

    #[test]
    fn corrupt_downloads_rejected() {
        let mut k = Kernel::boot();
        let mut h = host(&mut k);
        let mut obj = applet("applet_main:\nret\n");
        obj.bytes[0] = 0xFF; // opcode garbage
        assert!(matches!(
            h.admit(&mut k, "noise", &obj),
            Err(AdmissionError::Corrupt(_))
        ));
    }

    #[test]
    fn oversized_and_entryless_applets_rejected() {
        let mut k = Kernel::boot();
        let mut h = AppletHost::new(
            &mut k,
            AppletQuota {
                memory_pages: 9,
                ..AppletQuota::default()
            },
        )
        .unwrap();
        let mut big = String::from("applet_main:\n");
        for _ in 0..1200 {
            big.push_str("nop\n");
        }
        big.push_str("ret\n.space 8192\n");
        assert!(matches!(
            h.admit(&mut k, "big", &applet(&big)),
            Err(AdmissionError::TooLarge { .. })
        ));
        assert_eq!(
            h.admit(&mut k, "lost", &applet("not_main:\nret\n")),
            Err(AdmissionError::NoEntryPoint)
        );
    }

    #[test]
    fn hostile_applet_earns_strikes_and_revocation() {
        let mut k = Kernel::boot();
        let mut h = host(&mut k);
        let id = h
            .admit(
                &mut k,
                "hostile",
                &applet(&format!(
                    "applet_main:\nmov eax, 1\nmov [{}], eax\nret\n",
                    minikernel::USER_TEXT
                )),
            )
            .unwrap();
        for strike in 1..=2 {
            match h.invoke(&mut k, id, 0) {
                AppletOutcome::Faulted { strikes, revoked } => {
                    assert_eq!(strikes, strike);
                    assert!(!revoked);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        match h.invoke(&mut k, id, 0) {
            AppletOutcome::Faulted {
                strikes: 3,
                revoked: true,
            } => {}
            other => panic!("expected revocation, got {other:?}"),
        }
        assert_eq!(h.invoke(&mut k, id, 0), AppletOutcome::Revoked);
        let (_, calls, strikes, revoked) = h.status(id);
        assert_eq!((calls, strikes, revoked), (0, 3, true));
    }

    #[test]
    fn spinning_applet_hits_its_cycle_quota() {
        let mut k = Kernel::boot();
        let mut h = AppletHost::new(
            &mut k,
            AppletQuota {
                cycles_per_call: 20_000,
                ..AppletQuota::default()
            },
        )
        .unwrap();
        let id = h
            .admit(
                &mut k,
                "spinner",
                &applet("applet_main:\nspin:\njmp spin\n"),
            )
            .unwrap();
        assert!(matches!(
            h.invoke(&mut k, id, 0),
            AppletOutcome::OverBudget { strikes: 1, .. }
        ));
    }

    #[test]
    fn custom_host_service_via_gate() {
        let mut k = Kernel::boot();
        let mut h = host(&mut k);
        // Expose a "host_time"-style service at SPL 2 returning a value
        // the applet could never fabricate (reads app-private memory).
        let gate = h
            .allow_service(
                &mut k,
                "host_magic",
                &applet("svc:\nmov eax, 0xBEEF\nret\n"),
                "svc",
            )
            .unwrap();

        // The applet lcalls the gate directly (selector patched in, as a
        // real system would pass it via the applet's launch parameters).
        let id = h
            .admit(
                &mut k,
                "caller",
                &applet("applet_main:\nhere:\nlcall 0, 0\nret\n"),
            )
            .unwrap();
        // Patch the selector at `here` + 1.
        let a = &h.applets[id.0];
        let here = h.app.dlsym(a.handle, "here").unwrap();
        assert!(k.m.host_write(here + 1, &gate.to_le_bytes()));
        assert_eq!(h.invoke(&mut k, id, 0), AppletOutcome::Done(0xBEEF));
    }

    #[test]
    fn many_applets_coexist() {
        let mut k = Kernel::boot();
        let mut h = host(&mut k);
        let mut ids = Vec::new();
        for i in 0..6u32 {
            let id = h
                .admit(
                    &mut k,
                    &format!("applet{i}"),
                    &applet(&format!(
                        "applet_main:\nmov eax, [esp+4]\nadd eax, {i}\nret\n"
                    )),
                )
                .unwrap();
            ids.push(id);
        }
        assert_eq!(h.len(), 6);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(
                h.invoke(&mut k, *id, 10),
                AppletOutcome::Done(10 + i as u32)
            );
        }
    }
}
