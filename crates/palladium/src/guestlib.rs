//! `guestlib` — canned guest-side runtime routines.
//!
//! Hand-written guest programs keep re-implementing the same syscall
//! wrappers; this module provides them as a linkable object (merge with
//! [`crate::dl::merge_objects`] or list the symbols as externs), so a
//! guest program reads like C against a tiny runtime:
//!
//! ```text
//! _start:
//!     push msg_len
//!     push msg
//!     call print          ; write(1, msg, len)
//!     add esp, 8
//!     push 0
//!     call exit           ; never returns
//! ```

use asm86::{Assembler, Object};

/// Assembles the guest runtime.
///
/// Exports (all cdecl): `exit(code)`, `print(buf, len)`, `getpid()`,
/// `msleep_cycles(n)` (burns roughly `n` cycles), `my_fork()`,
/// `send(dest, buf, len)`, `recv(buf, maxlen)`.
pub fn runtime_object() -> Object {
    let src = format!(
        "{prelude}
; void exit(int code) — never returns
exit:
    mov ebx, [esp+4]
    mov eax, SYS_EXIT
    int 0x80
exit_spin:
    jmp exit_spin

; int print(const char *buf, int len) — write to the console
print:
    mov ecx, [esp+4]
    mov edx, [esp+8]
    mov ebx, 1
    mov eax, SYS_WRITE
    int 0x80
    ret

; int getpid(void)
getpid:
    mov eax, SYS_GETPID
    int 0x80
    ret

; int my_fork(void)
my_fork:
    mov eax, SYS_FORK
    int 0x80
    ret

; void msleep_cycles(int n) — crude delay loop (~4 cycles per iteration)
msleep_cycles:
    mov ecx, [esp+4]
    shr ecx, 2
msleep_loop:
    cmp ecx, 0
    je msleep_done
    dec ecx
    jmp msleep_loop
msleep_done:
    ret

; int send(int dest, const void *buf, int len)
send:
    mov ebx, [esp+4]
    mov ecx, [esp+8]
    mov edx, [esp+12]
    mov eax, {msgsend}
    int 0x80
    ret

; int recv(void *buf, int maxlen) — -EAGAIN when empty
recv:
    mov ebx, [esp+4]
    mov ecx, [esp+8]
    mov eax, {msgrecv}
    int 0x80
    ret
",
        prelude = crate::stdlib::prelude(),
        msgsend = minikernel::layout::sys::MSGSEND,
        msgrecv = minikernel::layout::sys::MSGRECV,
    );
    Assembler::assemble(&src).expect("guest runtime assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dl::merge_objects;
    use minikernel::{Budget, Kernel, Outcome};

    #[test]
    fn runtime_exports_and_links() {
        let o = runtime_object();
        for sym in ["exit", "print", "getpid", "my_fork", "send", "recv"] {
            assert!(o.symbol(sym).is_some(), "missing {sym}");
        }
        assert!(o.undefined_symbols().is_empty());
    }

    #[test]
    fn hello_world_through_the_runtime() {
        let app = Assembler::assemble(
            "_start:\n\
             push 7\n\
             push msg\n\
             call print\n\
             add esp, 8\n\
             call getpid\n\
             push eax\n\
             call exit\n\
             msg:\n\
             .asciz \"hello!\\n\"\n",
        )
        .unwrap();
        let prog = merge_objects(&[&app, &runtime_object()]).unwrap();

        let mut k = Kernel::boot();
        let tid = k.spawn(&prog, &Default::default()).unwrap();
        k.switch_to(tid);
        match k.run_current(Budget::Insns(10_000)) {
            Outcome::Exited(code) => assert_eq!(code as u32, tid),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(k.console_text(), "hello!\n");
    }

    #[test]
    fn fork_and_messaging_through_the_runtime() {
        // Parent forks; child sends its pid to the parent; parent exits
        // with the child's pid.
        let app = Assembler::assemble(
            "_start:\n\
             call my_fork\n\
             cmp eax, 0\n\
             je child\n\
             parent_wait:\n\
             push 4\n\
             push slot\n\
             call recv\n\
             add esp, 8\n\
             cmp eax, -11\n\
             je parent_wait\n\
             push dword [slot]\n\
             call exit\n\
             child:\n\
             call getpid\n\
             mov [slot], eax\n\
             push 4\n\
             push slot\n\
             push 1\n\
             call send\n\
             add esp, 12\n\
             push 0\n\
             call exit\n\
             slot:\n\
             .dd 0\n",
        )
        .unwrap();
        let prog = merge_objects(&[&app, &runtime_object()]).unwrap();

        let mut k = Kernel::boot();
        let parent = k.spawn(&prog, &Default::default()).unwrap();
        k.switch_to(parent);
        let events = k.run_all(Budget::Insns(100), 50);
        let parent_exit = events.iter().find(|(t, _)| *t == parent).unwrap();
        match parent_exit.1 {
            Outcome::Exited(code) => assert_eq!(code, parent as i32 + 1, "child pid received"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
