//! Generation of the Figure 6 control-transfer sequences.
//!
//! A logical *downcall* (privileged core → less-privileged extension) is
//! synthesized from x86 primitives that only support upcalls:
//!
//! * **`Prepare`** (runs at the core's SPL): copies the 4-byte argument to
//!   the extension stack, saves the core's ESP/EBP, builds a phantom
//!   activation record (SS, ESP, CS, EIP of the extension side) and
//!   executes `lret` — "returning" into code that never called it.
//! * **`Transfer`** (runs at the extension's SPL): makes a plain near call
//!   to the extension function, then comes back through a call gate.
//! * **`AppCallGate`** (per application, at the core's SPL): restores the
//!   saved ESP/EBP and executes a near `ret`, which lands directly at the
//!   original call site.
//!
//! The same shape is used for kernel extensions (SPL 0 → SPL 1), with the
//! return stub ending in `hlt` to yield back to the hosting kernel and
//! with `Transfer` reloading DS — the 12-cycle segment-register load the
//! paper measures — because kernel extensions live in a *different*
//! segment.

use asm86::isa::{Insn, Mem, Reg, Src};

/// Addresses of the per-application save slots (must be PPL 0 so
/// extensions cannot corrupt them).
#[derive(Debug, Clone, Copy)]
pub struct SaveSlots {
    /// Where `Prepare` saves the application ESP.
    pub sp_slot: u32,
    /// Where `Prepare` saves the application EBP.
    pub bp_slot: u32,
}

/// Parameters for generating one extension function's `Prepare` routine.
#[derive(Debug, Clone, Copy)]
pub struct PrepareParams {
    /// Save slots shared by the application.
    pub slots: SaveSlots,
    /// Address (in the extension stack page) where the 4-byte argument is
    /// deposited; equals the initial extension ESP, so the callee sees the
    /// argument at `[esp+4]` after `Transfer`'s near call.
    pub arg_slot: u32,
    /// Address of the slot holding the extension stack pointer value
    /// (pushed with `push dword [..]`, exactly as in Figure 6).
    pub ext_esp_slot: u32,
    /// Selector for the extension's stack segment (SS3 / SS1).
    pub stack_sel: u16,
    /// Selector for the extension's code segment (CS3 / CS1).
    pub code_sel: u16,
    /// Address (segment offset) of the matching `Transfer` routine.
    pub transfer: u32,
}

/// Generates `Prepare` — Figure 6, left box.
///
/// Entered by a plain near `call` with the argument at `[esp+4]`.
pub fn prepare(p: PrepareParams) -> Vec<Insn> {
    vec![
        // pushl 0x4(%esp); popl ExtensionStack — copy the argument to the
        // extension's stack.
        Insn::PushM(Mem::based(Reg::Esp, 4)),
        Insn::PopM(Mem::abs(p.arg_slot)),
        // movl %esp, SP2; movl %ebp, BP2.
        Insn::Store(Mem::abs(p.slots.sp_slot), Src::Reg(Reg::Esp)),
        Insn::Store(Mem::abs(p.slots.bp_slot), Src::Reg(Reg::Ebp)),
        // Phantom activation record: SS, ESP, CS, EIP.
        Insn::Push(Src::Imm(p.stack_sel as i32)),
        Insn::PushM(Mem::abs(p.ext_esp_slot)),
        Insn::Push(Src::Imm(p.code_sel as i32)),
        Insn::Push(Src::Imm(p.transfer as i32)),
        Insn::Lret,
    ]
}

/// Parameters for generating one extension function's `Transfer` routine.
#[derive(Debug, Clone, Copy)]
pub struct TransferParams {
    /// Segment offset where this `Transfer` will be placed (needed to
    /// compute the near-call displacement).
    pub location: u32,
    /// Segment offset of the extension function.
    pub ext_fn: u32,
    /// Call-gate selector for the return path (`AppCallGate` or the kernel
    /// return gate).
    pub gate_sel: u16,
    /// If set, `Transfer` first loads DS with this selector — required for
    /// kernel extensions, whose outward `lret` invalidated the privileged
    /// DS (and costing the 12-cycle segment load the paper reports).
    pub load_ds: Option<u16>,
    /// If set, `Transfer` opens with `wrpkru imm` loading this PKRU value —
    /// the protection-key backend's drop of application-key rights on
    /// entry. The loader must register the `wrpkru`'s linear address as a
    /// key gate or the very first extension call faults.
    pub pkru: Option<u32>,
}

/// Byte length of the `mov ecx, imm` + `mov ds, ecx` prologue.
const LOAD_DS_LEN: u32 = 7 + 3;

/// Byte length of an encoded `wrpkru imm32` (opcode, imm tag, 4 bytes).
pub const WRPKRU_LEN: u32 = 6;

/// Byte length of an encoded near `call rel32`.
const CALL_LEN: u32 = 5;

/// Generates `Transfer` — Figure 6, right box.
pub fn transfer(t: TransferParams) -> Vec<Insn> {
    let mut code = Vec::with_capacity(5);
    let mut call_site = t.location;
    if let Some(v) = t.pkru {
        code.push(Insn::Wrpkru(Src::Imm(v as i32)));
        call_site += WRPKRU_LEN;
    }
    if let Some(sel) = t.load_ds {
        code.push(Insn::Mov(Reg::Ecx, Src::Imm(sel as i32)));
        code.push(Insn::MovToSeg(asm86::isa::SegReg::Ds, Reg::Ecx));
        call_site += LOAD_DS_LEN;
    }
    // call ExtensionFunction (rel32 from the end of the call).
    let rel = t.ext_fn.wrapping_sub(call_site + CALL_LEN) as i32;
    code.push(Insn::Call(rel));
    // lcall AppCallGateNum.
    code.push(Insn::Lcall(t.gate_sel, 0));
    code
}

/// Generates `AppCallGate` — the per-application return routine.
pub fn app_callgate(slots: SaveSlots) -> Vec<Insn> {
    vec![
        Insn::Load(Reg::Esp, Mem::abs(slots.sp_slot)),
        Insn::Load(Reg::Ebp, Mem::abs(slots.bp_slot)),
        Insn::Ret,
    ]
}

/// Generates the kernel-side return routine (`kret`): reload the flat
/// kernel DS (the gate entry arrives with the extension's DS still
/// loaded), restore the saved stack, and yield to the hosting kernel.
pub fn kernel_ret(slots: SaveSlots, kdata_sel: u16) -> Vec<Insn> {
    vec![
        Insn::Mov(Reg::Ecx, Src::Imm(kdata_sel as i32)),
        Insn::MovToSeg(asm86::isa::SegReg::Ds, Reg::Ecx),
        Insn::Load(Reg::Esp, Mem::abs(slots.sp_slot)),
        Insn::Load(Reg::Ebp, Mem::abs(slots.bp_slot)),
        Insn::Hlt,
    ]
}

/// Generates the kernel-side invoke stub: entered by the host with
/// `eax` = argument and `ebx` = the segment's `kprepare` address; the
/// near call gives `Prepare` the `[esp+4]` argument layout it expects.
/// `kret` yields with `hlt` before the call ever returns.
pub fn kernel_invoke_stub() -> Vec<Insn> {
    vec![
        Insn::Push(Src::Reg(Reg::Eax)),
        Insn::CallReg(Reg::Ebx),
        Insn::Hlt,
    ]
}

/// Generates the application-side invoke stub: called by the hosting
/// application logic with `eax` = argument and `ebx` = the `Prepare`
/// address returned by `seg_dlsym`; yields to the host with the result in
/// `eax`.
pub fn invoke_stub(done_vector: u8) -> Vec<Insn> {
    vec![
        Insn::Push(Src::Reg(Reg::Eax)),
        Insn::CallReg(Reg::Ebx),
        Insn::Alu(asm86::isa::AluOp::Add, Reg::Esp, Src::Imm(4)),
        Insn::Int(done_vector),
        // If the host resumes us by accident, loop on the yield.
        Insn::Jmp(-7),
    ]
}

/// Generates the Palladium SIGSEGV trampoline the runtime registers as the
/// application's signal handler: it immediately yields to the host, which
/// aborts the offending extension call (§4.5.2).
pub fn fault_stub(fault_vector: u8) -> Vec<Insn> {
    vec![Insn::Int(fault_vector), Insn::Jmp(-7)]
}

/// Generates a `ServiceEntry` wrapper exporting an application service to
/// extensions through a call gate (§4.5.1).
///
/// The inward `lcall` switched to the ring-2 gate stack; the wrapper
/// switches back to the *extension's own stack* (legal — same segment
/// base), so the service sees its arguments exactly where the extension
/// pushed them and gcc-style parameter passing keeps working, with no
/// cross-segment copying. The far return restores the extension's SS:ESP
/// from the gate-stack frame.
pub fn service_entry(location: u32, service_impl: u32) -> Vec<Insn> {
    // Layout at entry (on the ring-2 gate stack):
    //   [esp]    return EIP
    //   [esp+4]  return CS
    //   [esp+8]  extension ESP
    //   [esp+12] extension SS
    let mov_len: u32 = 4; // mov ebp, esp
    let load_len: u32 = 7; // mov esp, [ebp+8]
    let call_site = location + mov_len + load_len;
    let rel = service_impl.wrapping_sub(call_site + CALL_LEN) as i32;
    vec![
        Insn::Mov(Reg::Ebp, Src::Reg(Reg::Esp)),
        Insn::Load(Reg::Esp, Mem::based(Reg::Ebp, 8)),
        Insn::Call(rel),
        Insn::Mov(Reg::Esp, Src::Reg(Reg::Ebp)),
        Insn::Lret,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm86::encode::encode_program;
    use x86sim::cycles::{measured_cost, measured_event, Event};

    fn params() -> PrepareParams {
        PrepareParams {
            slots: SaveSlots {
                sp_slot: 0x1000,
                bp_slot: 0x1004,
            },
            arg_slot: 0x5FFC,
            ext_esp_slot: 0x1008,
            stack_sel: 0x23,
            code_sel: 0x1B,
            transfer: 0x4000,
        }
    }

    #[test]
    fn prepare_matches_figure6_shape() {
        let code = prepare(params());
        assert_eq!(code.len(), 9, "8 instructions + lret, as in Figure 6");
        assert!(matches!(code[0], Insn::PushM(_)));
        assert!(matches!(code[1], Insn::PopM(_)));
        assert_eq!(code[8], Insn::Lret);
    }

    #[test]
    fn prepare_body_costs_22_cycles() {
        // Together with the caller's push(1) + call(3), this gives the
        // paper's 26-cycle "Setting up stack" row (Table 1).
        let body: u64 = prepare(params())[..8].iter().map(measured_cost).sum();
        assert_eq!(body, 22);
    }

    #[test]
    fn transfer_computes_correct_displacement() {
        let code = transfer(TransferParams {
            location: 0x4000,
            ext_fn: 0x4100,
            gate_sel: 0x3B,
            load_ds: None,
            pkru: None,
        });
        assert_eq!(code.len(), 2);
        // call at 0x4000, ends at 0x4005, target 0x4100 => rel 0xFB.
        assert_eq!(code[0], Insn::Call(0xFB));
        assert_eq!(code[1], Insn::Lcall(0x3B, 0));
        // Self-check the assumed encoding length.
        assert_eq!(encode_program(&[code[0]]).len(), 5);
    }

    #[test]
    fn kernel_transfer_reloads_ds() {
        let code = transfer(TransferParams {
            location: 0x100,
            ext_fn: 0x200,
            gate_sel: 0x43,
            load_ds: Some(0x51),
            pkru: None,
        });
        assert_eq!(code.len(), 4);
        assert!(matches!(code[1], Insn::MovToSeg(asm86::isa::SegReg::Ds, _)));
        // Displacement accounts for the DS-load prologue.
        let lens: usize = encode_program(&code[..2]).len();
        assert_eq!(lens as u32, LOAD_DS_LEN);
        assert_eq!(
            code[2],
            Insn::Call((0x200 - (0x100 + LOAD_DS_LEN + 5)) as i32)
        );
    }

    #[test]
    fn pkru_transfer_accounts_for_the_wrpkru_prologue() {
        let code = transfer(TransferParams {
            location: 0x4000,
            ext_fn: 0x4100,
            gate_sel: 0x3B,
            load_ds: None,
            pkru: Some(0x30),
        });
        assert_eq!(code.len(), 3);
        assert_eq!(code[0], Insn::Wrpkru(Src::Imm(0x30)));
        // Verify the assumed wrpkru encoding length.
        assert_eq!(encode_program(&code[..1]).len() as u32, WRPKRU_LEN);
        assert_eq!(
            code[1],
            Insn::Call((0x4100 - (0x4000 + WRPKRU_LEN + 5)) as i32)
        );
        assert_eq!(code[2], Insn::Lcall(0x3B, 0));
    }

    #[test]
    fn appcallgate_costs_7_cycles() {
        let code = app_callgate(params().slots);
        let total: u64 = code.iter().map(measured_cost).sum();
        assert_eq!(total, 7, "Table 1 'Restoring state' row");
    }

    #[test]
    fn full_protected_call_costs_142_cycles() {
        // Reconstruct Table 1 analytically from the generated sequences:
        // caller push+call, Prepare body, lret, Transfer call, null ext fn
        // ret, gate lcall, AppCallGate.
        let p = prepare(params());
        let t = transfer(TransferParams {
            location: 0,
            ext_fn: 0x100,
            gate_sel: 8,
            load_ds: None,
            pkru: None,
        });
        let g = app_callgate(params().slots);

        let caller = measured_cost(&Insn::Push(Src::Reg(Reg::Eax))) + measured_cost(&Insn::Call(0));
        let prepare_body: u64 = p[..8].iter().map(measured_cost).sum();
        let lret = measured_event(Event::FarRetOuter);
        let transfer_call = measured_cost(&t[0]);
        let ext_ret = measured_cost(&Insn::Ret);
        let gate = measured_event(Event::GateCallInner);
        let restore: u64 = g.iter().map(measured_cost).sum();

        let total = caller + prepare_body + lret + transfer_call + ext_ret + gate + restore;
        assert_eq!(total, 142);
    }

    #[test]
    fn service_entry_round_trips_through_the_gate_stack() {
        let code = service_entry(0x2000, 0x3000);
        assert_eq!(code.len(), 5);
        assert_eq!(code[4], Insn::Lret);
        // Verify the assumed prologue encoding lengths.
        assert_eq!(encode_program(&code[..2]).len(), 11);
    }

    #[test]
    fn stubs_are_self_contained_loops() {
        let inv = invoke_stub(0x85);
        // The jmp must land exactly back on the int.
        let pre: usize = encode_program(&inv[..3]).len();
        let int_len = encode_program(&[inv[3]]).len();
        let jmp_len = encode_program(&[inv[4]]).len();
        let jmp_end = pre as i32 + int_len as i32 + jmp_len as i32;
        if let Insn::Jmp(rel) = inv[4] {
            assert_eq!(jmp_end + rel, pre as i32, "jmp lands on the int");
        } else {
            panic!("last insn must be jmp");
        }

        let fs = fault_stub(0x86);
        let int_len = encode_program(&[fs[0]]).len();
        let jmp_len = encode_program(&[fs[1]]).len();
        assert_eq!(
            (int_len + jmp_len) as i32 - 7,
            0,
            "fault stub loops on its int"
        );
    }
}
