//! [`Session`] — the one-stop front door to the user-level mechanism.
//!
//! The primitive API is deliberately explicit: callers boot a
//! [`Kernel`], create an [`ExtensibleApp`] inside it, and thread
//! `&mut Kernel` through every call. That is the right interface for
//! drivers that also manage kernel extensions, supervisors and shared
//! areas on the same kernel — and pure ceremony for the common case of
//! "load an extension, call it, survive its bugs".
//!
//! `Session` owns the kernel and the promoted application together and
//! re-exposes the load/resolve/call/close lifecycle with every error
//! funnelled into the unified [`Error`] enum:
//!
//! ```
//! use palladium::{DlopenOptions, Session};
//!
//! let mut s = Session::new().expect("boot");
//! let ext = asm86::Assembler::assemble("double:\nmov eax, [esp+4]\nadd eax, eax\nret\n")
//!     .unwrap();
//! let h = s.dlopen(&ext, &DlopenOptions::new().verify(&["double"])).unwrap();
//! let double = s.dlsym(h, "double").unwrap();
//! assert_eq!(s.call(double, 21).unwrap(), 42);
//! assert!(s.attestation(h).unwrap().is_some());
//! ```
//!
//! Escape hatches ([`Session::kernel_mut`], [`Session::app_mut`],
//! [`Session::into_parts`]) hand back the primitives whenever a caller
//! outgrows the façade; a sharded driver does exactly that to own one
//! `Session` per worker shard.

use asm86::Object;
use minikernel::Kernel;
use verifier::Attestation;
use x86sim::image::{kind, Enc, ImageBuilder, ImageView, RestoreError};

use crate::backend::{backend_for, BackendKind};
use crate::error::Error;
use crate::user_ext::{DlopenOptions, ExtensibleApp, ExtensionHandle};

/// A booted kernel plus its promoted extensible application.
///
/// See the [module docs](self) for the lifecycle and an example.
#[derive(Debug, Clone)]
pub struct Session {
    k: Kernel,
    app: ExtensibleApp,
    backend: BackendKind,
}

impl Session {
    /// Boots a fresh kernel and promotes an extensible application in it
    /// (`init_PL`: the app moves to SPL 2, its writable pages to PPL 0).
    /// Extensions load under the default [`BackendKind::SegPaging`]
    /// isolation backend.
    pub fn new() -> Result<Session, Error> {
        Session::with_kernel(Kernel::boot())
    }

    /// As [`new`](Self::new) but with every load routed through `kind`
    /// unless a [`DlopenOptions::backend`] overrides it per extension.
    pub fn with_backend(kind: BackendKind) -> Result<Session, Error> {
        let mut s = Session::with_kernel(Kernel::boot())?;
        s.backend = kind;
        Ok(s)
    }

    /// As [`new`](Self::new) but over a caller-configured kernel (memory
    /// size, cycle limits, predecode mode already applied).
    pub fn with_kernel(mut k: Kernel) -> Result<Session, Error> {
        let app = ExtensibleApp::new(&mut k)?;
        Ok(Session {
            k,
            app,
            backend: BackendKind::SegPaging,
        })
    }

    /// The session's default isolation backend (applied to loads whose
    /// options carry no explicit backend).
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// Forks the session: a new, fully independent world — kernel,
    /// machine, loaded extensions, attestations — produced in
    /// microseconds by copy-on-write frame sharing
    /// ([`x86sim::Machine::fork`]).
    ///
    /// The idiom: boot once, `dlopen`/`load_libc`/warm the expensive
    /// state, then fork one session per shard or episode. Forks are
    /// cycle/stat/fault byte-identical to the parent at the fork point
    /// and their writes never bleed into the parent or each other.
    pub fn fork(&self) -> Session {
        self.clone()
    }

    /// Loads an extension (the paper's `seg_dlopen`), with verification,
    /// attestation and predecode governed by `opts`. The load is routed
    /// through the [`IsolationBackend`](crate::IsolationBackend) named by
    /// `opts`, falling back to the session default
    /// ([`backend`](Self::backend)).
    pub fn dlopen(&mut self, obj: &Object, opts: &DlopenOptions) -> Result<ExtensionHandle, Error> {
        let kind = opts.backend_kind().unwrap_or(self.backend);
        backend_for(kind).load(&mut self.k, &mut self.app, obj, opts)
    }

    /// Resolves a *function* symbol to the entry point protected calls
    /// must use — a generated `Prepare` routine for the hardware
    /// backends, the rewritten function itself under SFI (`seg_dlsym`).
    pub fn dlsym(&mut self, h: ExtensionHandle, name: &str) -> Result<u32, Error> {
        let kind = self.app.backend_of(h)?;
        backend_for(kind).resolve(&mut self.k, &mut self.app, h, name)
    }

    /// Resolves a *data* symbol to its raw address (plain `dlsym`; §4.4.2:
    /// data pointers pass unswizzled).
    pub fn data_symbol(&self, h: ExtensionHandle, name: &str) -> Result<u32, Error> {
        Ok(self.app.dlsym(h, name)?)
    }

    /// Makes a protected call through the Figure 6 sequence. `prepare`
    /// is a pointer returned by [`dlsym`](Self::dlsym); faults and
    /// CPU-limit overruns abort the call ([`Error::Call`]) and the
    /// application survives.
    pub fn call(&mut self, prepare: u32, arg: u32) -> Result<u32, Error> {
        Ok(backend_for(self.backend).call(&mut self.k, &mut self.app, prepare, arg)?)
    }

    /// Closes an extension: its protections are revoked and any later
    /// call into it faults (`seg_dlclose`).
    pub fn dlclose(&mut self, h: ExtensionHandle) -> Result<(), Error> {
        let kind = self.app.backend_of(h)?;
        backend_for(kind).close(&mut self.k, &mut self.app, h)
    }

    /// The `Verified` attestation of an extension admitted through a
    /// [`DlopenOptions::verify`] load, if any.
    pub fn attestation(&self, h: ExtensionHandle) -> Result<Option<Attestation>, Error> {
        Ok(self.app.attestation(h)?)
    }

    /// Loads the miniature shared libc (PPL 1), making its symbols
    /// importable by later [`dlopen`](Self::dlopen)s.
    pub fn load_libc(&mut self) -> Result<u32, Error> {
        Ok(self.app.load_libc(&mut self.k)?)
    }

    /// Per-invocation CPU-time budget for protected calls (§4.5.2).
    pub fn set_cycle_limit(&mut self, cycles: u64) {
        self.k.extension_cycle_limit = cycles;
    }

    /// Baseline predecode mode of the simulator (the host-side fast
    /// path; guest-visible behaviour is unchanged). Verified extensions
    /// may still enable predecode eagerly per call unless their load
    /// opted out via [`DlopenOptions::predecode`].
    pub fn set_predecode(&mut self, on: bool) {
        self.k.m.set_predecode(on);
    }

    /// The underlying kernel (cycle counters, stats, memory).
    pub fn kernel(&self) -> &Kernel {
        &self.k
    }

    /// Mutable access to the underlying kernel.
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.k
    }

    /// The underlying extensible application (call counters, selectors).
    pub fn app(&self) -> &ExtensibleApp {
        &self.app
    }

    /// Mutable access to the underlying application.
    pub fn app_mut(&mut self) -> &mut ExtensibleApp {
        &mut self.app
    }

    /// Splits the session back into its primitives for callers that need
    /// to drive the kernel and application separately.
    pub fn into_parts(self) -> (Kernel, ExtensibleApp) {
        (self.k, self.app)
    }

    /// Serializes the whole session — the kernel image (which embeds the
    /// machine image) plus the application's extension tables — into a
    /// standalone, integrity-checked byte image.
    ///
    /// Derived caches (predecode, translation memos) are deliberately
    /// excluded; a [`restore`](Self::restore)d session is cycle-, stat-
    /// and fault-identical going forward regardless.
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut b = ImageBuilder::new(kind::SESSION);
        let mut sec = Enc::new();
        sec.blob(&self.k.save_image());
        b.section(1, sec);
        let mut sec = Enc::new();
        self.app.save_into(&mut sec);
        b.section(2, sec);
        let mut sec = Enc::new();
        sec.u8(self.backend.code());
        b.section(3, sec);
        b.finish()
    }

    /// Rebuilds a session from [`checkpoint`](Self::checkpoint) bytes.
    ///
    /// Every structural and integrity violation — bad magic, version or
    /// kind mismatch, truncation, a failed section or image CRC —
    /// surfaces as a typed [`RestoreError`]; a tampered image is never
    /// silently restored.
    pub fn restore(bytes: &[u8]) -> Result<Session, RestoreError> {
        let view = ImageView::parse(bytes, kind::SESSION)?;
        let mut d = view.require(1, "session.kernel")?;
        let mut k = Kernel::restore_image(d.blob()?)?;
        d.finish()?;
        let mut d = view.require(2, "session.app")?;
        let app = ExtensibleApp::restore_from(&mut d)?;
        d.finish()?;
        let mut d = view.require(3, "session.backend")?;
        let code = d.u8()?;
        let backend = BackendKind::from_code(code).ok_or_else(|| d.fail("unknown backend code"))?;
        d.finish()?;
        // Proof tokens are derived state (not in the image): rebuild
        // them from the restored attestations so the restored session
        // keeps the proof-elided dispatch fast path.
        app.reinstall_proof_tokens(&mut k);
        Ok(Session { k, app, backend })
    }

    /// As [`restore`](Self::restore), but additionally demands that the
    /// checkpoint was taken under the `expected` isolation backend.
    ///
    /// A ProtKeys checkpoint restored by a driver that assumes the
    /// SegPaging backend would silently run with the wrong containment
    /// model; this surfaces it as a typed
    /// [`Error::BackendMismatch`] instead.
    pub fn restore_as(bytes: &[u8], expected: BackendKind) -> Result<Session, Error> {
        let s = Session::restore(bytes)?;
        if s.backend != expected {
            return Err(Error::BackendMismatch {
                found: s.backend,
                expected,
            });
        }
        Ok(s)
    }
}
