//! Dynamic-loading support: object merging, and GOT/PLT construction.
//!
//! Palladium requires extensions' imports to be resolved **eagerly** so
//! the GOT page can be sealed read-only before any extension code runs
//! (§4.4.2): a lazily-binding `ld.so` would need to write the GOT from
//! SPL 3, which would also let a malicious extension redirect the
//! application's shared-library calls.
//!
//! The GOT is kept in its own page, aligned — the paper requires a
//! specific linker script for exactly this reason — and PLT stubs are a
//! single `jmp dword [got_entry]`, as on real IA-32.

use std::collections::BTreeMap;

use asm86::encode::encode_program;
use asm86::isa::{Insn, Mem};
use asm86::obj::{Object, Reloc};

/// Errors from the loading layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DlError {
    /// A referenced symbol could not be resolved anywhere.
    Unresolved(String),
    /// Two merged objects define the same symbol.
    Duplicate(String),
}

impl core::fmt::Display for DlError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DlError::Unresolved(s) => write!(f, "unresolved symbol `{s}`"),
            DlError::Duplicate(s) => write!(f, "duplicate symbol `{s}`"),
        }
    }
}

impl std::error::Error for DlError {}

/// Merges several objects into one image (static pre-link), shifting
/// symbols and relocations. Cross-object references resolve at final link
/// because all symbols land in the merged symbol table.
pub fn merge_objects(objs: &[&Object]) -> Result<Object, DlError> {
    let mut out = Object::default();
    for o in objs {
        // Keep each constituent page-independent? No — concatenate with
        // 16-byte alignment so generated code stays compact.
        let pad = (16 - out.bytes.len() % 16) % 16;
        out.bytes.extend(std::iter::repeat_n(0u8, pad));
        let base = out.bytes.len() as u32;
        out.bytes.extend_from_slice(&o.bytes);
        for (name, off) in &o.symbols {
            if out.symbols.insert(name.clone(), base + off).is_some() {
                return Err(DlError::Duplicate(name.clone()));
            }
        }
        for (name, v) in &o.abs_symbols {
            if out.symbols.contains_key(name) || out.abs_symbols.insert(name.clone(), *v).is_some()
            {
                return Err(DlError::Duplicate(name.clone()));
            }
        }
        for r in &o.relocs {
            out.relocs.push(Reloc {
                offset: base + r.offset,
                sym: r.sym.clone(),
                addend: r.addend,
                kind: r.kind,
            });
        }
    }
    Ok(out)
}

/// The generated GOT and PLT images for a set of imported functions.
#[derive(Debug, Clone)]
pub struct GotPlt {
    /// Raw GOT bytes (one 4-byte absolute address per import).
    pub got_bytes: Vec<u8>,
    /// Raw PLT bytes (one `jmp dword [got_entry]` stub per import).
    pub plt_bytes: Vec<u8>,
    /// Address of each import's PLT stub (what the extension links
    /// against).
    pub plt_addrs: BTreeMap<String, u32>,
    /// Address of each import's GOT entry (for tests and debuggers).
    pub got_addrs: BTreeMap<String, u32>,
}

impl GotPlt {
    /// Half-open byte range of the GOT entries, given the base the GOT
    /// was built for. These slots are sealed read-only after eager
    /// resolution, so a static verifier may trust indirect jumps through
    /// them (the loader, not the extension, controls their contents).
    pub fn got_range(&self, got_base: u32) -> (u32, u32) {
        (got_base, got_base + self.got_bytes.len() as u32)
    }

    /// Half-open byte range of the PLT stubs, given the base the PLT was
    /// built for. Outbound branches landing here are loader-generated
    /// `jmp dword [got_entry]` stubs.
    pub fn plt_range(&self, plt_base: u32) -> (u32, u32) {
        (plt_base, plt_base + self.plt_bytes.len() as u32)
    }
}

/// Size of one encoded `jmp dword [abs]` PLT stub.
pub const PLT_STUB_LEN: u32 = 6;

/// Builds an eagerly-resolved GOT and PLT for `imports`.
///
/// `resolve` maps an imported function name to its absolute address (in a
/// shared library or an exported application symbol). `got_base` and
/// `plt_base` are the addresses the pages will be mapped at.
pub fn build_got_plt(
    imports: &[String],
    got_base: u32,
    plt_base: u32,
    mut resolve: impl FnMut(&str) -> Option<u32>,
) -> Result<GotPlt, DlError> {
    let mut got_bytes = Vec::with_capacity(imports.len() * 4);
    let mut plt_insns = Vec::with_capacity(imports.len());
    let mut plt_addrs = BTreeMap::new();
    let mut got_addrs = BTreeMap::new();
    for (i, name) in imports.iter().enumerate() {
        let target = resolve(name).ok_or_else(|| DlError::Unresolved(name.clone()))?;
        let got_entry = got_base + (i as u32) * 4;
        got_bytes.extend_from_slice(&target.to_le_bytes());
        plt_insns.push(Insn::JmpM(Mem::abs(got_entry)));
        plt_addrs.insert(name.clone(), plt_base + (i as u32) * PLT_STUB_LEN);
        got_addrs.insert(name.clone(), got_entry);
    }
    let plt_bytes = encode_program(&plt_insns);
    debug_assert_eq!(plt_bytes.len() as u32, imports.len() as u32 * PLT_STUB_LEN);
    Ok(GotPlt {
        got_bytes,
        plt_bytes,
        plt_addrs,
        got_addrs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm86::Assembler;

    #[test]
    fn merge_shifts_symbols_and_relocs() {
        let a = Assembler::assemble("fa:\nmov eax, da\nret\nda:\n.dd 1\n").unwrap();
        let b = Assembler::assemble("fb:\nmov eax, db\nret\ndb:\n.dd 2\n").unwrap();
        let m = merge_objects(&[&a, &b]).unwrap();
        let fa = m.symbol("fa").unwrap();
        let fb = m.symbol("fb").unwrap();
        assert_eq!(fa, 0);
        assert!(fb > fa);
        assert_eq!(fb % 16, 0, "second object is 16-byte aligned");
        // Linking resolves both internal relocs.
        let img = m.link(0x1000, &Default::default()).unwrap();
        assert_eq!(img.len(), m.len());
    }

    #[test]
    fn merge_rejects_duplicate_symbols() {
        let a = Assembler::assemble("f:\nret\n").unwrap();
        let b = Assembler::assemble("f:\nnop\nret\n").unwrap();
        assert_eq!(
            merge_objects(&[&a, &b]).unwrap_err(),
            DlError::Duplicate("f".into())
        );
    }

    #[test]
    fn cross_object_references_resolve_after_merge() {
        let uses = Assembler::assemble("caller:\nmov eax, shared_val\nret\n").unwrap();
        let defines = Assembler::assemble("shared_val:\n.dd 0x77\n").unwrap();
        assert_eq!(uses.undefined_symbols(), vec!["shared_val"]);
        let m = merge_objects(&[&uses, &defines]).unwrap();
        assert!(m.undefined_symbols().is_empty());
        assert!(m.link(0x4000, &Default::default()).is_ok());
    }

    #[test]
    fn got_plt_layout() {
        let imports = vec!["strcpy".to_string(), "strlen".to_string()];
        let gp = build_got_plt(&imports, 0x9000, 0xA000, |name| match name {
            "strcpy" => Some(0x4000_0010),
            "strlen" => Some(0x4000_0020),
            _ => None,
        })
        .unwrap();
        assert_eq!(gp.got_bytes.len(), 8);
        assert_eq!(&gp.got_bytes[0..4], &0x4000_0010u32.to_le_bytes());
        assert_eq!(gp.plt_addrs["strcpy"], 0xA000);
        assert_eq!(gp.plt_addrs["strlen"], 0xA000 + PLT_STUB_LEN);
        assert_eq!(gp.got_addrs["strlen"], 0x9004);
        // Each stub decodes to a jmp through its GOT entry.
        let insns = asm86::decode_program(&gp.plt_bytes).unwrap();
        assert_eq!(insns[0], Insn::JmpM(Mem::abs(0x9000)));
        assert_eq!(insns[1], Insn::JmpM(Mem::abs(0x9004)));
    }

    #[test]
    fn unresolved_import_errors() {
        let imports = vec!["ghost".to_string()];
        assert_eq!(
            build_got_plt(&imports, 0, 0, |_| None).unwrap_err(),
            DlError::Unresolved("ghost".into())
        );
    }
}
