//! Pluggable isolation backends: [`IsolationBackend`].
//!
//! The paper's mechanism — segmentation plus paging — is one *policy*
//! for confining extensions, not the only one. This module makes the
//! choice pluggable behind a single trait so the same workloads can be
//! raced across mechanisms:
//!
//! * [`BackendKind::SegPaging`] — the paper, and the default: extensions
//!   at SPL 3 / PPL 1, the application's private pages at PPL 0, wild
//!   writes stopped by the page-level U/S check.
//! * [`BackendKind::ProtKeys`] — an MPK/POE-style retrofit: the
//!   application's private trampoline region carries a 4-bit protection
//!   key ([`APP_KEY`]) and every generated `Transfer` routine opens with
//!   a `wrpkru` that drops rights to that key before entering the
//!   extension. The `wrpkru` site is registered as a *key gate*
//!   (Garmr-style gate integrity): user-mode key writes from anywhere
//!   else take a `#GP`, so an extension can never forge its rights back.
//! * [`BackendKind::Sfi`] — the software-only comparator, wrapping
//!   [`baselines::sfi`]: extension code is rewritten at load time so
//!   every store is masked into a power-of-two sandbox; wild writes are
//!   *redirected*, not faulted, and the code runs at the application's
//!   own privilege level with no domain crossing.
//!
//! Backends are stateless unit structs — all per-extension state lives
//! in the [`ExtensibleApp`]'s extension table (and serializes with it),
//! which keeps `Session::fork` and checkpoint/restore backend-agnostic.
//! Select a backend per extension with [`DlopenOptions::backend`] or per
//! session with [`Session::with_backend`](crate::Session::with_backend).
#![warn(clippy::pedantic)]

use asm86::Object;
use minikernel::Kernel;

use crate::error::Error;
use crate::user_ext::{DlopenOptions, ExtCallError, ExtensibleApp, ExtensionHandle};

/// The protection key tagging application-private pages under the
/// [`BackendKind::ProtKeys`] backend (key 0 is the "no key" default all
/// other pages carry).
pub const APP_KEY: u8 = 1;

/// Which isolation mechanism guards an extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Segmentation + paging (the paper; default).
    SegPaging,
    /// Protection keys with gate-integrity-checked `wrpkru`.
    ProtKeys,
    /// Software fault isolation (load-time store masking).
    Sfi,
}

impl BackendKind {
    /// Every backend, default first.
    pub const ALL: [BackendKind; 3] = [
        BackendKind::SegPaging,
        BackendKind::ProtKeys,
        BackendKind::Sfi,
    ];

    /// Stable display name (used in bench matrices and chaos reports).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::SegPaging => "seg-paging",
            BackendKind::ProtKeys => "prot-keys",
            BackendKind::Sfi => "sfi",
        }
    }

    /// Stable one-byte identity for checkpoint images.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            BackendKind::SegPaging => 0,
            BackendKind::ProtKeys => 1,
            BackendKind::Sfi => 2,
        }
    }

    /// Inverse of [`code`](Self::code).
    #[must_use]
    pub fn from_code(c: u8) -> Option<BackendKind> {
        match c {
            0 => Some(BackendKind::SegPaging),
            1 => Some(BackendKind::ProtKeys),
            2 => Some(BackendKind::Sfi),
            _ => None,
        }
    }
}

impl core::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// How a backend explains an aborted protected call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAttribution {
    /// A hardware-level protection check contained the violation;
    /// `check` is the fault dispatcher's tag for the check that fired
    /// (e.g. `"page-protection"`, `"page-key"`, `"key-gate"`,
    /// `"segment-limit"`).
    Contained {
        /// [`x86sim::fault::FaultCause::tag`] of the check that fired.
        check: &'static str,
    },
    /// The CPU-time budget aborted a runaway call — a resource policy,
    /// not a memory-protection check.
    Budget,
    /// The failure carries no structured cause this backend can
    /// attribute (e.g. the task died with no handler installed).
    Unattributed,
}

/// One isolation mechanism: how extensions are admitted, granted and
/// revoked access, called, and how their failures are explained.
///
/// Implementations are stateless; all mutable state lives in the
/// [`ExtensibleApp`] (serialized with it), so a `&'static dyn
/// IsolationBackend` from [`backend_for`] is always safe to hold.
pub trait IsolationBackend {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// Admits an extension object under this backend's rules and maps it
    /// with this backend's protections (grant).
    ///
    /// # Errors
    ///
    /// Rejection is backend-specific: verification failures for the
    /// hardware backends ([`Error::Verify`]), [`Error::Sfi`] when the
    /// rewriter cannot sandbox the code, resource exhaustion for all.
    fn load(
        &self,
        k: &mut Kernel,
        app: &mut ExtensibleApp,
        obj: &Object,
        opts: &DlopenOptions,
    ) -> Result<ExtensionHandle, Error>;

    /// Resolves a function symbol to the entry point protected calls
    /// must use (a generated `Prepare` routine for the hardware
    /// backends, the rewritten function itself for SFI).
    ///
    /// # Errors
    ///
    /// Fails on an unknown symbol, a closed handle, or (hardware
    /// backends) when no trampoline slot is left.
    fn resolve(
        &self,
        k: &mut Kernel,
        app: &mut ExtensibleApp,
        h: ExtensionHandle,
        name: &str,
    ) -> Result<u32, Error>;

    /// Makes one protected call to an entry point from
    /// [`resolve`](Self::resolve). The hosting application survives any
    /// outcome.
    ///
    /// # Errors
    ///
    /// An aborted call surfaces as [`ExtCallError`]; feed it to
    /// [`attribute_fault`](Self::attribute_fault) to learn which
    /// protection check contained it.
    fn call(
        &self,
        k: &mut Kernel,
        app: &mut ExtensibleApp,
        entry: u32,
        arg: u32,
    ) -> Result<u32, ExtCallError>;

    /// Revokes the extension (unload): later calls into it fault instead
    /// of executing stale code.
    ///
    /// # Errors
    ///
    /// Fails on an unknown or already-closed handle.
    fn close(
        &self,
        k: &mut Kernel,
        app: &mut ExtensibleApp,
        h: ExtensionHandle,
    ) -> Result<(), Error>;

    /// Explains an aborted protected call in terms of this backend's
    /// protection model.
    fn attribute_fault(&self, e: &ExtCallError) -> FaultAttribution;

    /// Audits for protection state leaked past an unload (stale key
    /// gates, still-resolvable entry points); one human-readable finding
    /// per leak, empty when clean.
    fn leak_audit(&self, k: &Kernel, app: &ExtensibleApp) -> Vec<String>;
}

fn attribute(e: &ExtCallError) -> FaultAttribution {
    match e {
        ExtCallError::Fault { cause: Some(c), .. } => {
            FaultAttribution::Contained { check: c.tag() }
        }
        ExtCallError::Fault { cause: None, .. } | ExtCallError::Killed(_) => {
            FaultAttribution::Unattributed
        }
        ExtCallError::TimeLimit => FaultAttribution::Budget,
    }
}

/// The paper's mechanism: segmentation + paging (U/S bit), the default.
#[derive(Debug, Clone, Copy, Default)]
pub struct SegPaging;

/// MPK/POE-style protection keys with gate-integrity-checked `wrpkru`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProtKeys;

/// Software fault isolation wrapping [`baselines::sfi`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Sfi;

impl IsolationBackend for SegPaging {
    fn kind(&self) -> BackendKind {
        BackendKind::SegPaging
    }

    fn load(
        &self,
        k: &mut Kernel,
        app: &mut ExtensibleApp,
        obj: &Object,
        opts: &DlopenOptions,
    ) -> Result<ExtensionHandle, Error> {
        Ok(app.dlopen(k, obj, &opts.clone().backend(BackendKind::SegPaging))?)
    }

    fn resolve(
        &self,
        k: &mut Kernel,
        app: &mut ExtensibleApp,
        h: ExtensionHandle,
        name: &str,
    ) -> Result<u32, Error> {
        Ok(app.seg_dlsym(k, h, name)?)
    }

    fn call(
        &self,
        k: &mut Kernel,
        app: &mut ExtensibleApp,
        entry: u32,
        arg: u32,
    ) -> Result<u32, ExtCallError> {
        app.call_extension(k, entry, arg)
    }

    fn close(
        &self,
        k: &mut Kernel,
        app: &mut ExtensibleApp,
        h: ExtensionHandle,
    ) -> Result<(), Error> {
        Ok(app.seg_dlclose(k, h)?)
    }

    fn attribute_fault(&self, e: &ExtCallError) -> FaultAttribution {
        attribute(e)
    }

    fn leak_audit(&self, _k: &Kernel, app: &ExtensibleApp) -> Vec<String> {
        app.audit_closed_extensions()
    }
}

impl IsolationBackend for ProtKeys {
    fn kind(&self) -> BackendKind {
        BackendKind::ProtKeys
    }

    fn load(
        &self,
        k: &mut Kernel,
        app: &mut ExtensibleApp,
        obj: &Object,
        opts: &DlopenOptions,
    ) -> Result<ExtensionHandle, Error> {
        Ok(app.dlopen(k, obj, &opts.clone().backend(BackendKind::ProtKeys))?)
    }

    fn resolve(
        &self,
        k: &mut Kernel,
        app: &mut ExtensibleApp,
        h: ExtensionHandle,
        name: &str,
    ) -> Result<u32, Error> {
        Ok(app.seg_dlsym(k, h, name)?)
    }

    fn call(
        &self,
        k: &mut Kernel,
        app: &mut ExtensibleApp,
        entry: u32,
        arg: u32,
    ) -> Result<u32, ExtCallError> {
        app.call_extension(k, entry, arg)
    }

    fn close(
        &self,
        k: &mut Kernel,
        app: &mut ExtensibleApp,
        h: ExtensionHandle,
    ) -> Result<(), Error> {
        Ok(app.seg_dlclose(k, h)?)
    }

    fn attribute_fault(&self, e: &ExtCallError) -> FaultAttribution {
        attribute(e)
    }

    fn leak_audit(&self, k: &Kernel, app: &ExtensibleApp) -> Vec<String> {
        let mut findings = app.audit_closed_extensions();
        // Gate-integrity hygiene: every registered wrpkru gate site must
        // belong to an *open* ProtKeys extension's Transfer trampoline.
        for site in k.m.key_gate_sites() {
            if !app.owns_key_gate(site) {
                findings.push(format!(
                    "stale key gate at {site:#010x} (no open extension)"
                ));
            }
        }
        findings
    }
}

impl IsolationBackend for Sfi {
    fn kind(&self) -> BackendKind {
        BackendKind::Sfi
    }

    fn load(
        &self,
        k: &mut Kernel,
        app: &mut ExtensibleApp,
        obj: &Object,
        opts: &DlopenOptions,
    ) -> Result<ExtensionHandle, Error> {
        Ok(app.dlopen(k, obj, &opts.clone().backend(BackendKind::Sfi))?)
    }

    fn resolve(
        &self,
        k: &mut Kernel,
        app: &mut ExtensibleApp,
        h: ExtensionHandle,
        name: &str,
    ) -> Result<u32, Error> {
        Ok(app.seg_dlsym(k, h, name)?)
    }

    fn call(
        &self,
        k: &mut Kernel,
        app: &mut ExtensibleApp,
        entry: u32,
        arg: u32,
    ) -> Result<u32, ExtCallError> {
        app.call_extension(k, entry, arg)
    }

    fn close(
        &self,
        k: &mut Kernel,
        app: &mut ExtensibleApp,
        h: ExtensionHandle,
    ) -> Result<(), Error> {
        Ok(app.seg_dlclose(k, h)?)
    }

    fn attribute_fault(&self, e: &ExtCallError) -> FaultAttribution {
        attribute(e)
    }

    fn leak_audit(&self, _k: &Kernel, app: &ExtensibleApp) -> Vec<String> {
        app.audit_closed_extensions()
    }
}

/// The singleton implementation of each backend.
#[must_use]
pub fn backend_for(kind: BackendKind) -> &'static dyn IsolationBackend {
    match kind {
        BackendKind::SegPaging => &SegPaging,
        BackendKind::ProtKeys => &ProtKeys,
        BackendKind::Sfi => &Sfi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_and_names_are_distinct() {
        let mut names = std::collections::BTreeSet::new();
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::from_code(kind.code()), Some(kind));
            assert_eq!(backend_for(kind).kind(), kind);
            names.insert(kind.name());
        }
        assert_eq!(names.len(), 3);
        assert_eq!(BackendKind::from_code(7), None);
    }

    #[test]
    fn attribution_classes() {
        let b = backend_for(BackendKind::SegPaging);
        assert_eq!(
            b.attribute_fault(&ExtCallError::TimeLimit),
            FaultAttribution::Budget
        );
        let e = ExtCallError::Fault {
            sig: 11,
            addr: 0x1000,
            cause: Some(x86sim::fault::FaultCause::PrivilegedInstruction),
        };
        assert!(matches!(
            b.attribute_fault(&e),
            FaultAttribution::Contained { .. }
        ));
        let e = ExtCallError::Fault {
            sig: 11,
            addr: 0,
            cause: None,
        };
        assert_eq!(b.attribute_fault(&e), FaultAttribution::Unattributed);
    }
}
