//! The kernel-level extension mechanism (§4.3).
//!
//! Each *extension segment* is a sub-range of the kernel address space
//! (3–4 GB) with its own code and data descriptors at **SPL 1**: the
//! kernel (SPL 0) can touch everything in it, but the extension is
//! confined by the segment limit and SPL checks — any reference outside
//! the segment raises #GP, on which the kernel aborts the extension
//! (1,020 cycles in the paper's measurement).
//!
//! Loaded modules register entry points in the kernel's **Extension
//! Function Table**; a shared data area (the well-known `shared_area`
//! symbol) passes bulk arguments without copying. Extensions reach a
//! whitelisted set of core kernel services through the `int 0x81`
//! syscall-like interface. Both synchronous calls and the paper's
//! primitive asynchronous request queue are supported, under the
//! CPU-time limit of §4.5.2.

use std::collections::{BTreeMap, VecDeque};

use asm86::encode::encode_program;
use asm86::isa::Reg;
use asm86::Object;
use minikernel::layout::{KERNEL_VA_START, KSERVICE_VECTOR};
use minikernel::{Kernel, SpawnError};
use x86sim::desc::{Descriptor, Selector};
use x86sim::fault::Fault;
use x86sim::image::{Dec, Enc, RestoreError};
use x86sim::machine::Exit;
use x86sim::mem::PAGE_SIZE;

use verifier::{verify_image, ProofMap, VerifyPolicy};

use crate::checkpoint as ckpt;
use crate::supervisor::{LedgerEntry, ReclaimRecord, ResourceLedger};
use crate::trampoline::{self, SaveSlots, TransferParams};

/// Identifies one extension segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtSegmentId(usize);

impl ExtSegmentId {
    /// Positional index into the segment table — the checkpoint identity
    /// of the segment. Stable across save/restore because segments are
    /// serialized in table order.
    pub fn index(self) -> usize {
        self.0
    }

    /// Rebuilds an id from a checkpointed positional index.
    pub fn from_index(index: usize) -> ExtSegmentId {
        ExtSegmentId(index)
    }
}

/// Errors from the kernel extension mechanism.
#[derive(Debug, Clone, PartialEq)]
pub enum KextError {
    /// Out of kernel memory / segment space.
    OutOfMemory,
    /// Module failed to link.
    Link(String),
    /// The module failed load-time static verification
    /// ([`SegmentConfig::verify`]); nothing was loaded.
    Verify(verifier::VerifyError),
    /// No extension service registered under that name (§4.3: "If the
    /// required extension service has not yet been instantiated, no
    /// action is taken").
    NoSuchFunction(String),
    /// The extension faulted and was aborted.
    Aborted(Fault),
    /// The extension exceeded its CPU-time limit and was aborted.
    TimeLimit,
    /// The segment was marked dead by an earlier abort.
    SegmentDead,
    /// The segment accumulated too many faults and was automatically
    /// quarantined: its modules were unloaded, its descriptors revoked
    /// and its Extension Function Table tombstoned.
    Quarantined {
        /// Fault count at the time of quarantine.
        strikes: u32,
    },
}

impl core::fmt::Display for KextError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            KextError::OutOfMemory => write!(f, "out of extension segment space"),
            KextError::Link(e) => write!(f, "module link error: {e}"),
            KextError::Verify(e) => write!(f, "module rejected by the verifier: {e}"),
            KextError::NoSuchFunction(n) => write!(f, "no extension function `{n}`"),
            KextError::Aborted(fault) => write!(f, "extension aborted: {fault}"),
            KextError::TimeLimit => write!(f, "extension exceeded its CPU-time limit"),
            KextError::SegmentDead => write!(f, "extension segment was aborted earlier"),
            KextError::Quarantined { strikes } => {
                write!(f, "extension segment quarantined after {strikes} faults")
            }
        }
    }
}

impl From<SpawnError> for KextError {
    fn from(_: SpawnError) -> KextError {
        KextError::OutOfMemory
    }
}

/// Kernel services exposed to extensions over `int 0x81` (the paper's
/// syscall-like interface, §4.3 — "designed specifically for a
/// programmable network router"). Service number in `eax`.
pub mod kservice {
    /// `log(offset, len)`: append bytes from the extension segment to the
    /// kernel console.
    pub const LOG: u32 = 0;
    /// `cycles()`: current cycle counter (low 32 bits).
    pub const CYCLES: u32 = 1;
    /// `shared_size()`: size of this segment's shared data area.
    pub const SHARED_SIZE: u32 = 2;
}

/// A pending asynchronous request.
#[derive(Debug, Clone)]
pub struct AsyncRequest {
    /// Extension function name.
    pub func: String,
    /// 4-byte argument.
    pub arg: u32,
}

/// Per-segment configuration, fixed at [`KernelExtensions::create_segment_with`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentConfig {
    /// Faults the segment may accumulate before it is automatically
    /// quarantined (the generalization of the mobile-code host's
    /// three-strikes rule). Routers and other fail-closed users lower it
    /// to 1 to restore abort-once semantics.
    pub quarantine_threshold: u32,
    /// Draw the segment's two GDT slots from the pool of slots reclaimed
    /// from destroyed segments, instead of growing the table.
    ///
    /// Off by default: a fresh slot guarantees that a selector cached
    /// before an unrelated segment was destroyed keeps raising #NP. The
    /// supervisor turns it on for restart cycles, where it owns every
    /// selector to the dead segment and bounded GDT growth is the
    /// invariant under audit.
    pub recycle_descriptors: bool,
    /// Statically verify every module at `insmod` time (the `verifier`
    /// crate): privileged-instruction scan, interval analysis of memory
    /// addresses against the segment limit, and control-transfer
    /// validation. A rejected module surfaces as [`KextError::Verify`]
    /// and nothing is loaded.
    ///
    /// Off by default — verification is an *admission* policy; hardware
    /// containment does not depend on it (the chaos campaigns load
    /// deliberately hostile modules with this off).
    pub verify: bool,
    /// The `Verified` attestation of the most recently admitted module,
    /// set by `insmod` when [`verify`](Self::verify) is on. Its presence
    /// licenses the verified-dispatch fast path: `invoke` skips the
    /// per-call entry-window re-validation and enables eager predecode.
    pub verified: Option<verifier::Attestation>,
}

impl Default for SegmentConfig {
    fn default() -> SegmentConfig {
        SegmentConfig {
            quarantine_threshold: 3,
            recycle_descriptors: false,
            verify: false,
            verified: None,
        }
    }
}

impl SegmentConfig {
    /// A fluent builder over the default configuration:
    ///
    /// ```
    /// use palladium::SegmentConfig;
    ///
    /// let config = SegmentConfig::builder()
    ///     .verify(true)
    ///     .quarantine_threshold(1) // routers: fail closed on first fault
    ///     .build();
    /// assert!(config.verify);
    /// ```
    pub fn builder() -> SegmentConfigBuilder {
        SegmentConfigBuilder {
            config: SegmentConfig::default(),
        }
    }
}

/// Builder for [`SegmentConfig`] ([`SegmentConfig::builder`]).
///
/// The built configuration always starts from the defaults; `verified`
/// is deliberately absent — attestations are produced by `insmod`, not
/// supplied by callers.
#[derive(Debug, Clone)]
pub struct SegmentConfigBuilder {
    config: SegmentConfig,
}

impl SegmentConfigBuilder {
    /// Sets [`SegmentConfig::quarantine_threshold`].
    pub fn quarantine_threshold(mut self, threshold: u32) -> SegmentConfigBuilder {
        self.config.quarantine_threshold = threshold;
        self
    }

    /// Sets [`SegmentConfig::recycle_descriptors`].
    pub fn recycle_descriptors(mut self, recycle: bool) -> SegmentConfigBuilder {
        self.config.recycle_descriptors = recycle;
        self
    }

    /// Sets [`SegmentConfig::verify`].
    pub fn verify(mut self, verify: bool) -> SegmentConfigBuilder {
        self.config.verify = verify;
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> SegmentConfig {
        self.config
    }
}

/// Why a name is absent from the Extension Function Table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tombstone {
    /// Module that owned the entry when it was unloaded or died.
    pub module: Option<String>,
    /// True when planted by quarantine or destruction rather than a
    /// clean `rmmod` — a faulted tombstone is never silently cleared.
    pub faulted: bool,
}

/// One extension segment (Figure 3).
#[derive(Debug, Clone)]
pub struct ExtSegment {
    /// Linear base inside the kernel range.
    pub base: u32,
    /// Segment size in bytes.
    pub size: u32,
    /// SPL 1 code selector.
    pub code_sel: Selector,
    /// SPL 1 data/stack selector.
    pub data_sel: Selector,
    /// Extension Function Table: name → segment-relative entry offset.
    pub functions: BTreeMap<String, u32>,
    /// Segment-relative offset of the shared data area, if a loaded module
    /// exported the well-known `shared_area` symbol.
    pub shared_area: Option<(u32, u32)>,
    /// Names of modules loaded into this segment.
    pub modules: Vec<String>,
    /// The segment was aborted after a protection violation.
    pub dead: bool,
    /// Faults (aborts, time-limit kills) accumulated by this segment.
    pub strikes: u32,
    /// The segment crossed its [`SegmentConfig::quarantine_threshold`]
    /// and was automatically quarantined.
    pub quarantined: bool,
    /// Names formerly in the Extension Function Table, tombstoned at
    /// unload or quarantine so late callers get a structured error rather
    /// than `NoSuchFunction` (or, worse, a far call through a stale slot).
    pub tombstones: BTreeMap<String, Tombstone>,
    /// Pending asynchronous requests (§4.3).
    pub queue: VecDeque<AsyncRequest>,
    /// Marked busy while draining the queue.
    pub busy: bool,
    /// Configuration fixed at creation.
    pub config: SegmentConfig,
    /// The segment's kernel pages and descriptors were returned through
    /// the resource ledger; set once, by the first reclaim.
    pub reclaimed: bool,
    /// What the reclaim released (audited by `assert_no_leaks`).
    pub reclaim_record: Option<ReclaimRecord>,
    /// Block proofs retained from each verified `insmod`, as `(load
    /// offset, proof map)` pairs in load order. They license the
    /// simulator's proof tokens (hoisted limit/PPL checks) and let the
    /// kernel re-install those tokens after a checkpoint restore.
    pub proofs: Vec<(u32, ProofMap)>,
    /// Every kernel allocation this segment owns, in acquisition order.
    ledger: ResourceLedger,
    /// Extension Function Table ownership: function name → module name.
    fn_owner: BTreeMap<String, String>,
    /// Module that exported `shared_area`.
    shared_area_owner: Option<String>,
    /// Per-segment `kprepare` stub address (kernel VA, SPL 0).
    kprepare: u32,
    /// Segment-relative offset of the `ktransfer` stub.
    ktransfer_off: u32,
    /// Segment-relative offset of the target-function slot `ktransfer`
    /// calls through.
    ktarget_off: u32,
    /// Initial extension ESP (segment-relative; also the argument slot).
    ext_esp: u32,
    /// Load cursor for modules (segment-relative).
    load_next: u32,
}

/// Accounting for the verified-dispatch fast path: how many invocations
/// were licensed by a load-time attestation versus re-validated per call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Invocations into a segment holding a `Verified` attestation; the
    /// per-call entry-window check is skipped and predecode is enabled
    /// eagerly for the run.
    pub verified: u64,
    /// Invocations into unverified segments that paid the advisory
    /// host-side entry-window re-validation.
    pub entry_checks: u64,
    /// Entry windows the advisory check could not validate (undecodable
    /// bytes at the registered entry point). Dispatch still proceeds —
    /// hardware containment is the backstop — but the counter surfaces
    /// the anomaly to supervision and diagnostics.
    pub entry_check_failures: u64,
}

/// The kernel-side manager for all extension segments.
#[derive(Debug, Clone)]
pub struct KernelExtensions {
    segments: Vec<ExtSegment>,
    /// The shared return gate (SPL 1 → SPL 0).
    kret_gate: Selector,
    /// Save slots used by `kprepare`/`kret` (kernel VA).
    slots: SaveSlots,
    /// The shared invoke stub (push arg + call kprepare).
    invoke_stub: u32,
    /// Kernel stack used for extension invocations (kernel VA top).
    invoke_stack_top: u32,
    /// Aborted invocations.
    pub aborts: u64,
    /// Completed invocations.
    pub calls: u64,
    /// Configuration applied by [`create_segment`](Self::create_segment);
    /// [`create_segment_with`](Self::create_segment_with) overrides it
    /// per segment.
    default_config: SegmentConfig,
    /// GDT slots reclaimed from destroyed segments, available to
    /// segments created with [`SegmentConfig::recycle_descriptors`].
    desc_pool: Vec<u16>,
    /// Segments quarantined so far.
    pub quarantines: u64,
    /// Segments reclaimed (pages and descriptors returned) so far.
    pub reclaims: u64,
    /// Verified- vs. unverified-dispatch accounting.
    pub dispatch: DispatchStats,
}

impl KernelExtensions {
    /// Initializes the mechanism: allocates the shared `kret` stub, its
    /// call gate, the save slots, and a kernel invocation stack.
    pub fn new(k: &mut Kernel) -> Result<KernelExtensions, KextError> {
        let page = k.alloc_kernel_pages(1)?;
        let slots = SaveSlots {
            sp_slot: page,
            bp_slot: page + 4,
        };
        let kret_code = trampoline::kernel_ret(slots, k.sel.kdata.0);
        let kret_at = page + 16;
        let bytes = encode_program(&kret_code);
        if !k.kwrite(kret_at, &bytes) {
            return Err(KextError::OutOfMemory);
        }

        let gate_idx = k.m.gdt.push(Descriptor::call_gate(k.sel.kcode, kret_at, 1));
        let kret_gate = Selector::new(gate_idx, false, 1);

        let invoke_stub = kret_at + bytes.len() as u32 + 16;
        let stub_bytes = encode_program(&trampoline::kernel_invoke_stub());
        if !k.kwrite(invoke_stub, &stub_bytes) {
            return Err(KextError::OutOfMemory);
        }

        let stack = k.alloc_kernel_pages(2)?;
        Ok(KernelExtensions {
            segments: Vec::new(),
            kret_gate,
            slots,
            invoke_stub,
            invoke_stack_top: stack + 2 * PAGE_SIZE,
            aborts: 0,
            calls: 0,
            default_config: SegmentConfig::default(),
            desc_pool: Vec::new(),
            quarantines: 0,
            reclaims: 0,
            dispatch: DispatchStats::default(),
        })
    }

    /// The configuration new segments receive from
    /// [`create_segment`](Self::create_segment).
    pub fn default_config(&self) -> SegmentConfig {
        self.default_config.clone()
    }

    /// Creates an extension segment of `pages` pages at SPL 1 inside the
    /// kernel address range, with its private stack and transfer stub,
    /// under the manager's default [`SegmentConfig`].
    pub fn create_segment(
        &mut self,
        k: &mut Kernel,
        pages: u32,
    ) -> Result<ExtSegmentId, KextError> {
        self.create_segment_with(k, pages, self.default_config.clone())
    }

    /// Allocates a GDT slot for a new segment descriptor, drawing from
    /// the reclaim pool when the segment opted in.
    fn alloc_descriptor(&mut self, k: &mut Kernel, d: Descriptor, recycle: bool) -> u16 {
        if recycle {
            if let Some(idx) = self.desc_pool.pop() {
                k.m.gdt.set(idx, d);
                return idx;
            }
        }
        k.m.gdt.push(d)
    }

    /// [`create_segment`](Self::create_segment) with an explicit
    /// per-segment configuration. Every allocation is recorded in the
    /// segment's resource ledger.
    pub fn create_segment_with(
        &mut self,
        k: &mut Kernel,
        pages: u32,
        config: SegmentConfig,
    ) -> Result<ExtSegmentId, KextError> {
        let size = pages * PAGE_SIZE;
        let base = k.alloc_kernel_pages(pages)?;
        debug_assert!(base >= KERNEL_VA_START, "extension segments live in 3-4GB");

        let recycle = config.recycle_descriptors;
        let code_idx = self.alloc_descriptor(k, Descriptor::code(base, size, 1), recycle);
        let data_idx = self.alloc_descriptor(k, Descriptor::data(base, size, 1), recycle);
        let code_sel = Selector::new(code_idx, false, 1);
        let data_sel = Selector::new(data_idx, false, 1);

        // Segment-relative layout: [0, stack_pages) = stack (one per
        // segment — modules in one segment share it, §4.3), then the
        // ktransfer stub and its target slot, then module space.
        let stack_pages = 2u32;
        let ext_esp = stack_pages * PAGE_SIZE - 4;
        let ktarget_off = stack_pages * PAGE_SIZE;
        let ktransfer_off = ktarget_off + 8;
        let transfer_code = trampoline::transfer(TransferParams {
            location: ktransfer_off,
            // Indirect: ktransfer calls through the target slot.
            ext_fn: 0,
            gate_sel: self.kret_gate.0,
            load_ds: Some(data_sel.0),
            pkru: None,
        });
        // Replace the direct call with an indirect call through the
        // target slot (the direct form is used at user level where the
        // Transfer is generated per function; kernel extensions share one
        // stub and the kernel patches the slot per invocation).
        let mut code = transfer_code;
        code[2] = asm86::isa::Insn::CallM(asm86::isa::Mem::abs(ktarget_off as i32 as u32));
        let bytes = encode_program(&code);

        // Creation is transactional: a mid-construction failure returns
        // every allocation made so far, exactly as a reclaim would.
        let rollback = |kx: &mut Self, k: &mut Kernel, kprep: Option<u32>| {
            Self::revoke_descriptors(k, code_sel, data_sel);
            kx.desc_pool.push(data_idx);
            kx.desc_pool.push(code_idx);
            if let Some(p) = kprep {
                k.free_kernel_pages(p, 1);
            }
            k.free_kernel_pages(base, pages);
        };

        if !k.kwrite(base + ktransfer_off, &bytes) {
            rollback(self, k, None);
            return Err(KextError::OutOfMemory);
        }

        let load_next = (ktransfer_off + bytes.len() as u32 + 15) & !15;

        // Per-segment kprepare stub (SPL 0, flat addressing).
        let kprepare_page = match k.alloc_kernel_pages(1) {
            Ok(p) => p,
            Err(_) => {
                rollback(self, k, None);
                return Err(KextError::OutOfMemory);
            }
        };
        let esp_slot = kprepare_page;
        k.m.host_write_u32(esp_slot, ext_esp);
        let prep_code = trampoline::prepare(trampoline::PrepareParams {
            slots: self.slots,
            // kprepare writes the argument through the flat kernel DS at
            // the *linear* address of the slot.
            arg_slot: base + ext_esp,
            ext_esp_slot: esp_slot,
            stack_sel: data_sel.0,
            code_sel: code_sel.0,
            transfer: ktransfer_off,
        });
        let kprepare = kprepare_page + 16;
        let pbytes = encode_program(&prep_code);
        if !k.kwrite(kprepare, &pbytes) {
            rollback(self, k, Some(kprepare_page));
            return Err(KextError::OutOfMemory);
        }

        let mut ledger = ResourceLedger::default();
        ledger.record(LedgerEntry::KernelPages { base, pages });
        ledger.record(LedgerEntry::KernelPages {
            base: kprepare_page,
            pages: 1,
        });
        ledger.record(LedgerEntry::GdtDescriptor { index: code_idx });
        ledger.record(LedgerEntry::GdtDescriptor { index: data_idx });

        self.segments.push(ExtSegment {
            base,
            size,
            code_sel,
            data_sel,
            functions: BTreeMap::new(),
            shared_area: None,
            modules: Vec::new(),
            dead: false,
            strikes: 0,
            quarantined: false,
            tombstones: BTreeMap::new(),
            queue: VecDeque::new(),
            busy: false,
            config,
            reclaimed: false,
            reclaim_record: None,
            proofs: Vec::new(),
            ledger,
            fn_owner: BTreeMap::new(),
            shared_area_owner: None,
            kprepare,
            ktransfer_off,
            ktarget_off,
            ext_esp,
            load_next,
        });
        Ok(ExtSegmentId(self.segments.len() - 1))
    }

    /// Borrows a segment.
    pub fn segment(&self, id: ExtSegmentId) -> &ExtSegment {
        &self.segments[id.0]
    }

    /// A segment's resource ledger (read-only; the mechanism maintains it).
    pub fn ledger(&self, id: ExtSegmentId) -> &ResourceLedger {
        &self.segments[id.0].ledger
    }

    /// GDT slots currently pooled for supervised reuse.
    pub fn pooled_descriptors(&self) -> usize {
        self.desc_pool.len()
    }

    /// Loads a module object into an extension segment (`insmod`),
    /// registering `exports` in the Extension Function Table and
    /// discovering the `shared_area` symbol if present.
    ///
    /// The module is linked at its segment-relative offset — kernel
    /// extension code addresses are segment offsets, exactly the pointer
    /// model §4.4.1 contrasts with the user-level mechanism.
    pub fn insmod(
        &mut self,
        k: &mut Kernel,
        id: ExtSegmentId,
        name: &str,
        obj: &Object,
        exports: &[&str],
    ) -> Result<(), KextError> {
        let seg = &mut self.segments[id.0];
        if seg.dead {
            return Err(KextError::SegmentDead);
        }
        if seg.quarantined {
            return Err(KextError::Quarantined {
                strikes: seg.strikes,
            });
        }
        let at = seg.load_next;
        if at + obj.len() as u32 > seg.size {
            return Err(KextError::OutOfMemory);
        }
        let image = obj
            .link(at, &BTreeMap::new())
            .map_err(|e| KextError::Link(e.to_string()))?;
        if seg.config.verify {
            // Admission control: prove the module safe before a byte of
            // it reaches segment memory. Kernel-extension addresses are
            // segment-relative, so the allowed data range is exactly the
            // segment limit, and the only legal way out is `int 0x81`.
            let entries = obj
                .entry_offsets(exports)
                .map_err(|e| KextError::Link(e.to_string()))?;
            let policy = VerifyPolicy::new(1, at)
                .allow_data(0, seg.size)
                .allow_vector(KSERVICE_VECTOR);
            let attestation = verify_image(&image, &entries, &policy).map_err(KextError::Verify)?;
            seg.config.verified = Some(attestation);
        }
        let base = seg.base;
        if !k.kwrite(base + at, &image) {
            return Err(KextError::Link(format!(
                "segment memory unmapped at {:#010x}",
                base + at
            )));
        }
        seg.load_next = (at + image.len() as u32 + 15) & !15;
        if let Some(att) = seg.config.verified.as_ref().filter(|_| seg.config.verify) {
            // Proof-directed check elision: the bytes just written are
            // exactly the verified image, so every block proof licenses
            // a simulator token at its load address. Installation
            // failures are harmless — the block runs on the normal
            // checked path.
            install_proof_map(k, base + at, &att.proofs);
            seg.proofs.push((at, att.proofs.clone()));
        }

        for sym in exports {
            let off = obj
                .symbol(sym)
                .ok_or_else(|| KextError::Link(format!("export `{sym}` not defined")))?;
            // A name tombstoned by a clean `rmmod` may be re-registered —
            // reinstalling a module under its old name is the supervisor's
            // one-for-one restart primitive. Faulted tombstones stay.
            match seg.tombstones.get(sym as &str) {
                Some(t) if t.faulted => {
                    return Err(KextError::Link(format!(
                        "export `{sym}` is tombstoned by a fault"
                    )));
                }
                Some(_) => {
                    seg.tombstones.remove(sym as &str);
                }
                None => {}
            }
            if seg.functions.insert((*sym).to_string(), at + off).is_some() {
                // Re-registration over a live entry: the old EFT ledger
                // record is superseded, not leaked.
                seg.ledger.remove_first(
                    |e| matches!(e, LedgerEntry::EftEntry { name: n, .. } if n == sym),
                );
            }
            seg.fn_owner.insert((*sym).to_string(), name.to_string());
            seg.ledger.record(LedgerEntry::EftEntry {
                name: (*sym).to_string(),
                module: name.to_string(),
            });
        }
        if let Some(off) = obj.symbol("shared_area") {
            let size = obj
                .symbol("shared_area_end")
                .map(|e| e - off)
                .unwrap_or(PAGE_SIZE);
            if seg.shared_area.is_some() {
                seg.ledger
                    .remove_first(|e| matches!(e, LedgerEntry::ShmRange { .. }));
            }
            seg.shared_area = Some((at + off, size));
            seg.shared_area_owner = Some(name.to_string());
            seg.ledger.record(LedgerEntry::ShmRange {
                base: at + off,
                size,
                module: name.to_string(),
            });
        }
        seg.modules.push(name.to_string());
        Ok(())
    }

    /// Re-installs the simulator proof tokens of every live segment from
    /// the proofs retained at `insmod` time. Tokens are host-side derived
    /// state — deliberately excluded from checkpoints — so a restored
    /// world starts with none; calling this afterwards restores the
    /// proof-elided dispatch fast path byte-for-byte (the elision never
    /// changes guest-visible state, so forgetting it only costs speed).
    pub fn reinstall_proof_tokens(&self, k: &mut Kernel) {
        for seg in &self.segments {
            if seg.dead || seg.quarantined {
                continue;
            }
            for (at, proofs) in &seg.proofs {
                install_proof_map(k, seg.base + at, proofs);
            }
        }
    }

    /// Removes a segment's installed proof tokens (leaving other
    /// segments' tokens alone) and drops its retained proofs. Must run
    /// while the segment's pages are still mapped — token keys are
    /// physical addresses reached through the live page tables.
    fn drop_proof_tokens(seg: &mut ExtSegment, k: &mut Kernel) {
        for (at, proofs) in &seg.proofs {
            for p in proofs.blocks.values() {
                k.m.remove_proof_token(seg.base + at + p.start);
            }
        }
        seg.proofs.clear();
    }

    /// Segment-relative offsets of the transfer stub and initial stack
    /// pointer (exposed for tests: the stack and stub must precede module
    /// space).
    pub fn segment_layout(&self, id: ExtSegmentId) -> (u32, u32) {
        let seg = &self.segments[id.0];
        (seg.ktransfer_off, seg.ext_esp)
    }

    /// Linear address of a segment's shared data area, for kernel-side
    /// reads/writes (the zero-copy argument area of §4.3).
    pub fn shared_area_linear(&self, id: ExtSegmentId) -> Option<(u32, u32)> {
        let seg = &self.segments[id.0];
        seg.shared_area.map(|(off, size)| (seg.base + off, size))
    }

    /// Invokes a registered extension function synchronously, running the
    /// whole Figure 6 sequence (SPL 0 → SPL 1 → SPL 0) on the simulated
    /// CPU, under the CPU-time limit.
    pub fn invoke(
        &mut self,
        k: &mut Kernel,
        id: ExtSegmentId,
        func: &str,
        arg: u32,
    ) -> Result<u32, KextError> {
        let (kprepare, target_linear, entry_off, entry_linear, verified) = {
            let seg = &self.segments[id.0];
            if seg.quarantined {
                return Err(KextError::Quarantined {
                    strikes: seg.strikes,
                });
            }
            if seg.dead {
                return Err(KextError::SegmentDead);
            }
            let entry = seg
                .functions
                .get(func)
                .copied()
                .ok_or_else(|| KextError::NoSuchFunction(func.to_string()))?;
            (
                seg.kprepare,
                seg.base + seg.ktarget_off,
                entry,
                seg.base + entry,
                seg.config.verified.is_some(),
            )
        };

        // Attestation-gated dispatch (the verified fast path): a segment
        // whose modules passed load-time verification skips the per-call
        // entry-window re-validation. Unverified segments pay an advisory
        // host-side decode of the entry window; a failure is counted but
        // never blocks dispatch — the hardware checks remain the
        // containment backstop either way, so campaign traces stay
        // byte-identical.
        if verified {
            self.dispatch.verified += 1;
        } else {
            self.dispatch.entry_checks += 1;
            if !k.m.validate_entry_window(entry_linear, 64, 16) {
                self.dispatch.entry_check_failures += 1;
            }
        }

        // Patch the per-invocation target slot (the kernel indexes its
        // Extension Function Table and dispatches, step 5 of Figure 4).
        if !k.m.host_write_u32(target_linear, entry_off) {
            return Err(KextError::OutOfMemory);
        }

        // Enter the kprepare stub at ring 0 on the invocation stack.
        let snapshot = k.m.cpu.clone();
        let saved_tss0 = k.m.tss.stack[0];
        k.m.tss.stack[0] = (k.sel.kdata, self.invoke_stack_top);
        k.m.force_seg_from_table(asm86::isa::SegReg::Cs, k.sel.kcode);
        k.m.force_seg_from_table(asm86::isa::SegReg::Ss, k.sel.kdata);
        k.m.force_seg_from_table(asm86::isa::SegReg::Ds, k.sel.kdata);
        k.m.cpu.set_reg(Reg::Esp, self.invoke_stack_top);
        k.m.cpu.set_reg(Reg::Eax, arg);
        k.m.cpu.set_reg(Reg::Ebx, kprepare);
        k.m.cpu.eip = self.invoke_stub;

        // A verified segment's instruction stream provably matches what
        // the disassembler saw, so predecode can be enabled eagerly for
        // the whole run instead of warming up per fetch.
        let saved_predecode = k.m.predecode_enabled();
        if verified {
            k.m.set_predecode(true);
        }
        let deadline = k.m.cycles() + k.extension_cycle_limit;
        let result = loop {
            match k.m.run_until_cycles(deadline) {
                Exit::Hlt => {
                    self.calls += 1;
                    break Ok(k.m.cpu.reg(Reg::Eax));
                }
                Exit::IntHook(v) if v == KSERVICE_VECTOR => {
                    self.kservice(k, id);
                    k.m.charge_iret_resume();
                }
                Exit::Fault(fault) => {
                    // §5.2: aborting a misbehaving kernel extension costs
                    // ~1,020 cycles (vectoring + abort work).
                    k.m.charge(k.costs.kext_abort);
                    self.strike(k, id);
                    break Err(KextError::Aborted(fault));
                }
                Exit::CycleLimit => {
                    k.m.charge(k.costs.kext_abort);
                    self.strike(k, id);
                    break Err(KextError::TimeLimit);
                }
                Exit::IntHook(_) | Exit::InsnLimit => {
                    // An extension reaching any other hook (e.g. trying the
                    // user syscall gate, which its gate DPL forbids anyway)
                    // is treated as misbehaviour and aborted.
                    k.m.charge(k.costs.kext_abort);
                    self.strike(k, id);
                    break Err(KextError::TimeLimit);
                }
            }
        };

        k.m.set_predecode(saved_predecode);
        k.m.cpu = snapshot;
        k.m.tss.stack[0] = saved_tss0;
        result
    }

    /// Dispatches a kernel-service request from an extension (`int 0x81`).
    fn kservice(&mut self, k: &mut Kernel, id: ExtSegmentId) {
        k.m.charge(k.costs.syscall_dispatch);
        let nr = k.m.cpu.reg(Reg::Eax);
        let (b, c) = (k.m.cpu.reg(Reg::Ebx), k.m.cpu.reg(Reg::Ecx));
        let seg_base = self.segments[id.0].base;
        let seg_size = self.segments[id.0].size;
        let ret: u32 = match nr {
            // Bytes are addressed segment-relative and bounds-checked
            // against the segment limit, like any kernel copy-from-user.
            kservice::LOG if b.saturating_add(c) <= seg_size && c <= 4096 => {
                let data = k.m.host_read(seg_base + b, c as usize);
                k.console.extend_from_slice(&data);
                k.m.charge(c as u64 / 4 + 20);
                c
            }
            kservice::LOG => u32::MAX,
            kservice::CYCLES => k.m.cycles() as u32,
            kservice::SHARED_SIZE => self.segments[id.0].shared_area.map(|(_, s)| s).unwrap_or(0),
            _ => u32::MAX,
        };
        k.m.cpu.set_reg(Reg::Eax, ret);
    }

    /// Enqueues an asynchronous request (§4.3): the kernel "puts a request
    /// into the target extension module's request queue, marks the module
    /// busy, and returns".
    pub fn queue_async(&mut self, id: ExtSegmentId, func: &str, arg: u32) {
        let seg = &mut self.segments[id.0];
        seg.queue.push_back(AsyncRequest {
            func: func.to_string(),
            arg,
        });
        seg.ledger.record(LedgerEntry::AsyncSlot {
            func: func.to_string(),
        });
        seg.busy = true;
    }

    /// Unloads a module's entry points from the Extension Function Table
    /// (`rmmod`). The module's code stays mapped (the bump loader does not
    /// compact), but it can no longer be invoked: each of its functions is
    /// replaced by a clean (non-faulted) tombstone, which a later `insmod`
    /// of a same-named export may clear.
    pub fn rmmod(&mut self, id: ExtSegmentId, name: &str) -> bool {
        let seg = &mut self.segments[id.0];
        let Some(pos) = seg.modules.iter().position(|m| m == name) else {
            return false;
        };
        seg.modules.remove(pos);
        let owned: Vec<String> = seg
            .fn_owner
            .iter()
            .filter(|(_, m)| m.as_str() == name)
            .map(|(f, _)| f.clone())
            .collect();
        for f in owned {
            seg.functions.remove(&f);
            seg.fn_owner.remove(&f);
            seg.ledger
                .remove_first(|e| matches!(e, LedgerEntry::EftEntry { name: n, .. } if *n == f));
            seg.tombstones.insert(
                f,
                Tombstone {
                    module: Some(name.to_string()),
                    faulted: false,
                },
            );
        }
        if seg.shared_area_owner.as_deref() == Some(name) {
            seg.shared_area = None;
            seg.shared_area_owner = None;
            seg.ledger
                .remove_first(|e| matches!(e, LedgerEntry::ShmRange { .. }));
        }
        true
    }

    /// Records one strike against a segment after an abort. Below the
    /// quarantine threshold the segment stays usable — the abort already
    /// unwound the misbehaving invocation and the segment's memory is
    /// still protected by its limit, so the three-strikes policy of the
    /// mobile-code host generalizes safely. At the threshold the segment
    /// is quarantined.
    fn strike(&mut self, k: &mut Kernel, id: ExtSegmentId) {
        self.aborts += 1;
        let seg = &mut self.segments[id.0];
        seg.strikes += 1;
        if seg.strikes >= seg.config.quarantine_threshold {
            self.quarantine(k, id);
        }
    }

    /// Forgives one strike — the supervisor's decay path rewards healthy
    /// operation so an old abort does not haunt a segment forever.
    pub fn decay_strike(&mut self, id: ExtSegmentId) {
        let seg = &mut self.segments[id.0];
        if !seg.quarantined {
            seg.strikes = seg.strikes.saturating_sub(1);
        }
    }

    /// Quarantines a segment: every module is force-unloaded (`rmmod`),
    /// each Extension Function Table entry is replaced by a tombstone so
    /// pending callers get a structured error instead of a wild far call,
    /// the shared area is withdrawn, and the SPL 1 descriptors are marked
    /// not-present so any stale selector use faults in hardware.
    pub fn quarantine(&mut self, k: &mut Kernel, id: ExtSegmentId) {
        let seg = &mut self.segments[id.0];
        if seg.quarantined {
            return;
        }
        seg.quarantined = true;
        seg.dead = true;
        Self::drop_proof_tokens(seg, k);
        Self::tombstone_functions(seg, true);
        seg.modules.clear();
        seg.shared_area = None;
        seg.shared_area_owner = None;
        seg.ledger
            .remove_first(|e| matches!(e, LedgerEntry::ShmRange { .. }));
        seg.busy = false;
        let (code_sel, data_sel) = (seg.code_sel, seg.data_sel);
        Self::revoke_descriptors(k, code_sel, data_sel);
        self.quarantines += 1;
    }

    /// Replaces every Extension Function Table entry with a tombstone,
    /// removing the matching ledger records.
    fn tombstone_functions(seg: &mut ExtSegment, faulted: bool) {
        let names: Vec<String> = seg.functions.keys().cloned().collect();
        for f in names {
            seg.functions.remove(&f);
            let owner = seg.fn_owner.remove(&f);
            seg.ledger
                .remove_first(|e| matches!(e, LedgerEntry::EftEntry { name: n, .. } if *n == f));
            seg.tombstones.insert(
                f,
                Tombstone {
                    module: owner,
                    faulted,
                },
            );
        }
    }

    /// Marks a segment's code and data descriptors not-present: loading
    /// or transferring through them now raises #NP/#GP in the simulated
    /// hardware, closing the window where a revoked selector is still
    /// cached in software state somewhere.
    fn revoke_descriptors(k: &mut Kernel, code_sel: Selector, data_sel: Selector) {
        for sel in [code_sel, data_sel] {
            let idx = sel.index();
            if let Some(d) = k.m.gdt.get(idx).copied() {
                let revoked = match d {
                    Descriptor::Code(mut c) => {
                        c.present = false;
                        Descriptor::Code(c)
                    }
                    Descriptor::Data(mut dd) => {
                        dd.present = false;
                        Descriptor::Data(dd)
                    }
                    other => other,
                };
                k.m.gdt.set(idx, revoked);
            }
        }
    }

    /// Destroys an extension segment, reclaiming what §4.5.2 promises
    /// ("reclaiming the system resources previously allocated"): the EFT
    /// is tombstoned, the descriptors are marked not-present (so any
    /// stale selector use faults) and pooled, and the kernel pages are
    /// unmapped and their frames returned — the segment's resource ledger
    /// is unwound in reverse-acquisition order. Idempotent: a second
    /// destroy is a no-op, never a double free.
    ///
    /// Requests still queued are *not* silently dropped — a later
    /// [`run_pending`](Self::run_pending) drains them as structured
    /// [`KextError::SegmentDead`] errors so every pending caller learns
    /// its fate.
    pub fn destroy_segment(&mut self, k: &mut Kernel, id: ExtSegmentId) {
        let seg = &mut self.segments[id.0];
        seg.dead = true;
        let faulted = seg.quarantined;
        // Before the pages go away: token keys are physical addresses
        // reached through the still-live mapping.
        Self::drop_proof_tokens(seg, k);
        Self::tombstone_functions(seg, faulted);
        seg.modules.clear();
        seg.shared_area = None;
        seg.shared_area_owner = None;
        seg.busy = false;
        let (code_sel, data_sel) = (seg.code_sel, seg.data_sel);
        Self::revoke_descriptors(k, code_sel, data_sel);
        self.release_segment_resources(k, id);
    }

    /// Unwinds a dead segment's resource ledger: kernel pages are freed,
    /// descriptor slots (already revoked) are pooled for supervised
    /// reuse, and any remaining EFT/shm records are dropped. Pending
    /// [`LedgerEntry::AsyncSlot`]s stay paired with the request queue —
    /// they unwind as the queue drains. Idempotent via the segment's
    /// `reclaimed` flag.
    fn release_segment_resources(&mut self, k: &mut Kernel, id: ExtSegmentId) {
        let seg = &mut self.segments[id.0];
        debug_assert!(seg.dead, "only dead segments are unwound");
        if seg.reclaimed {
            return;
        }
        seg.reclaimed = true;
        let mut record = ReclaimRecord::default();
        for entry in seg.ledger.unwind() {
            match entry {
                LedgerEntry::KernelPages { base, pages } => {
                    k.free_kernel_pages(base, pages);
                    record.page_ranges.push((base, pages));
                }
                LedgerEntry::GdtDescriptor { index } => {
                    self.desc_pool.push(index);
                    record.descriptors.push(index);
                }
                LedgerEntry::EftEntry { .. } | LedgerEntry::ShmRange { .. } => {}
                LedgerEntry::AsyncSlot { .. } => unreachable!("unwind keeps async slots"),
            }
        }
        seg.reclaim_record = Some(record);
        self.reclaims += 1;
    }

    /// The supervisor's teardown: drains the request queue (returning
    /// what was dropped, so the caller can fail or resubmit each request
    /// deliberately) and destroys the segment. Returns what the reclaim
    /// released.
    pub fn reclaim_segment(&mut self, k: &mut Kernel, id: ExtSegmentId) -> ReclaimRecord {
        let dropped = self.take_queued(id);
        self.destroy_segment(k, id);
        let seg = &mut self.segments[id.0];
        let record = seg
            .reclaim_record
            .get_or_insert_with(ReclaimRecord::default);
        record.requests_dropped += dropped.len();
        record.clone()
    }

    /// Removes and returns all pending asynchronous requests *without*
    /// running them, clearing the busy mark — for callers (like the
    /// router) that synchronize shared-area argument placement themselves
    /// and invoke per request.
    pub fn take_queued(&mut self, id: ExtSegmentId) -> Vec<AsyncRequest> {
        let seg = &mut self.segments[id.0];
        seg.busy = false;
        while seg
            .ledger
            .remove_first(|e| matches!(e, LedgerEntry::AsyncSlot { .. }))
        {}
        seg.queue.drain(..).collect()
    }

    /// Pops the front request, retiring its ledger slot.
    fn pop_request(&mut self, id: ExtSegmentId) -> Option<AsyncRequest> {
        let seg = &mut self.segments[id.0];
        let req = seg.queue.pop_front()?;
        seg.ledger
            .remove_first(|e| matches!(e, LedgerEntry::AsyncSlot { .. }));
        Some(req)
    }

    /// Drains the asynchronous queue, running each request to completion
    /// before the next (§4.1: extensions are single-threaded,
    /// run-to-completion). Returns the results in order.
    pub fn run_pending(&mut self, k: &mut Kernel, id: ExtSegmentId) -> Vec<Result<u32, KextError>> {
        let mut results = Vec::new();
        while let Some(req) = self.pop_request(id) {
            results.push(self.invoke(k, id, &req.func, req.arg));
            if self.segments[id.0].dead {
                // Remaining requests fail fast with a structured error:
                // tombstoned EFT entries mean no pending caller is ever
                // dispatched through a revoked descriptor.
                let err = if self.segments[id.0].quarantined {
                    KextError::Quarantined {
                        strikes: self.segments[id.0].strikes,
                    }
                } else {
                    KextError::SegmentDead
                };
                while self.pop_request(id).is_some() {
                    results.push(Err(err.clone()));
                }
                break;
            }
        }
        self.segments[id.0].busy = false;
        results
    }

    /// Kernel pages attributed to live (unreclaimed) segments' ledgers.
    pub fn ledgered_pages(&self) -> u32 {
        self.segments
            .iter()
            .filter(|s| !s.reclaimed)
            .flat_map(|s| s.ledger.entries())
            .map(|e| match e {
                LedgerEntry::KernelPages { pages, .. } => *pages,
                _ => 0,
            })
            .sum()
    }

    /// The kernel-side leak audit: proves every segment's resources are
    /// either live-and-ledgered or provably returned.
    ///
    /// For a reclaimed segment: every page range in its reclaim record
    /// must be unmapped, every descriptor not-present, its EFT/shm empty,
    /// and its remaining ledger entries must exactly pair with requests
    /// still awaiting their structured drain. For a live segment: its
    /// ledger must cover the segment body and `kprepare` page, its
    /// descriptors must still be in the GDT, and every EFT/shm/queue
    /// object must have a matching ledger record. Pooled descriptor slots
    /// must all be not-present.
    pub fn assert_no_leaks(&self, k: &Kernel) -> Result<(), String> {
        for (i, seg) in self.segments.iter().enumerate() {
            if seg.reclaimed {
                let record = seg
                    .reclaim_record
                    .as_ref()
                    .ok_or_else(|| format!("segment {i}: reclaimed without a record"))?;
                // A range still on the kernel free list must be wholly
                // unmapped; one absent from it was legitimately recycled
                // by a later owner and is audited under that owner.
                for &(base, pages) in &record.page_ranges {
                    if !k.kernel_range_free(base, pages) {
                        continue;
                    }
                    for p in 0..pages {
                        let lin = base + p * PAGE_SIZE;
                        if k.kernel_page_mapped(lin) {
                            return Err(format!(
                                "segment {i}: reclaimed page {lin:#010x} still mapped"
                            ));
                        }
                    }
                }
                if !seg.functions.is_empty() || seg.shared_area.is_some() {
                    return Err(format!("segment {i}: reclaimed but EFT/shm survive"));
                }
                let slots = seg
                    .ledger
                    .count(|e| matches!(e, LedgerEntry::AsyncSlot { .. }));
                if slots != seg.queue.len() || slots != seg.ledger.entries().len() {
                    return Err(format!(
                        "segment {i}: reclaimed ledger holds {} entries for {} queued requests",
                        seg.ledger.entries().len(),
                        seg.queue.len()
                    ));
                }
            } else {
                let body = seg
                    .ledger
                    .count(|e| matches!(e, LedgerEntry::KernelPages { .. }));
                if body != 2 {
                    return Err(format!(
                        "segment {i}: expected body+kprepare page records, found {body}"
                    ));
                }
                for sel in [seg.code_sel, seg.data_sel] {
                    if k.m.gdt_entry_present(sel.index()).is_none() {
                        return Err(format!(
                            "segment {i}: descriptor {} missing from GDT",
                            sel.index()
                        ));
                    }
                }
                for name in seg.functions.keys() {
                    let ledgered = seg
                        .ledger
                        .count(|e| matches!(e, LedgerEntry::EftEntry { name: n, .. } if n == name));
                    if ledgered != 1 {
                        return Err(format!(
                            "segment {i}: EFT entry `{name}` has {ledgered} ledger records"
                        ));
                    }
                }
                if seg.shared_area.is_some()
                    != (seg
                        .ledger
                        .count(|e| matches!(e, LedgerEntry::ShmRange { .. }))
                        == 1)
                {
                    return Err(format!("segment {i}: shm range out of ledger sync"));
                }
                let slots = seg
                    .ledger
                    .count(|e| matches!(e, LedgerEntry::AsyncSlot { .. }));
                if slots != seg.queue.len() {
                    return Err(format!(
                        "segment {i}: {slots} async slots for {} queued requests",
                        seg.queue.len()
                    ));
                }
            }
        }
        for &idx in &self.desc_pool {
            if k.m.gdt_entry_present(idx) == Some(true) {
                return Err(format!("pooled GDT slot {idx} still present"));
            }
        }
        Ok(())
    }
}

impl KernelExtensions {
    // ----- durable checkpoints ----------------------------------------------

    /// Serializes the whole extension mechanism — every segment with its
    /// function tables, tombstones, queues, resource ledger and
    /// configuration, plus the shared stubs and counters — into `e`. The
    /// guest-visible stubs and GDT descriptors this state points at live
    /// in the kernel image saved at the same instant.
    pub fn save_into(&self, e: &mut Enc) {
        e.u32(self.segments.len() as u32);
        for seg in &self.segments {
            put_segment(e, seg);
        }
        e.u16(self.kret_gate.0);
        e.u32(self.slots.sp_slot);
        e.u32(self.slots.bp_slot);
        e.u32(self.invoke_stub);
        e.u32(self.invoke_stack_top);
        e.u64(self.aborts);
        e.u64(self.calls);
        put_config(e, &self.default_config);
        e.u32(self.desc_pool.len() as u32);
        for slot in &self.desc_pool {
            e.u16(*slot);
        }
        e.u64(self.quarantines);
        e.u64(self.reclaims);
        e.u64(self.dispatch.verified);
        e.u64(self.dispatch.entry_checks);
        e.u64(self.dispatch.entry_check_failures);
    }

    /// Rebuilds the mechanism from [`save_into`](Self::save_into) bytes.
    pub fn restore_from(d: &mut Dec) -> Result<KernelExtensions, RestoreError> {
        let nsegs = d.u32()?;
        let mut segments = Vec::with_capacity(nsegs as usize);
        for _ in 0..nsegs {
            segments.push(get_segment(d)?);
        }
        let kret_gate = Selector(d.u16()?);
        let slots = SaveSlots {
            sp_slot: d.u32()?,
            bp_slot: d.u32()?,
        };
        let invoke_stub = d.u32()?;
        let invoke_stack_top = d.u32()?;
        let aborts = d.u64()?;
        let calls = d.u64()?;
        let default_config = get_config(d)?;
        let npool = d.u32()?;
        let mut desc_pool = Vec::with_capacity(npool as usize);
        for _ in 0..npool {
            desc_pool.push(d.u16()?);
        }
        let quarantines = d.u64()?;
        let reclaims = d.u64()?;
        let dispatch = DispatchStats {
            verified: d.u64()?,
            entry_checks: d.u64()?,
            entry_check_failures: d.u64()?,
        };
        Ok(KernelExtensions {
            segments,
            kret_gate,
            slots,
            invoke_stub,
            invoke_stack_top,
            aborts,
            calls,
            default_config,
            desc_pool,
            quarantines,
            reclaims,
            dispatch,
        })
    }
}

/// Installs simulator proof tokens for a verified module's blocks, at
/// their load addresses. `base` is the linear address the proof map's
/// offsets are relative to. Install failures (unmapped page, block
/// straddling a page boundary) are ignored by design: a token is a
/// license to hoist checks, never a prerequisite for running.
///
/// Two passes. The first installs one token per block, so every block
/// start — branch targets included — can activate a run. The second
/// chains maximal runs of address-adjacent blocks that all carry a DS
/// bounds fact into one *superblock* token installed at the chain head
/// (replacing the head's per-block token, leaving the token count
/// unchanged): a cascade of short straight-line blocks then pays one
/// activation — token lookup, entry guard, run setup — per chain
/// instead of per block. The merged guard uses the maximum of the
/// chained bounds, which every chained access respects. A block
/// without the fact ends the chain, because the proof map does not
/// distinguish "no DS access" from "access the verifier could not
/// bound", and eliding an unbounded access's check would be unsound. A
/// taken branch inside a superblock merely breaks the run at the next
/// fetch (the expected-EIP discipline) and dispatch falls back to the
/// target block's own token.
pub(crate) fn install_proof_map(k: &mut Kernel, base: u32, proofs: &ProofMap) {
    let mut chain: Option<Chain> = None;
    for p in proofs.blocks.values() {
        if p.len == 0 {
            continue;
        }
        let ds = p.ds_bounds.map(|(_, hi)| x86sim::ProofDs {
            hi,
            loads: p.ds_loads,
            stores: p.ds_stores,
        });
        let _ = k.m.install_proof_token(base + p.start, p.len, ds);
        let Some(ds) = ds else {
            install_chain(k, base, chain.take());
            continue;
        };
        chain = Some(match chain.take() {
            Some(c)
                if c.start + c.len == p.start && token_fits_page(base + c.start, c.len + p.len) =>
            {
                Chain {
                    len: c.len + p.len,
                    ds: x86sim::ProofDs {
                        hi: c.ds.hi.max(ds.hi),
                        loads: c.ds.loads || ds.loads,
                        stores: c.ds.stores || ds.stores,
                    },
                    blocks: c.blocks + 1,
                    ..c
                }
            }
            prev => {
                install_chain(k, base, prev);
                Chain {
                    start: p.start,
                    len: p.len,
                    ds,
                    blocks: 1,
                }
            }
        });
    }
    install_chain(k, base, chain);
}

/// A run of adjacent DS-bounded blocks being merged into a superblock
/// token. `start`/`len` are image-relative like the proofs they merge.
struct Chain {
    start: u32,
    len: u32,
    ds: x86sim::ProofDs,
    blocks: u32,
}

/// Installs a finished chain's superblock token — only worth a token of
/// its own once it merges at least two blocks.
fn install_chain(k: &mut Kernel, base: u32, chain: Option<Chain>) {
    if let Some(c) = chain {
        if c.blocks >= 2 {
            let _ = k.m.install_proof_token(base + c.start, c.len, Some(c.ds));
        }
    }
}

/// Whether a token spanning `len` bytes at `linear` satisfies the
/// installer's page-fit rule (block plus fetch lookahead inside one
/// page). Page offsets agree between linear and physical space, so the
/// check can run before translation; chains split where the next block
/// would cross.
fn token_fits_page(linear: u32, len: u32) -> bool {
    ((linear % x86sim::PAGE_SIZE) + len) as usize + x86sim::machine::MAX_INSN_LEN
        <= x86sim::PAGE_SIZE as usize
}

fn put_config(e: &mut Enc, c: &SegmentConfig) {
    e.u32(c.quarantine_threshold);
    e.bool(c.recycle_descriptors);
    e.bool(c.verify);
    ckpt::put_opt_attestation(e, c.verified.as_ref());
}

fn get_config(d: &mut Dec) -> Result<SegmentConfig, RestoreError> {
    Ok(SegmentConfig {
        quarantine_threshold: d.u32()?,
        recycle_descriptors: d.bool()?,
        verify: d.bool()?,
        verified: ckpt::get_opt_attestation(d)?,
    })
}

pub(crate) fn put_segment_config(e: &mut Enc, c: &SegmentConfig) {
    put_config(e, c);
}

pub(crate) fn get_segment_config(d: &mut Dec) -> Result<SegmentConfig, RestoreError> {
    get_config(d)
}

fn put_ledger_entry(e: &mut Enc, entry: &LedgerEntry) {
    match entry {
        LedgerEntry::KernelPages { base, pages } => {
            e.u8(0);
            e.u32(*base);
            e.u32(*pages);
        }
        LedgerEntry::GdtDescriptor { index } => {
            e.u8(1);
            e.u16(*index);
        }
        LedgerEntry::EftEntry { name, module } => {
            e.u8(2);
            e.str(name);
            e.str(module);
        }
        LedgerEntry::ShmRange { base, size, module } => {
            e.u8(3);
            e.u32(*base);
            e.u32(*size);
            e.str(module);
        }
        LedgerEntry::AsyncSlot { func } => {
            e.u8(4);
            e.str(func);
        }
    }
}

fn get_ledger_entry(d: &mut Dec) -> Result<LedgerEntry, RestoreError> {
    Ok(match d.u8()? {
        0 => LedgerEntry::KernelPages {
            base: d.u32()?,
            pages: d.u32()?,
        },
        1 => LedgerEntry::GdtDescriptor { index: d.u16()? },
        2 => LedgerEntry::EftEntry {
            name: d.str()?,
            module: d.str()?,
        },
        3 => LedgerEntry::ShmRange {
            base: d.u32()?,
            size: d.u32()?,
            module: d.str()?,
        },
        4 => LedgerEntry::AsyncSlot { func: d.str()? },
        _ => return Err(d.fail("bad ledger entry tag")),
    })
}

fn put_segment(e: &mut Enc, s: &ExtSegment) {
    e.u32(s.base);
    e.u32(s.size);
    e.u16(s.code_sel.0);
    e.u16(s.data_sel.0);
    ckpt::put_str_u32_map(e, &s.functions);
    ckpt::put_opt_pair(e, s.shared_area);
    ckpt::put_str_vec(e, &s.modules);
    e.bool(s.dead);
    e.u32(s.strikes);
    e.bool(s.quarantined);
    e.u32(s.tombstones.len() as u32);
    for (name, t) in &s.tombstones {
        e.str(name);
        ckpt::put_opt_str(e, t.module.as_deref());
        e.bool(t.faulted);
    }
    e.u32(s.queue.len() as u32);
    for req in &s.queue {
        e.str(&req.func);
        e.u32(req.arg);
    }
    e.bool(s.busy);
    put_config(e, &s.config);
    e.bool(s.reclaimed);
    e.bool(s.reclaim_record.is_some());
    if let Some(rec) = &s.reclaim_record {
        e.u32(rec.page_ranges.len() as u32);
        for (base, pages) in &rec.page_ranges {
            e.u32(*base);
            e.u32(*pages);
        }
        e.u32(rec.descriptors.len() as u32);
        for slot in &rec.descriptors {
            e.u16(*slot);
        }
        e.u32(rec.requests_dropped as u32);
    }
    e.u32(s.ledger.entries().len() as u32);
    for entry in s.ledger.entries() {
        put_ledger_entry(e, entry);
    }
    e.u32(s.fn_owner.len() as u32);
    for (func, module) in &s.fn_owner {
        e.str(func);
        e.str(module);
    }
    ckpt::put_opt_str(e, s.shared_area_owner.as_deref());
    e.u32(s.kprepare);
    e.u32(s.ktransfer_off);
    e.u32(s.ktarget_off);
    e.u32(s.ext_esp);
    e.u32(s.load_next);
    e.u32(s.proofs.len() as u32);
    for (at, proofs) in &s.proofs {
        e.u32(*at);
        ckpt::put_proof_map(e, proofs);
    }
}

fn get_segment(d: &mut Dec) -> Result<ExtSegment, RestoreError> {
    let base = d.u32()?;
    let size = d.u32()?;
    let code_sel = Selector(d.u16()?);
    let data_sel = Selector(d.u16()?);
    let functions = ckpt::get_str_u32_map(d)?;
    let shared_area = ckpt::get_opt_pair(d)?;
    let modules = ckpt::get_str_vec(d)?;
    let dead = d.bool()?;
    let strikes = d.u32()?;
    let quarantined = d.bool()?;
    let ntomb = d.u32()?;
    let mut tombstones = BTreeMap::new();
    for _ in 0..ntomb {
        let name = d.str()?;
        let module = ckpt::get_opt_str(d)?;
        let faulted = d.bool()?;
        tombstones.insert(name, Tombstone { module, faulted });
    }
    let nqueue = d.u32()?;
    let mut queue = VecDeque::with_capacity(nqueue as usize);
    for _ in 0..nqueue {
        let func = d.str()?;
        let arg = d.u32()?;
        queue.push_back(AsyncRequest { func, arg });
    }
    let busy = d.bool()?;
    let config = get_config(d)?;
    let reclaimed = d.bool()?;
    let reclaim_record = if d.bool()? {
        let nranges = d.u32()?;
        let mut page_ranges = Vec::with_capacity(nranges as usize);
        for _ in 0..nranges {
            page_ranges.push((d.u32()?, d.u32()?));
        }
        let ndescs = d.u32()?;
        let mut descriptors = Vec::with_capacity(ndescs as usize);
        for _ in 0..ndescs {
            descriptors.push(d.u16()?);
        }
        let requests_dropped = d.u32()? as usize;
        Some(ReclaimRecord {
            page_ranges,
            descriptors,
            requests_dropped,
        })
    } else {
        None
    };
    let nledger = d.u32()?;
    let mut ledger = ResourceLedger::default();
    for _ in 0..nledger {
        let entry = get_ledger_entry(d)?;
        ledger.record(entry);
    }
    let nowners = d.u32()?;
    let mut fn_owner = BTreeMap::new();
    for _ in 0..nowners {
        let func = d.str()?;
        let module = d.str()?;
        fn_owner.insert(func, module);
    }
    let shared_area_owner = ckpt::get_opt_str(d)?;
    let kprepare = d.u32()?;
    let ktransfer_off = d.u32()?;
    let ktarget_off = d.u32()?;
    let ext_esp = d.u32()?;
    let load_next = d.u32()?;
    let nproofs = d.u32()?;
    let mut proofs = Vec::with_capacity(nproofs as usize);
    for _ in 0..nproofs {
        let at = d.u32()?;
        proofs.push((at, ckpt::get_proof_map(d)?));
    }
    Ok(ExtSegment {
        base,
        size,
        code_sel,
        data_sel,
        functions,
        shared_area,
        modules,
        dead,
        strikes,
        quarantined,
        tombstones,
        queue,
        busy,
        config,
        reclaimed,
        reclaim_record,
        proofs,
        ledger,
        fn_owner,
        shared_area_owner,
        kprepare,
        ktransfer_off,
        ktarget_off,
        ext_esp,
        load_next,
    })
}
