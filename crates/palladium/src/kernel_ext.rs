//! The kernel-level extension mechanism (§4.3).
//!
//! Each *extension segment* is a sub-range of the kernel address space
//! (3–4 GB) with its own code and data descriptors at **SPL 1**: the
//! kernel (SPL 0) can touch everything in it, but the extension is
//! confined by the segment limit and SPL checks — any reference outside
//! the segment raises #GP, on which the kernel aborts the extension
//! (1,020 cycles in the paper's measurement).
//!
//! Loaded modules register entry points in the kernel's **Extension
//! Function Table**; a shared data area (the well-known `shared_area`
//! symbol) passes bulk arguments without copying. Extensions reach a
//! whitelisted set of core kernel services through the `int 0x81`
//! syscall-like interface. Both synchronous calls and the paper's
//! primitive asynchronous request queue are supported, under the
//! CPU-time limit of §4.5.2.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use asm86::encode::encode_program;
use asm86::isa::Reg;
use asm86::Object;
use minikernel::layout::{KERNEL_VA_START, KSERVICE_VECTOR};
use minikernel::{Kernel, SpawnError};
use x86sim::desc::{Descriptor, Selector};
use x86sim::fault::Fault;
use x86sim::machine::Exit;
use x86sim::mem::PAGE_SIZE;

use crate::trampoline::{self, SaveSlots, TransferParams};

/// Identifies one extension segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtSegmentId(usize);

/// Errors from the kernel extension mechanism.
#[derive(Debug, Clone, PartialEq)]
pub enum KextError {
    /// Out of kernel memory / segment space.
    OutOfMemory,
    /// Module failed to link.
    Link(String),
    /// No extension service registered under that name (§4.3: "If the
    /// required extension service has not yet been instantiated, no
    /// action is taken").
    NoSuchFunction(String),
    /// The extension faulted and was aborted.
    Aborted(Fault),
    /// The extension exceeded its CPU-time limit and was aborted.
    TimeLimit,
    /// The segment was marked dead by an earlier abort.
    SegmentDead,
    /// The segment accumulated too many faults and was automatically
    /// quarantined: its modules were unloaded, its descriptors revoked
    /// and its Extension Function Table tombstoned.
    Quarantined {
        /// Fault count at the time of quarantine.
        strikes: u32,
    },
}

impl core::fmt::Display for KextError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            KextError::OutOfMemory => write!(f, "out of extension segment space"),
            KextError::Link(e) => write!(f, "module link error: {e}"),
            KextError::NoSuchFunction(n) => write!(f, "no extension function `{n}`"),
            KextError::Aborted(fault) => write!(f, "extension aborted: {fault}"),
            KextError::TimeLimit => write!(f, "extension exceeded its CPU-time limit"),
            KextError::SegmentDead => write!(f, "extension segment was aborted earlier"),
            KextError::Quarantined { strikes } => {
                write!(f, "extension segment quarantined after {strikes} faults")
            }
        }
    }
}

impl From<SpawnError> for KextError {
    fn from(_: SpawnError) -> KextError {
        KextError::OutOfMemory
    }
}

/// Kernel services exposed to extensions over `int 0x81` (the paper's
/// syscall-like interface, §4.3 — "designed specifically for a
/// programmable network router"). Service number in `eax`.
pub mod kservice {
    /// `log(offset, len)`: append bytes from the extension segment to the
    /// kernel console.
    pub const LOG: u32 = 0;
    /// `cycles()`: current cycle counter (low 32 bits).
    pub const CYCLES: u32 = 1;
    /// `shared_size()`: size of this segment's shared data area.
    pub const SHARED_SIZE: u32 = 2;
}

/// A pending asynchronous request.
#[derive(Debug, Clone)]
pub struct AsyncRequest {
    /// Extension function name.
    pub func: String,
    /// 4-byte argument.
    pub arg: u32,
}

/// One extension segment (Figure 3).
#[derive(Debug)]
pub struct ExtSegment {
    /// Linear base inside the kernel range.
    pub base: u32,
    /// Segment size in bytes.
    pub size: u32,
    /// SPL 1 code selector.
    pub code_sel: Selector,
    /// SPL 1 data/stack selector.
    pub data_sel: Selector,
    /// Extension Function Table: name → segment-relative entry offset.
    pub functions: BTreeMap<String, u32>,
    /// Segment-relative offset of the shared data area, if a loaded module
    /// exported the well-known `shared_area` symbol.
    pub shared_area: Option<(u32, u32)>,
    /// Names of modules loaded into this segment.
    pub modules: Vec<String>,
    /// The segment was aborted after a protection violation.
    pub dead: bool,
    /// Faults (aborts, time-limit kills) accumulated by this segment.
    pub strikes: u32,
    /// The segment crossed [`KernelExtensions::quarantine_threshold`]
    /// and was automatically quarantined.
    pub quarantined: bool,
    /// Names formerly in the Extension Function Table, tombstoned at
    /// quarantine so late callers get a structured error rather than
    /// `NoSuchFunction` (or, worse, a far call through a stale slot).
    pub tombstones: BTreeSet<String>,
    /// Pending asynchronous requests (§4.3).
    pub queue: VecDeque<AsyncRequest>,
    /// Marked busy while draining the queue.
    pub busy: bool,
    /// Per-segment `kprepare` stub address (kernel VA, SPL 0).
    kprepare: u32,
    /// Segment-relative offset of the `ktransfer` stub.
    ktransfer_off: u32,
    /// Segment-relative offset of the target-function slot `ktransfer`
    /// calls through.
    ktarget_off: u32,
    /// Initial extension ESP (segment-relative; also the argument slot).
    ext_esp: u32,
    /// Load cursor for modules (segment-relative).
    load_next: u32,
}

/// The kernel-side manager for all extension segments.
#[derive(Debug)]
pub struct KernelExtensions {
    segments: Vec<ExtSegment>,
    /// The shared return gate (SPL 1 → SPL 0).
    kret_gate: Selector,
    /// Save slots used by `kprepare`/`kret` (kernel VA).
    slots: SaveSlots,
    /// The shared invoke stub (push arg + call kprepare).
    invoke_stub: u32,
    /// Kernel stack used for extension invocations (kernel VA top).
    invoke_stack_top: u32,
    /// Aborted invocations.
    pub aborts: u64,
    /// Completed invocations.
    pub calls: u64,
    /// Faults a segment may accumulate before it is automatically
    /// quarantined (the generalization of the mobile-code host's
    /// three-strikes rule). Routers and other fail-closed users may
    /// lower it to 1 to restore abort-once semantics.
    pub quarantine_threshold: u32,
    /// Segments quarantined so far.
    pub quarantines: u64,
}

impl KernelExtensions {
    /// Initializes the mechanism: allocates the shared `kret` stub, its
    /// call gate, the save slots, and a kernel invocation stack.
    pub fn new(k: &mut Kernel) -> Result<KernelExtensions, KextError> {
        let page = k.alloc_kernel_pages(1)?;
        let slots = SaveSlots {
            sp_slot: page,
            bp_slot: page + 4,
        };
        let kret_code = trampoline::kernel_ret(slots, k.sel.kdata.0);
        let kret_at = page + 16;
        let bytes = encode_program(&kret_code);
        if !k.kwrite(kret_at, &bytes) {
            return Err(KextError::OutOfMemory);
        }

        let gate_idx = k.m.gdt.push(Descriptor::call_gate(k.sel.kcode, kret_at, 1));
        let kret_gate = Selector::new(gate_idx, false, 1);

        let invoke_stub = kret_at + bytes.len() as u32 + 16;
        let stub_bytes = encode_program(&trampoline::kernel_invoke_stub());
        if !k.kwrite(invoke_stub, &stub_bytes) {
            return Err(KextError::OutOfMemory);
        }

        let stack = k.alloc_kernel_pages(2)?;
        Ok(KernelExtensions {
            segments: Vec::new(),
            kret_gate,
            slots,
            invoke_stub,
            invoke_stack_top: stack + 2 * PAGE_SIZE,
            aborts: 0,
            calls: 0,
            quarantine_threshold: 3,
            quarantines: 0,
        })
    }

    /// Creates an extension segment of `pages` pages at SPL 1 inside the
    /// kernel address range, with its private stack and transfer stub.
    pub fn create_segment(
        &mut self,
        k: &mut Kernel,
        pages: u32,
    ) -> Result<ExtSegmentId, KextError> {
        let size = pages * PAGE_SIZE;
        let base = k.alloc_kernel_pages(pages)?;
        debug_assert!(base >= KERNEL_VA_START, "extension segments live in 3-4GB");

        let code_idx = k.m.gdt.push(Descriptor::code(base, size, 1));
        let data_idx = k.m.gdt.push(Descriptor::data(base, size, 1));
        let code_sel = Selector::new(code_idx, false, 1);
        let data_sel = Selector::new(data_idx, false, 1);

        // Segment-relative layout: [0, stack_pages) = stack (one per
        // segment — modules in one segment share it, §4.3), then the
        // ktransfer stub and its target slot, then module space.
        let stack_pages = 2u32;
        let ext_esp = stack_pages * PAGE_SIZE - 4;
        let ktarget_off = stack_pages * PAGE_SIZE;
        let ktransfer_off = ktarget_off + 8;
        let transfer_code = trampoline::transfer(TransferParams {
            location: ktransfer_off,
            // Indirect: ktransfer calls through the target slot.
            ext_fn: 0,
            gate_sel: self.kret_gate.0,
            load_ds: Some(data_sel.0),
        });
        // Replace the direct call with an indirect call through the
        // target slot (the direct form is used at user level where the
        // Transfer is generated per function; kernel extensions share one
        // stub and the kernel patches the slot per invocation).
        let mut code = transfer_code;
        code[2] = asm86::isa::Insn::CallM(asm86::isa::Mem::abs(ktarget_off as i32 as u32));
        let bytes = encode_program(&code);
        if !k.kwrite(base + ktransfer_off, &bytes) {
            return Err(KextError::OutOfMemory);
        }

        let load_next = (ktransfer_off + bytes.len() as u32 + 15) & !15;

        // Per-segment kprepare stub (SPL 0, flat addressing).
        let kprepare_page = k.alloc_kernel_pages(1)?;
        let esp_slot = kprepare_page;
        k.m.host_write_u32(esp_slot, ext_esp);
        let prep_code = trampoline::prepare(trampoline::PrepareParams {
            slots: self.slots,
            // kprepare writes the argument through the flat kernel DS at
            // the *linear* address of the slot.
            arg_slot: base + ext_esp,
            ext_esp_slot: esp_slot,
            stack_sel: data_sel.0,
            code_sel: code_sel.0,
            transfer: ktransfer_off,
        });
        let kprepare = kprepare_page + 16;
        let pbytes = encode_program(&prep_code);
        if !k.kwrite(kprepare, &pbytes) {
            return Err(KextError::OutOfMemory);
        }

        self.segments.push(ExtSegment {
            base,
            size,
            code_sel,
            data_sel,
            functions: BTreeMap::new(),
            shared_area: None,
            modules: Vec::new(),
            dead: false,
            strikes: 0,
            quarantined: false,
            tombstones: BTreeSet::new(),
            queue: VecDeque::new(),
            busy: false,
            kprepare,
            ktransfer_off,
            ktarget_off,
            ext_esp,
            load_next,
        });
        Ok(ExtSegmentId(self.segments.len() - 1))
    }

    /// Borrows a segment.
    pub fn segment(&self, id: ExtSegmentId) -> &ExtSegment {
        &self.segments[id.0]
    }

    /// Loads a module object into an extension segment (`insmod`),
    /// registering `exports` in the Extension Function Table and
    /// discovering the `shared_area` symbol if present.
    ///
    /// The module is linked at its segment-relative offset — kernel
    /// extension code addresses are segment offsets, exactly the pointer
    /// model §4.4.1 contrasts with the user-level mechanism.
    pub fn insmod(
        &mut self,
        k: &mut Kernel,
        id: ExtSegmentId,
        name: &str,
        obj: &Object,
        exports: &[&str],
    ) -> Result<(), KextError> {
        let seg = &mut self.segments[id.0];
        if seg.dead {
            return Err(KextError::SegmentDead);
        }
        if seg.quarantined {
            return Err(KextError::Quarantined {
                strikes: seg.strikes,
            });
        }
        let at = seg.load_next;
        if at + obj.len() as u32 > seg.size {
            return Err(KextError::OutOfMemory);
        }
        let image = obj
            .link(at, &BTreeMap::new())
            .map_err(|e| KextError::Link(e.to_string()))?;
        let base = seg.base;
        if !k.kwrite(base + at, &image) {
            return Err(KextError::Link(format!(
                "segment memory unmapped at {:#010x}",
                base + at
            )));
        }
        seg.load_next = (at + image.len() as u32 + 15) & !15;

        for sym in exports {
            let off = obj
                .symbol(sym)
                .ok_or_else(|| KextError::Link(format!("export `{sym}` not defined")))?;
            seg.functions.insert((*sym).to_string(), at + off);
        }
        if let Some(off) = obj.symbol("shared_area") {
            let size = obj
                .symbol("shared_area_end")
                .map(|e| e - off)
                .unwrap_or(PAGE_SIZE);
            seg.shared_area = Some((at + off, size));
        }
        seg.modules.push(name.to_string());
        Ok(())
    }

    /// Segment-relative offsets of the transfer stub and initial stack
    /// pointer (exposed for tests: the stack and stub must precede module
    /// space).
    pub fn segment_layout(&self, id: ExtSegmentId) -> (u32, u32) {
        let seg = &self.segments[id.0];
        (seg.ktransfer_off, seg.ext_esp)
    }

    /// Linear address of a segment's shared data area, for kernel-side
    /// reads/writes (the zero-copy argument area of §4.3).
    pub fn shared_area_linear(&self, id: ExtSegmentId) -> Option<(u32, u32)> {
        let seg = &self.segments[id.0];
        seg.shared_area.map(|(off, size)| (seg.base + off, size))
    }

    /// Invokes a registered extension function synchronously, running the
    /// whole Figure 6 sequence (SPL 0 → SPL 1 → SPL 0) on the simulated
    /// CPU, under the CPU-time limit.
    pub fn invoke(
        &mut self,
        k: &mut Kernel,
        id: ExtSegmentId,
        func: &str,
        arg: u32,
    ) -> Result<u32, KextError> {
        let (kprepare, target_linear, entry_off) = {
            let seg = &self.segments[id.0];
            if seg.quarantined {
                return Err(KextError::Quarantined {
                    strikes: seg.strikes,
                });
            }
            if seg.dead {
                return Err(KextError::SegmentDead);
            }
            let entry = seg
                .functions
                .get(func)
                .copied()
                .ok_or_else(|| KextError::NoSuchFunction(func.to_string()))?;
            (seg.kprepare, seg.base + seg.ktarget_off, entry)
        };

        // Patch the per-invocation target slot (the kernel indexes its
        // Extension Function Table and dispatches, step 5 of Figure 4).
        if !k.m.host_write_u32(target_linear, entry_off) {
            return Err(KextError::OutOfMemory);
        }

        // Enter the kprepare stub at ring 0 on the invocation stack.
        let snapshot = k.m.cpu.clone();
        let saved_tss0 = k.m.tss.stack[0];
        k.m.tss.stack[0] = (k.sel.kdata, self.invoke_stack_top);
        k.m.force_seg_from_table(asm86::isa::SegReg::Cs, k.sel.kcode);
        k.m.force_seg_from_table(asm86::isa::SegReg::Ss, k.sel.kdata);
        k.m.force_seg_from_table(asm86::isa::SegReg::Ds, k.sel.kdata);
        k.m.cpu.set_reg(Reg::Esp, self.invoke_stack_top);
        k.m.cpu.set_reg(Reg::Eax, arg);
        k.m.cpu.set_reg(Reg::Ebx, kprepare);
        k.m.cpu.eip = self.invoke_stub;

        let deadline = k.m.cycles() + k.extension_cycle_limit;
        let result = loop {
            match k.m.run_until_cycles(deadline) {
                Exit::Hlt => {
                    self.calls += 1;
                    break Ok(k.m.cpu.reg(Reg::Eax));
                }
                Exit::IntHook(v) if v == KSERVICE_VECTOR => {
                    self.kservice(k, id);
                    k.m.charge_iret_resume();
                }
                Exit::Fault(fault) => {
                    // §5.2: aborting a misbehaving kernel extension costs
                    // ~1,020 cycles (vectoring + abort work).
                    k.m.charge(k.costs.kext_abort);
                    self.strike(k, id);
                    break Err(KextError::Aborted(fault));
                }
                Exit::CycleLimit => {
                    k.m.charge(k.costs.kext_abort);
                    self.strike(k, id);
                    break Err(KextError::TimeLimit);
                }
                Exit::IntHook(_) | Exit::InsnLimit => {
                    // An extension reaching any other hook (e.g. trying the
                    // user syscall gate, which its gate DPL forbids anyway)
                    // is treated as misbehaviour and aborted.
                    k.m.charge(k.costs.kext_abort);
                    self.strike(k, id);
                    break Err(KextError::TimeLimit);
                }
            }
        };

        k.m.cpu = snapshot;
        k.m.tss.stack[0] = saved_tss0;
        result
    }

    /// Dispatches a kernel-service request from an extension (`int 0x81`).
    fn kservice(&mut self, k: &mut Kernel, id: ExtSegmentId) {
        k.m.charge(k.costs.syscall_dispatch);
        let nr = k.m.cpu.reg(Reg::Eax);
        let (b, c) = (k.m.cpu.reg(Reg::Ebx), k.m.cpu.reg(Reg::Ecx));
        let seg_base = self.segments[id.0].base;
        let seg_size = self.segments[id.0].size;
        let ret: u32 = match nr {
            // Bytes are addressed segment-relative and bounds-checked
            // against the segment limit, like any kernel copy-from-user.
            kservice::LOG if b.saturating_add(c) <= seg_size && c <= 4096 => {
                let data = k.m.host_read(seg_base + b, c as usize);
                k.console.extend_from_slice(&data);
                k.m.charge(c as u64 / 4 + 20);
                c
            }
            kservice::LOG => u32::MAX,
            kservice::CYCLES => k.m.cycles() as u32,
            kservice::SHARED_SIZE => self.segments[id.0].shared_area.map(|(_, s)| s).unwrap_or(0),
            _ => u32::MAX,
        };
        k.m.cpu.set_reg(Reg::Eax, ret);
    }

    /// Enqueues an asynchronous request (§4.3): the kernel "puts a request
    /// into the target extension module's request queue, marks the module
    /// busy, and returns".
    pub fn queue_async(&mut self, id: ExtSegmentId, func: &str, arg: u32) {
        let seg = &mut self.segments[id.0];
        seg.queue.push_back(AsyncRequest {
            func: func.to_string(),
            arg,
        });
        seg.busy = true;
    }

    /// Unloads a module's entry points from the Extension Function Table
    /// (`rmmod`). The module's code stays mapped (the bump loader does not
    /// compact), but it can no longer be invoked.
    pub fn rmmod(&mut self, id: ExtSegmentId, name: &str) -> bool {
        let seg = &mut self.segments[id.0];
        let Some(pos) = seg.modules.iter().position(|m| m == name) else {
            return false;
        };
        seg.modules.remove(pos);
        // Without per-module symbol ownership records, conservatively drop
        // every function a reloaded module would re-register; real insmod
        // tracks ownership — record it here from the module name prefix
        // convention used by insmod callers, falling back to clearing all
        // when the segment has no modules left.
        if seg.modules.is_empty() {
            seg.functions.clear();
            seg.shared_area = None;
        }
        true
    }

    /// Records one strike against a segment after an abort. Below the
    /// quarantine threshold the segment stays usable — the abort already
    /// unwound the misbehaving invocation and the segment's memory is
    /// still protected by its limit, so the three-strikes policy of the
    /// mobile-code host generalizes safely. At the threshold the segment
    /// is quarantined.
    fn strike(&mut self, k: &mut Kernel, id: ExtSegmentId) {
        self.aborts += 1;
        let threshold = self.quarantine_threshold;
        let seg = &mut self.segments[id.0];
        seg.strikes += 1;
        if seg.strikes >= threshold {
            self.quarantine(k, id);
        }
    }

    /// Quarantines a segment: every module is force-unloaded (`rmmod`),
    /// each Extension Function Table entry is replaced by a tombstone so
    /// pending callers get a structured error instead of a wild far call,
    /// the shared area is withdrawn, and the SPL 1 descriptors are marked
    /// not-present so any stale selector use faults in hardware.
    pub fn quarantine(&mut self, k: &mut Kernel, id: ExtSegmentId) {
        let seg = &mut self.segments[id.0];
        if seg.quarantined {
            return;
        }
        seg.quarantined = true;
        seg.dead = true;
        let names: Vec<String> = seg.functions.keys().cloned().collect();
        seg.tombstones.extend(names);
        seg.functions.clear();
        seg.modules.clear();
        seg.shared_area = None;
        seg.busy = false;
        let (code_sel, data_sel) = (seg.code_sel, seg.data_sel);
        Self::revoke_descriptors(k, code_sel, data_sel);
        self.quarantines += 1;
    }

    /// Marks a segment's code and data descriptors not-present: loading
    /// or transferring through them now raises #NP/#GP in the simulated
    /// hardware, closing the window where a revoked selector is still
    /// cached in software state somewhere.
    fn revoke_descriptors(k: &mut Kernel, code_sel: Selector, data_sel: Selector) {
        for sel in [code_sel, data_sel] {
            let idx = sel.index();
            if let Some(d) = k.m.gdt.get(idx).copied() {
                let revoked = match d {
                    Descriptor::Code(mut c) => {
                        c.present = false;
                        Descriptor::Code(c)
                    }
                    Descriptor::Data(mut dd) => {
                        dd.present = false;
                        Descriptor::Data(dd)
                    }
                    other => other,
                };
                k.m.gdt.set(idx, revoked);
            }
        }
    }

    /// Destroys an extension segment, reclaiming what the paper's
    /// prototype reclaims (§4.5.2: "reclaiming the system resources
    /// previously allocated"): its descriptors are marked not-present so
    /// any stale selector use faults, and it can never be invoked again.
    /// Requests still queued are *not* silently dropped — a later
    /// [`run_pending`](Self::run_pending) drains them as structured
    /// [`KextError::SegmentDead`] errors so every pending caller learns
    /// its fate.
    pub fn destroy_segment(&mut self, k: &mut Kernel, id: ExtSegmentId) {
        let seg = &mut self.segments[id.0];
        seg.dead = true;
        seg.functions.clear();
        seg.busy = false;
        let (code_sel, data_sel) = (seg.code_sel, seg.data_sel);
        Self::revoke_descriptors(k, code_sel, data_sel);
    }

    /// Removes and returns all pending asynchronous requests *without*
    /// running them, clearing the busy mark — for callers (like the
    /// router) that synchronize shared-area argument placement themselves
    /// and invoke per request.
    pub fn take_queued(&mut self, id: ExtSegmentId) -> Vec<AsyncRequest> {
        let seg = &mut self.segments[id.0];
        seg.busy = false;
        seg.queue.drain(..).collect()
    }

    /// Drains the asynchronous queue, running each request to completion
    /// before the next (§4.1: extensions are single-threaded,
    /// run-to-completion). Returns the results in order.
    pub fn run_pending(&mut self, k: &mut Kernel, id: ExtSegmentId) -> Vec<Result<u32, KextError>> {
        let mut results = Vec::new();
        while let Some(req) = self.segments[id.0].queue.pop_front() {
            results.push(self.invoke(k, id, &req.func, req.arg));
            if self.segments[id.0].dead {
                // Remaining requests fail fast with a structured error:
                // tombstoned EFT entries mean no pending caller is ever
                // dispatched through a revoked descriptor.
                let err = if self.segments[id.0].quarantined {
                    KextError::Quarantined {
                        strikes: self.segments[id.0].strikes,
                    }
                } else {
                    KextError::SegmentDead
                };
                while self.segments[id.0].queue.pop_front().is_some() {
                    results.push(Err(err.clone()));
                }
                break;
            }
        }
        self.segments[id.0].busy = false;
        results
    }
}
