//! The user-level extension mechanism (§4.4): `ExtensibleApp`.
//!
//! An extensible application promotes itself to SPL 2 (`init_PL`); its
//! writable pages become PPL 0 (supervisor). Extensions are loaded with
//! `seg_dlopen` into pages at PPL 1 and execute at SPL 3 in the ordinary
//! ring-3 segments — which span the *same* 0–3 GB range as the
//! application's ring-2 segments, so pointers pass between the two sides
//! unswizzled. Protection comes from the combination:
//!
//! * page-level U/S checks stop the SPL 3 extension touching PPL 0 pages
//!   (everything the application did not explicitly expose);
//! * segment-level limit/SPL checks stop the SPL 2 application (and its
//!   extensions) touching the kernel's 3–4 GB range.
//!
//! `seg_dlsym` returns a pointer to a generated `Prepare` routine rather
//! than to the extension function itself; calling it runs the Figure 6
//! sequence. Faulting or runaway extension calls are aborted and surfaced
//! as [`ExtCallError`]; the application survives.

use std::collections::BTreeMap;

use asm86::encode::{decode, encode_program};
use asm86::isa::Reg;
use asm86::{Assembler, Object};
use baselines::sfi::{self, Sandbox, SfiError, SfiPolicy};
use minikernel::layout::{UEXT_DONE_VECTOR, UEXT_FAULT_VECTOR};
use minikernel::{AreaKind, Budget, Kernel, Outcome, SpawnError, Tid};
use x86sim::fault::Fault;
use x86sim::image::{Dec, Enc, RestoreError};
use x86sim::mem::PAGE_SIZE;
use x86sim::paging::{pkru, pte};

use crate::backend::{BackendKind, APP_KEY};
use crate::checkpoint as ckpt;
use crate::dl::{build_got_plt, merge_objects, DlError};
use crate::kernel_ext::install_proof_map;
use crate::stdlib;
use crate::trampoline::{self, PrepareParams, SaveSlots, TransferParams};
use verifier::{verify_image, Attestation, VerifyPolicy};

/// Cost (cycles) of the base `dlopen` work: file open, mapping, symbol
/// table parsing, eager relocation. Anchor: §5.1 measures `dlopen` at
/// 400 µs (= 80,000 cycles at 200 MHz); `seg_dlopen`'s extra PPL marking
/// takes it to ~420 µs.
pub const DLOPEN_BASE_CYCLES: u64 = 80_000;

/// Errors from the Palladium user-level runtime.
#[derive(Debug)]
pub enum PalError {
    /// Task creation / memory failure.
    Spawn(SpawnError),
    /// Linking or symbol resolution failure.
    Dl(DlError),
    /// Image link failure.
    Link(String),
    /// A requested symbol does not exist in the extension.
    NoSymbol(String),
    /// A kernel interface returned an error.
    Kernel(&'static str, i32),
    /// The extension image failed load-time static verification
    /// (a [`DlopenOptions::verify`] load); it was unloaded.
    Verify(verifier::VerifyError),
    /// The extension was rejected by the SFI rewriter
    /// (a [`BackendKind::Sfi`] load).
    Sfi(SfiError),
    /// The extension handle was already closed.
    Closed,
}

impl core::fmt::Display for PalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PalError::Spawn(e) => write!(f, "spawn: {e}"),
            PalError::Dl(e) => write!(f, "dynamic linking: {e}"),
            PalError::Link(e) => write!(f, "link: {e}"),
            PalError::NoSymbol(s) => write!(f, "no such symbol `{s}`"),
            PalError::Kernel(what, e) => write!(f, "kernel {what} failed: {e}"),
            PalError::Verify(e) => write!(f, "extension rejected by the verifier: {e}"),
            PalError::Sfi(e) => write!(f, "extension rejected by the SFI rewriter: {e}"),
            PalError::Closed => write!(f, "extension already closed"),
        }
    }
}

impl std::error::Error for PalError {}

impl From<SpawnError> for PalError {
    fn from(e: SpawnError) -> PalError {
        PalError::Spawn(e)
    }
}

impl From<DlError> for PalError {
    fn from(e: DlError) -> PalError {
        PalError::Dl(e)
    }
}

impl From<SfiError> for PalError {
    fn from(e: SfiError) -> PalError {
        PalError::Sfi(e)
    }
}

/// Why a protected extension call failed (the application survives).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExtCallError {
    /// The extension violated its protection domain; SIGSEGV was delivered
    /// to the application, which aborted the call.
    Fault {
        /// Signal number delivered.
        sig: u8,
        /// Faulting address the handler observed.
        addr: u32,
        /// The hardware-level cause behind the signal, recorded by the
        /// kernel's fault dispatcher. `None` only for signals that did
        /// not originate from a fault.
        cause: Option<x86sim::fault::FaultCause>,
    },
    /// The extension exceeded its CPU-time limit (§4.5.2's timer check).
    TimeLimit,
    /// The raw hardware fault killed the task (no handler installed —
    /// does not happen under this runtime, which always installs one).
    Killed(Fault),
}

impl core::fmt::Display for ExtCallError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ExtCallError::Fault { sig, addr, cause } => {
                write!(f, "extension fault: signal {sig} at {addr:#010x}")?;
                if let Some(c) = cause {
                    write!(f, " ({})", c.tag())?;
                }
                Ok(())
            }
            ExtCallError::TimeLimit => write!(f, "extension exceeded its CPU-time limit"),
            ExtCallError::Killed(fault) => write!(f, "task killed: {fault}"),
        }
    }
}

/// Handle to a loaded extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtensionHandle(usize);

/// Options for [`ExtensibleApp::dlopen`] (and
/// [`Session::dlopen`](crate::Session::dlopen)): one loader, with
/// verification, attestation and predecode as *options* rather than
/// parallel function variants.
///
/// ```
/// use palladium::DlopenOptions;
///
/// // A plain load, defaults everywhere:
/// let opts = DlopenOptions::new();
///
/// // A verified load with a bigger heap and the eager-predecode fast
/// // path declined:
/// let opts = DlopenOptions::new()
///     .heap_pages(16)
///     .verify(&["entry", "reset"])
///     .predecode(false);
/// # let _ = opts;
/// ```
#[derive(Debug, Clone, Default)]
pub struct DlopenOptions {
    stack_pages: Option<u32>,
    heap_pages: Option<u32>,
    verify_entries: Option<Vec<String>>,
    predecode_opt_out: bool,
    backend: Option<BackendKind>,
}

impl DlopenOptions {
    /// Default options: 4 stack pages, 4 heap pages, no load-time
    /// verification, eager predecode permitted (it only ever activates
    /// for verified extensions).
    pub fn new() -> DlopenOptions {
        DlopenOptions::default()
    }

    /// Extension stack pages (default 4).
    pub fn stack_pages(mut self, pages: u32) -> DlopenOptions {
        self.stack_pages = Some(pages);
        self
    }

    /// Extension heap pages for `xmalloc` (default 4).
    pub fn heap_pages(mut self, pages: u32) -> DlopenOptions {
        self.heap_pages = Some(pages);
        self
    }

    /// Statically verify the linked image at load time. `entries` names
    /// the exported functions the application intends to resolve with
    /// `seg_dlsym`; verification walks every instruction reachable from
    /// them. On rejection the extension is unloaded and the load returns
    /// [`PalError::Verify`]; on success the handle carries a `Verified`
    /// attestation and protected calls take the verified-dispatch fast
    /// path (unless [`predecode(false)`](Self::predecode) opts out).
    pub fn verify<S: AsRef<str>>(mut self, entries: &[S]) -> DlopenOptions {
        self.verify_entries = Some(entries.iter().map(|s| s.as_ref().to_string()).collect());
        self
    }

    /// Whether a `Verified` attestation may license eager predecode on
    /// calls into this extension (default `true`). Purely a host
    /// performance knob: simulated cycles, faults and results are
    /// identical either way.
    pub fn predecode(mut self, on: bool) -> DlopenOptions {
        self.predecode_opt_out = !on;
        self
    }

    /// Selects the isolation backend guarding this extension (default:
    /// the caller's session backend, or [`BackendKind::SegPaging`] when
    /// loading through [`ExtensibleApp::dlopen`] directly).
    ///
    /// [`BackendKind::Sfi`] loads take a different admission path: the
    /// object must be self-contained, branch-free code (the rewriter's
    /// contract) and [`verify`](Self::verify) is ignored — the rewrite
    /// itself is the admission check.
    pub fn backend(mut self, kind: BackendKind) -> DlopenOptions {
        self.backend = Some(kind);
        self
    }

    /// The backend requested via [`backend`](Self::backend), if any.
    pub fn backend_kind(&self) -> Option<BackendKind> {
        self.backend
    }

    /// The entry list requested via [`verify`](Self::verify), if any.
    pub fn verify_entries(&self) -> Option<&[String]> {
        self.verify_entries.as_deref()
    }

    fn stack_pages_or_default(&self) -> u32 {
        self.stack_pages.unwrap_or(4)
    }

    fn heap_pages_or_default(&self) -> u32 {
        self.heap_pages.unwrap_or(4)
    }
}

#[derive(Debug, Clone)]
struct Ext {
    base: u32,
    pages: u32,
    symbols: BTreeMap<String, u32>,
    /// Initial extension ESP (address of the argument slot).
    arg_slot: u32,
    /// Slot (PPL 0) holding the value `arg_slot`.
    esp_slot: u32,
    /// SPL 3 trampoline page for this extension's `Transfer` routines.
    tramp3_base: u32,
    tramp3_next: u32,
    /// Cache: function name -> (Prepare address, Transfer address).
    preps: BTreeMap<String, (u32, u32)>,
    /// GOT page (if the extension imports shared-library functions).
    got_page: Option<u32>,
    /// Byte range of the sealed GOT slots (loader-controlled memory a
    /// verifier may trust indirect jumps through).
    got_slots: Option<(u32, u32)>,
    /// Byte range of the loader-generated PLT stubs.
    plt_range: Option<(u32, u32)>,
    /// Stack and heap ranges (half-open), kept for verifier policy
    /// construction.
    stack: (u32, u32),
    heap: (u32, u32),
    /// `Verified` attestation from a load with
    /// [`DlopenOptions::verify`]; licenses eager predecode on protected
    /// calls into this extension.
    verified: Option<Attestation>,
    /// Whether the attestation may actually enable eager predecode
    /// ([`DlopenOptions::predecode`]; default yes).
    eager_predecode: bool,
    /// Which isolation backend guards this extension.
    backend: BackendKind,
    /// SFI sandbox region `(base, size)` — [`BackendKind::Sfi`] only.
    sandbox: Option<(u32, u32)>,
    closed: bool,
}

#[derive(Debug, Clone)]
struct LoadedLib {
    symbols: BTreeMap<String, u32>,
    /// Mapped code range (half-open) — legal branch targets for verified
    /// extensions.
    range: (u32, u32),
}

/// A promoted extensible application and its Palladium runtime state.
#[derive(Debug, Clone)]
pub struct ExtensibleApp {
    /// The hosting task.
    pub tid: Tid,
    /// Call-gate selector for `AppCallGate`.
    pub gate_sel: u16,
    /// Successful protected calls made.
    pub calls: u64,
    /// Calls aborted by fault or time limit.
    pub aborted_calls: u64,
    /// Protected calls that took the verified-dispatch fast path (eager
    /// predecode licensed by a load-time attestation).
    pub verified_calls: u64,
    invoke_stub: u32,
    callgate_addr: u32,
    slots: SaveSlots,
    /// Application-SPL trampoline region (PPL 0).
    tramp_next: u32,
    tramp_end: u32,
    /// Loaded extensions. Shared copy-on-write with forked worlds: a
    /// clone of a warmed app bumps one refcount, and the first
    /// load/resolve/close in either world materializes a private table.
    exts: std::sync::Arc<Vec<Ext>>,
    /// Loaded shared libraries, shared copy-on-write like `exts`.
    libs: std::sync::Arc<Vec<LoadedLib>>,
    /// Call-gate selectors of registered application services — legal
    /// far-call targets for verified extensions (their stubs `lcall`
    /// these gates).
    service_gates: Vec<u16>,
}

impl ExtensibleApp {
    /// Creates an extensible application: spawns a host-driven shell task,
    /// promotes it with `init_PL`, and installs the Palladium runtime
    /// (invoke stub, fault trampoline, `AppCallGate` + its call gate).
    pub fn new(k: &mut Kernel) -> Result<ExtensibleApp, PalError> {
        let shell = Assembler::assemble("_start:\nspin:\njmp spin\n").expect("shell");
        let tid = k.spawn(&shell, &BTreeMap::new())?;
        k.switch_to(tid);

        let r = k.palladium_init_pl();
        if r != 0 {
            return Err(PalError::Kernel("init_PL", r));
        }

        // Application trampoline region: PPL 0, writable (holds the save
        // slots), 2 pages.
        let tramp = k.host_mmap(tid, 2, true, false, AreaKind::Image)?;
        let mut cursor = tramp;
        let write_code = |k: &mut Kernel, code: &[asm86::isa::Insn], cursor: &mut u32| {
            let bytes = encode_program(code);
            assert!(k.m.host_write(*cursor, &bytes));
            let at = *cursor;
            *cursor += bytes.len() as u32;
            at
        };

        // Save slots first (so their addresses are known), 16-byte aligned.
        let sp_slot = cursor;
        let bp_slot = cursor + 4;
        cursor += 16;
        let slots = SaveSlots { sp_slot, bp_slot };

        let invoke_stub = write_code(k, &trampoline::invoke_stub(UEXT_DONE_VECTOR), &mut cursor);
        let fault_stub = write_code(k, &trampoline::fault_stub(UEXT_FAULT_VECTOR), &mut cursor);
        let callgate_addr = write_code(k, &trampoline::app_callgate(slots), &mut cursor);

        let gate = k.palladium_set_call_gate(callgate_addr);
        if gate < 0 {
            return Err(PalError::Kernel("set_call_gate", gate));
        }
        k.host_set_signal_handler(tid, Some(fault_stub));

        Ok(ExtensibleApp {
            tid,
            gate_sel: gate as u16,
            calls: 0,
            aborted_calls: 0,
            verified_calls: 0,
            invoke_stub,
            callgate_addr,
            slots,
            tramp_next: cursor,
            tramp_end: tramp + 2 * PAGE_SIZE,
            exts: std::sync::Arc::new(Vec::new()),
            libs: std::sync::Arc::new(Vec::new()),
            service_gates: Vec::new(),
        })
    }

    fn tramp_alloc(&mut self, len: u32) -> Result<u32, PalError> {
        let at = self.tramp_next;
        if at + len > self.tramp_end {
            return Err(PalError::Spawn(SpawnError::OutOfMemory));
        }
        self.tramp_next = at + len;
        Ok(at)
    }

    /// Loads a shared library: its code pages are mapped PPL 1 (read-only)
    /// so extensions can call the non-buffering routines directly.
    pub fn load_shared_lib(&mut self, k: &mut Kernel, obj: &Object) -> Result<u32, PalError> {
        // Loader writes resolve through the owning task's page tables.
        k.switch_to(self.tid);
        let pages = (obj.len() as u32).div_ceil(PAGE_SIZE).max(1);
        let base = k.host_mmap(self.tid, pages, true, true, AreaKind::SharedLib)?;
        let image = obj
            .link(base, &BTreeMap::new())
            .map_err(|e| PalError::Link(e.to_string()))?;
        assert!(k.m.host_write(base, &image));
        // Seal read-only: extensions (and the app) execute but never write.
        k.host_set_page_flags(self.tid, base, pages, 0, pte::RW);
        k.m.charge(DLOPEN_BASE_CYCLES);

        let symbols = obj
            .symbols
            .iter()
            .map(|(s, off)| (s.clone(), base + off))
            .collect();
        std::sync::Arc::make_mut(&mut self.libs).push(LoadedLib {
            symbols,
            range: (base, base + pages * PAGE_SIZE),
        });
        Ok(base)
    }

    /// Loads the standard mini-libc as a shared library.
    pub fn load_libc(&mut self, k: &mut Kernel) -> Result<u32, PalError> {
        self.load_shared_lib(k, &stdlib::libc_object())
    }

    fn resolve_lib_symbol(&self, name: &str) -> Option<u32> {
        self.libs.iter().find_map(|l| l.symbols.get(name).copied())
    }

    /// The unified extension loader: loads an extension into PPL 1 pages
    /// at SPL 3, with an eagerly-resolved sealed GOT for any
    /// shared-library imports, plus a private stack and `xmalloc` heap.
    ///
    /// This is the paper's `seg_dlopen` with verification, attestation
    /// and predecode folded in as [`DlopenOptions`] rather than parallel
    /// entry points: pass [`DlopenOptions::verify`] to run the static
    /// verifier over the linked image before the handle is returned
    /// (rejections unload the extension and surface as
    /// [`PalError::Verify`]).
    pub fn dlopen(
        &mut self,
        k: &mut Kernel,
        obj: &Object,
        opts: &DlopenOptions,
    ) -> Result<ExtensionHandle, PalError> {
        match opts.backend_kind().unwrap_or(BackendKind::SegPaging) {
            BackendKind::Sfi => self.dlopen_sfi(k, obj, opts),
            kind => self.dlopen_paged(k, obj, opts, kind),
        }
    }

    /// The hardware-protected load path shared by [`BackendKind::SegPaging`]
    /// and [`BackendKind::ProtKeys`] (they map identically; ProtKeys
    /// additionally key-tags the application-private trampoline region).
    fn dlopen_paged(
        &mut self,
        k: &mut Kernel,
        obj: &Object,
        opts: &DlopenOptions,
        kind: BackendKind,
    ) -> Result<ExtensionHandle, PalError> {
        k.switch_to(self.tid);
        let stack_pages = opts.stack_pages_or_default();
        let heap_pages = opts.heap_pages_or_default();
        // Auto-link xmalloc when referenced.
        let undefined: Vec<String> = obj
            .undefined_symbols()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let xmalloc_obj;
        let merged;
        let obj = if undefined.iter().any(|s| s == "xmalloc") {
            xmalloc_obj = stdlib::xmalloc_object();
            merged = merge_objects(&[obj, &xmalloc_obj])?;
            &merged
        } else {
            obj
        };

        let img_pages = (obj.len() as u32).div_ceil(PAGE_SIZE).max(1);
        let base = k.host_mmap(self.tid, img_pages, true, true, AreaKind::SharedLib)?;

        // Imports still unresolved go through a PLT/GOT pair.
        let imports: Vec<String> = obj
            .undefined_symbols()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut externs: BTreeMap<String, u32> = BTreeMap::new();
        let mut got_page = None;
        let mut got_slots = None;
        let mut plt_range = None;
        if !imports.is_empty() {
            // One page each: the GOT must be alone on its page so sealing
            // it read-only cannot affect neighbours (§4.4.2).
            let got = k.host_mmap(self.tid, 1, true, true, AreaKind::SharedLib)?;
            let plt = k.host_mmap(self.tid, 1, true, true, AreaKind::SharedLib)?;
            let gp = build_got_plt(&imports, got, plt, |name| self.resolve_lib_symbol(name))?;
            assert!(k.m.host_write(got, &gp.got_bytes));
            assert!(k.m.host_write(plt, &gp.plt_bytes));
            // Eager resolution done: seal the GOT (and the PLT) read-only.
            k.host_set_page_flags(self.tid, got, 1, 0, pte::RW);
            k.host_set_page_flags(self.tid, plt, 1, 0, pte::RW);
            got_slots = Some(gp.got_range(got));
            plt_range = Some(gp.plt_range(plt));
            externs.extend(gp.plt_addrs);
            got_page = Some(got);
        }

        let image = obj
            .link(base, &externs)
            .map_err(|e| PalError::Link(e.to_string()))?;
        assert!(k.m.host_write(base, &image));

        // Extension stack: PPL 1, writable. The top dword is the argument
        // slot (initial extension ESP).
        let stack_base = k.host_mmap(
            self.tid,
            stack_pages,
            true,
            true,
            AreaKind::ExtensionPrivate,
        )?;
        let arg_slot = stack_base + stack_pages * PAGE_SIZE - 4;

        // Extension heap for xmalloc.
        let heap_base =
            k.host_mmap(self.tid, heap_pages, true, true, AreaKind::ExtensionPrivate)?;
        let symbols: BTreeMap<String, u32> = obj
            .symbols
            .iter()
            .map(|(s, off)| (s.clone(), base + off))
            .collect();
        if let Some(next) = symbols.get("xheap_next") {
            k.m.host_write_u32(*next, heap_base);
        }
        if let Some(end) = symbols.get("xheap_end") {
            k.m.host_write_u32(*end, heap_base + heap_pages * PAGE_SIZE);
        }

        // SPL 3 trampoline page for Transfer routines: PPL 1, sealed
        // read-only after each write (host writes bypass R/W).
        let tramp3 = k.host_mmap(self.tid, 1, true, true, AreaKind::SharedLib)?;
        k.host_set_page_flags(self.tid, tramp3, 1, 0, pte::RW);

        // The PPL 0 slot holding the extension ESP that Prepare pushes.
        let esp_slot = self.tramp_alloc(4)?;
        k.m.host_write_u32(esp_slot, arg_slot);

        // seg_dlopen = dlopen + PPL marking of the exposed pages (§5.1:
        // 400 us -> 420 us).
        let marked = img_pages + stack_pages + heap_pages + 1;
        let mark = k.costs.ppl_mark(marked);
        k.m.charge(DLOPEN_BASE_CYCLES + mark);

        std::sync::Arc::make_mut(&mut self.exts).push(Ext {
            base,
            pages: img_pages,
            symbols,
            arg_slot,
            esp_slot,
            tramp3_base: tramp3,
            tramp3_next: tramp3,
            preps: BTreeMap::new(),
            got_page,
            got_slots,
            plt_range,
            stack: (stack_base, stack_base + stack_pages * PAGE_SIZE),
            heap: (heap_base, heap_base + heap_pages * PAGE_SIZE),
            verified: None,
            eager_predecode: !opts.predecode_opt_out,
            backend: kind,
            sandbox: None,
            closed: false,
        });
        let h = ExtensionHandle(self.exts.len() - 1);

        if kind == BackendKind::ProtKeys {
            // Move the application-private trampoline region (save slots,
            // invoke stub, Prepare routines) from U/S protection to key
            // protection: its pages become user-reachable in the page
            // tables but carry APP_KEY, and the thread's key-rights
            // register denies that key from now on. Every ProtKeys
            // Transfer re-asserts the denial on entry, so extension-mode
            // accesses to the region fault on the key check instead of
            // the U/S check. Ring-2 application code is unaffected —
            // supervisor accesses ignore keys, exactly as on MPK.
            let tramp_base = self.tramp_end - 2 * PAGE_SIZE;
            k.host_set_page_flags(
                self.tid,
                tramp_base,
                2,
                pte::US | pte::key_flags(APP_KEY),
                0,
            );
            k.m.cpu.pkru = pkru::deny_access(&[APP_KEY]);
        }

        // Verification as an option, not a function variant: the policy
        // admits accesses to the extension's own image, stack and heap,
        // branches into loaded shared libraries and the loader's PLT
        // stubs, indirect jumps through the sealed GOT, and far calls
        // through this application's `AppCallGate` and registered
        // service gates.
        if let Some(entries) = opts.verify_entries() {
            let refs: Vec<&str> = entries.iter().map(|s| s.as_str()).collect();
            match self.verify_loaded(k, h, &refs) {
                Ok(att) => {
                    // Proof-directed check elision: the attested block
                    // proofs license simulator tokens at their load
                    // addresses (install failures just keep a block on
                    // the normal checked path).
                    install_proof_map(k, base, &att.proofs);
                    std::sync::Arc::make_mut(&mut self.exts)[h.0].verified = Some(att);
                }
                Err(e) => {
                    self.seg_dlclose(k, h)?;
                    return Err(PalError::Verify(e));
                }
            }
        }
        Ok(h)
    }

    /// The [`BackendKind::Sfi`] load path: link, decode, and rewrite the
    /// object through [`baselines::sfi`] so every store is masked into a
    /// size-aligned power-of-two sandbox, then install the rewritten code
    /// at the *application's* privilege level (PPL 0 — SFI needs no
    /// hardware boundary, that is its point). The object must be
    /// self-contained (no imports) branch-free code; the rewriter rejects
    /// anything else with a typed [`PalError::Sfi`].
    fn dlopen_sfi(
        &mut self,
        k: &mut Kernel,
        obj: &Object,
        opts: &DlopenOptions,
    ) -> Result<ExtensionHandle, PalError> {
        k.switch_to(self.tid);
        if !obj.undefined_symbols().is_empty() {
            return Err(PalError::Sfi(SfiError::Unsupported("imports")));
        }
        // Link at base 0: the admitted subset is position-independent
        // (no relative branches, no inline data), so the image bytes are
        // the same at any base and symbol offsets are object offsets.
        let image = obj
            .link(0, &BTreeMap::new())
            .map_err(|e| PalError::Link(e.to_string()))?;

        // Size the rewritten code with a probe rewrite — the output
        // *shape* is independent of the sandbox's base/mask values (all
        // immediates encode in 4 bytes).
        let probe = Sandbox {
            base: 0,
            size: PAGE_SIZE,
        };
        let (probe_bytes, _) = sfi_rewrite_image(&image, &probe)?;
        let stack_pages = opts.stack_pages_or_default();
        let heap_pages = opts.heap_pages_or_default();
        let code_pages = (probe_bytes.len() as u32).div_ceil(PAGE_SIZE).max(1);
        let sandbox_pages = (code_pages + stack_pages + heap_pages).next_power_of_two();
        let size = sandbox_pages * PAGE_SIZE;

        // host_mmap only page-aligns; over-allocate and carve the
        // size-aligned subrange the masking arithmetic requires.
        let alloc_pages = sandbox_pages * 2;
        let alloc = k.host_mmap(
            self.tid,
            alloc_pages,
            true,
            false,
            AreaKind::ExtensionPrivate,
        )?;
        let base = alloc.next_multiple_of(size);
        debug_assert!(base + size <= alloc + alloc_pages * PAGE_SIZE);
        let sb = Sandbox { base, size };
        let (code, map) = sfi_rewrite_image(&image, &sb)?;
        assert!(k.m.host_write(base, &code));
        k.m.charge(DLOPEN_BASE_CYCLES);

        // Function symbols relocate through the rewrite's offset map;
        // data symbols (not on an instruction boundary) are dropped —
        // the admitted subset has none.
        let symbols: BTreeMap<String, u32> = obj
            .symbols
            .iter()
            .filter_map(|(s, off)| map.get(off).map(|&o| (s.clone(), base + o)))
            .collect();

        // Masked stray accesses land in the data area after the code.
        let data_base = base + code_pages * PAGE_SIZE;
        let heap_base = base + size - heap_pages * PAGE_SIZE;
        std::sync::Arc::make_mut(&mut self.exts).push(Ext {
            base: alloc,
            pages: alloc_pages,
            symbols,
            arg_slot: 0,
            esp_slot: 0,
            tramp3_base: 0,
            tramp3_next: 0,
            preps: BTreeMap::new(),
            got_page: None,
            got_slots: None,
            plt_range: None,
            stack: (data_base, heap_base),
            heap: (heap_base, base + size),
            verified: None,
            eager_predecode: false,
            backend: BackendKind::Sfi,
            sandbox: Some((base, size)),
            closed: false,
        });
        Ok(ExtensionHandle(self.exts.len() - 1))
    }

    /// Runs the static verifier over an already-loaded extension image.
    fn verify_loaded(
        &self,
        k: &Kernel,
        h: ExtensionHandle,
        entries: &[&str],
    ) -> Result<Attestation, verifier::VerifyError> {
        let ext = &self.exts[h.0];
        let image = k.m.host_read(ext.base, (ext.pages * PAGE_SIZE) as usize);
        let entry_offs: Vec<u32> = entries
            .iter()
            .filter_map(|n| ext.symbols.get(*n).map(|&a| a - ext.base))
            .collect();
        let mut policy = VerifyPolicy::new(3, ext.base)
            .allow_data(ext.stack.0, ext.stack.1)
            .allow_data(ext.heap.0, ext.heap.1)
            .allow_gate(self.gate_sel);
        for &g in &self.service_gates {
            policy = policy.allow_gate(g);
        }
        if let Some((lo, hi)) = ext.got_slots {
            policy = policy.allow_slots(lo, hi);
        }
        if let Some((lo, hi)) = ext.plt_range {
            policy = policy.allow_code(lo, hi);
        }
        for lib in self.libs.iter() {
            policy = policy.allow_code(lib.range.0, lib.range.1);
        }
        verify_image(&image, &entry_offs, &policy)
    }

    /// The `Verified` attestation of an extension, if it was admitted
    /// through a verifying load ([`DlopenOptions::verify`]).
    pub fn attestation(&self, h: ExtensionHandle) -> Result<Option<Attestation>, PalError> {
        Ok(self.ext(h)?.verified.clone())
    }

    /// Address of the invoke stub (the canonical call site used by
    /// [`ExtensibleApp::call_extension`]).
    pub fn invoke_stub_addr(&self) -> u32 {
        self.invoke_stub
    }

    /// Address of the per-application `AppCallGate` routine.
    pub fn app_callgate_addr(&self) -> u32 {
        self.callgate_addr
    }

    /// Addresses of a resolved function's `Prepare` and `Transfer`
    /// routines (for phase-attributed measurements; `seg_dlsym` must have
    /// resolved the function first).
    pub fn trampoline_addrs(&self, h: ExtensionHandle, name: &str) -> Option<(u32, u32)> {
        self.exts.get(h.0)?.preps.get(name).copied()
    }

    /// Makes an *unprotected* call to a plain application function at
    /// SPL 2 through the same invoke stub used for protected calls — the
    /// Table 1 "Intra" comparison path. Returns `eax`.
    pub fn call_app_function(
        &mut self,
        k: &mut Kernel,
        func: u32,
        arg: u32,
    ) -> Result<u32, ExtCallError> {
        self.call_extension(k, func, arg)
    }

    /// The GOT page address of an extension, if it has imports (exposed
    /// for tests and debuggers).
    pub fn got_page(&self, h: ExtensionHandle) -> Result<Option<u32>, PalError> {
        Ok(self.ext(h)?.got_page)
    }

    /// `dlsym`: resolves a *data* symbol to its raw address (§4.4.2: data
    /// pointers need no massaging because the segments share a base).
    pub fn dlsym(&self, h: ExtensionHandle, name: &str) -> Result<u32, PalError> {
        let ext = self.ext(h)?;
        ext.symbols
            .get(name)
            .copied()
            .ok_or_else(|| PalError::NoSymbol(name.to_string()))
    }

    fn ext(&self, h: ExtensionHandle) -> Result<&Ext, PalError> {
        let e = self.exts.get(h.0).ok_or(PalError::Closed)?;
        if e.closed {
            return Err(PalError::Closed);
        }
        Ok(e)
    }

    /// `seg_dlsym`: resolves a *function* symbol, generating its
    /// `Prepare`/`Transfer` pair on first use, and returns a pointer to
    /// `Prepare` — the only entry point the application should call.
    pub fn seg_dlsym(
        &mut self,
        k: &mut Kernel,
        h: ExtensionHandle,
        name: &str,
    ) -> Result<u32, PalError> {
        k.switch_to(self.tid);
        let backend = self.ext(h)?.backend;
        {
            let ext = self.ext(h)?;
            if let Some((p, _)) = ext.preps.get(name) {
                return Ok(*p);
            }
        }
        if backend == BackendKind::Sfi {
            // No trampolines: the rewritten function runs at the
            // application's own privilege level and is called directly.
            let addr = *self
                .ext(h)?
                .symbols
                .get(name)
                .ok_or_else(|| PalError::NoSymbol(name.to_string()))?;
            let exts = std::sync::Arc::make_mut(&mut self.exts);
            exts[h.0].preps.insert(name.to_string(), (addr, addr));
            return Ok(addr);
        }
        let (fn_addr, arg_slot, esp_slot, tramp3_at) = {
            let ext = self.ext(h)?;
            let fn_addr = *ext
                .symbols
                .get(name)
                .ok_or_else(|| PalError::NoSymbol(name.to_string()))?;
            (fn_addr, ext.arg_slot, ext.esp_slot, ext.tramp3_next)
        };

        // Transfer at SPL 3 (same segments as the extension). Under
        // ProtKeys it opens with `wrpkru` dropping rights to the
        // application's key; that site must be a registered key gate or
        // the gate-integrity check rejects the write.
        let transfer_code = trampoline::transfer(TransferParams {
            location: tramp3_at,
            ext_fn: fn_addr,
            gate_sel: self.gate_sel,
            load_ds: None,
            pkru: (backend == BackendKind::ProtKeys).then(|| pkru::deny_access(&[APP_KEY])),
        });
        let tbytes = encode_program(&transfer_code);
        if tramp3_at + tbytes.len() as u32 > self.ext(h)?.tramp3_base + PAGE_SIZE {
            return Err(PalError::Spawn(SpawnError::OutOfMemory));
        }
        assert!(k.m.host_write(tramp3_at, &tbytes));
        if backend == BackendKind::ProtKeys {
            // The wrpkru is the Transfer's first instruction and the
            // ring-3 code segment is flat, so the gate site is the
            // trampoline address itself.
            k.m.register_key_gate(tramp3_at);
        }

        // Prepare at SPL 2 (PPL 0 trampoline region).
        let prep_code = trampoline::prepare(PrepareParams {
            slots: self.slots,
            arg_slot,
            ext_esp_slot: esp_slot,
            stack_sel: k.sel.udata.0,
            code_sel: k.sel.ucode.0,
            transfer: tramp3_at,
        });
        let pbytes = encode_program(&prep_code);
        let prep_at = self.tramp_alloc(pbytes.len() as u32)?;
        assert!(k.m.host_write(prep_at, &pbytes));

        let ext = std::sync::Arc::make_mut(&mut self.exts)
            .get_mut(h.0)
            .unwrap();
        ext.tramp3_next = tramp3_at + tbytes.len() as u32;
        ext.preps.insert(name.to_string(), (prep_at, tramp3_at));
        Ok(prep_at)
    }

    /// `seg_dlclose`: unmaps nothing physically (frames are not recycled
    /// in this simulator) but revokes the extension's pages by clearing
    /// their PTEs' user bit, making any further call fault.
    pub fn seg_dlclose(&mut self, k: &mut Kernel, h: ExtensionHandle) -> Result<(), PalError> {
        k.switch_to(self.tid);
        let (base, pages, backend) = {
            let e = self.ext(h)?;
            // A verified extension's proof tokens die with the handle
            // (other extensions' tokens stay installed).
            if let Some(att) = &e.verified {
                for p in att.proofs.blocks.values() {
                    k.m.remove_proof_token(e.base + p.start);
                }
            }
            (e.base, e.pages, e.backend)
        };
        match backend {
            // SFI code runs at the application's own level, so the U/S
            // bit cannot revoke it — unmap outright: stale calls fault
            // on page-not-present.
            BackendKind::Sfi => k.host_set_page_flags(self.tid, base, pages, 0, pte::P),
            _ => k.host_set_page_flags(self.tid, base, pages, 0, pte::US),
        }
        if backend == BackendKind::ProtKeys {
            // Gate-integrity hygiene: the dead Transfers' wrpkru sites
            // must not remain legal key-write locations.
            let sites: Vec<u32> = self.ext(h)?.preps.values().map(|&(_, t)| t).collect();
            for t in sites {
                k.m.unregister_key_gate(t);
            }
        }
        let exts = std::sync::Arc::make_mut(&mut self.exts);
        exts[h.0].closed = true;
        exts[h.0].preps.clear();
        Ok(())
    }

    /// The backend guarding an extension.
    pub fn backend_of(&self, h: ExtensionHandle) -> Result<BackendKind, PalError> {
        Ok(self.ext(h)?.backend)
    }

    /// The SFI sandbox region of a [`BackendKind::Sfi`] extension.
    pub fn sandbox_of(&self, h: ExtensionHandle) -> Result<Option<(u32, u32)>, PalError> {
        Ok(self.ext(h)?.sandbox)
    }

    /// Address of the application's ESP save slot — application-private
    /// state an extension must never reach, whatever the backend
    /// (conformance suites use it as the canonical wild-write victim).
    pub fn save_slot_addr(&self) -> u32 {
        self.slots.sp_slot
    }

    /// True if `site` is a Transfer trampoline address of an *open*
    /// ProtKeys extension — i.e. a key gate that is supposed to exist.
    pub(crate) fn owns_key_gate(&self, site: u32) -> bool {
        self.exts.iter().any(|e| {
            !e.closed
                && e.backend == BackendKind::ProtKeys
                && e.preps.values().any(|&(_, t)| t == site)
        })
    }

    /// Leak audit shared by every backend: a closed extension must not
    /// keep resolvable entry points.
    pub(crate) fn audit_closed_extensions(&self) -> Vec<String> {
        self.exts
            .iter()
            .enumerate()
            .filter(|(_, e)| e.closed && !e.preps.is_empty())
            .map(|(i, _)| format!("closed extension #{i} still has resolvable entry points"))
            .collect()
    }

    /// Re-installs the simulator proof tokens of every open verified
    /// extension from its retained attestation. Tokens are host-side
    /// derived state, deliberately excluded from checkpoints; a restored
    /// session calls this to regain the proof-elided dispatch fast path
    /// (forgetting it only costs speed — elision never changes
    /// guest-visible state).
    pub fn reinstall_proof_tokens(&self, k: &mut Kernel) {
        for e in self.exts.iter() {
            if e.closed {
                continue;
            }
            if let Some(att) = &e.verified {
                install_proof_map(k, e.base, &att.proofs);
            }
        }
    }

    /// Makes a protected extension call through the Figure 6 sequence: the
    /// whole path executes on the simulated CPU. Returns the extension's
    /// 4-byte result.
    ///
    /// Faults and CPU-limit overruns abort the call; the application's
    /// context is restored and the error returned.
    pub fn call_extension(
        &mut self,
        k: &mut Kernel,
        prepare: u32,
        arg: u32,
    ) -> Result<u32, ExtCallError> {
        k.switch_to(self.tid);
        // Verified-dispatch fast path: a call whose Prepare routine
        // belongs to an extension holding a `Verified` attestation may
        // run with predecode enabled eagerly — the attestation proves
        // the disassembled view matches the executed stream.
        let verified = self.exts.iter().any(|e| {
            !e.closed
                && e.verified.is_some()
                && e.eager_predecode
                && e.preps.values().any(|&(p, _)| p == prepare)
        });
        let saved_predecode = k.m.predecode_enabled();
        if verified {
            self.verified_calls += 1;
            k.m.set_predecode(true);
        }
        let snapshot = k.m.cpu.clone();
        k.m.cpu.set_reg(Reg::Eax, arg);
        k.m.cpu.set_reg(Reg::Ebx, prepare);
        k.m.cpu.eip = self.invoke_stub;

        let limit = k.extension_cycle_limit;
        let out = k.run_current(Budget::Cycles(limit));
        k.m.set_predecode(saved_predecode);
        match out {
            Outcome::Hook(v) if v == UEXT_DONE_VECTOR => {
                let result = k.m.cpu.reg(Reg::Eax);
                k.m.cpu = snapshot;
                self.calls += 1;
                Ok(result)
            }
            Outcome::Hook(v) if v == UEXT_FAULT_VECTOR => {
                // The SIGSEGV trampoline ran: eax = signal, ebx = address.
                let sig = k.m.cpu.reg(Reg::Eax) as u8;
                let addr = k.m.cpu.reg(Reg::Ebx);
                // The guest trampoline only sees (signal, address); the
                // structured cause rides along from the kernel's fault
                // dispatcher so callers and audit oracles know *why*
                // containment fired.
                let cause = k.last_fault.take().map(|f| f.cause);
                k.host_clear_sigcontext(self.tid);
                k.m.cpu = snapshot;
                self.aborted_calls += 1;
                Err(ExtCallError::Fault { sig, addr, cause })
            }
            Outcome::Budget => {
                // §4.5.2: the timer expired; the kernel aborts the
                // extension and signals the application.
                k.m.charge(k.costs.signal_deliver);
                k.host_clear_sigcontext(self.tid);
                k.m.cpu = snapshot;
                self.aborted_calls += 1;
                Err(ExtCallError::TimeLimit)
            }
            Outcome::Signaled { fault, .. } => {
                self.aborted_calls += 1;
                Err(ExtCallError::Killed(fault))
            }
            Outcome::Hook(_) | Outcome::Exited(_) | Outcome::Halted => {
                k.m.cpu = snapshot;
                self.aborted_calls += 1;
                Err(ExtCallError::TimeLimit)
            }
        }
    }

    /// Allocates a shared data area: mmapped by the (SPL 2) application —
    /// hence PPL 0 — then exposed with `set_range` (PPL 1). Both the
    /// application and its extensions can read and write it.
    pub fn alloc_shared(&mut self, k: &mut Kernel, pages: u32) -> Result<u32, PalError> {
        k.switch_to(self.tid);
        let addr = k.host_mmap(self.tid, pages, true, false, AreaKind::Anon)?;
        let r = k.palladium_set_range(addr, pages * PAGE_SIZE);
        if r != 0 {
            return Err(PalError::Kernel("set_range", r));
        }
        Ok(addr)
    }

    /// Exports an application service to extensions: generates a
    /// `ServiceEntry` wrapper around `impl_addr` (SPL 2 guest code) and
    /// registers a DPL 3 call gate for it. Returns the gate selector the
    /// extension should `lcall`.
    pub fn register_service(&mut self, k: &mut Kernel, impl_addr: u32) -> Result<u16, PalError> {
        k.switch_to(self.tid);
        // Generate at a known location (two-pass: reserve, then write).
        let probe = trampoline::service_entry(0, impl_addr);
        let len = encode_program(&probe).len() as u32;
        let at = self.tramp_alloc(len)?;
        let code = trampoline::service_entry(at, impl_addr);
        let bytes = encode_program(&code);
        debug_assert_eq!(bytes.len() as u32, len);
        assert!(k.m.host_write(at, &bytes));
        k.switch_to(self.tid);
        let gate = k.palladium_set_call_gate(at);
        if gate < 0 {
            return Err(PalError::Kernel("set_call_gate", gate));
        }
        self.service_gates.push(gate as u16);
        Ok(gate as u16)
    }

    /// Builds a linkable object of extension-side calling stubs for a set
    /// of registered application services: each `(name, gate)` pair yields
    /// a `name` symbol extensions can simply `call` (the §6 "stub code
    /// generators"). Merge the object into an extension image for
    /// `seg_dlopen`.
    ///
    /// Each stub pops its own return address into a private slot before
    /// the gate `lcall`, so the service implementation sees exactly the
    /// stack layout of a plain near call (`[esp+4]` = first argument) —
    /// gcc-style parameter passing stays transparent, including variadic
    /// services. The slot makes the stub non-reentrant, which matches the
    /// extension model (§4.1: single-threaded, run-to-completion).
    pub fn service_stubs_object(services: &[(&str, u16)]) -> asm86::Object {
        let mut b = asm86::CodeBuilder::new();
        for (name, gate) in services {
            let slot = format!("__ret_slot_{name}");
            b.label(name).expect("unique service names");
            b.popm_label(&slot, 0);
            b.emit(asm86::Insn::Lcall(*gate, 0));
            b.jmpm_label(&slot, 0);
            b.label(&slot).expect("unique slot");
            b.dword(0);
        }
        b.finish().expect("stub object")
    }

    // ----- durable checkpoints ----------------------------------------------

    /// Serializes the runtime state of the application — counters,
    /// trampoline cursors, the extension and shared-library tables with
    /// their attestations — into `e`. All guest memory the extensions
    /// occupy lives in the kernel's machine image; this is the host-side
    /// bookkeeping that makes the loaded extensions callable again after
    /// [`restore_from`](Self::restore_from).
    pub fn save_into(&self, e: &mut Enc) {
        e.u32(self.tid);
        e.u16(self.gate_sel);
        e.u64(self.calls);
        e.u64(self.aborted_calls);
        e.u64(self.verified_calls);
        e.u32(self.invoke_stub);
        e.u32(self.callgate_addr);
        e.u32(self.slots.sp_slot);
        e.u32(self.slots.bp_slot);
        e.u32(self.tramp_next);
        e.u32(self.tramp_end);
        e.u32(self.exts.len() as u32);
        for ext in self.exts.iter() {
            put_ext(e, ext);
        }
        e.u32(self.libs.len() as u32);
        for lib in self.libs.iter() {
            ckpt::put_str_u32_map(e, &lib.symbols);
            e.u32(lib.range.0);
            e.u32(lib.range.1);
        }
        e.u32(self.service_gates.len() as u32);
        for g in &self.service_gates {
            e.u16(*g);
        }
    }

    /// Rebuilds an application from [`save_into`](Self::save_into) bytes.
    /// Pair with the kernel image saved at the same instant — the
    /// trampolines and extension images this state points at live in
    /// guest memory.
    pub fn restore_from(d: &mut Dec) -> Result<ExtensibleApp, RestoreError> {
        let tid = d.u32()?;
        let gate_sel = d.u16()?;
        let calls = d.u64()?;
        let aborted_calls = d.u64()?;
        let verified_calls = d.u64()?;
        let invoke_stub = d.u32()?;
        let callgate_addr = d.u32()?;
        let slots = SaveSlots {
            sp_slot: d.u32()?,
            bp_slot: d.u32()?,
        };
        let tramp_next = d.u32()?;
        let tramp_end = d.u32()?;
        let nexts = d.u32()?;
        let mut exts = Vec::with_capacity(nexts as usize);
        for _ in 0..nexts {
            exts.push(get_ext(d)?);
        }
        let nlibs = d.u32()?;
        let mut libs = Vec::with_capacity(nlibs as usize);
        for _ in 0..nlibs {
            let symbols = ckpt::get_str_u32_map(d)?;
            let range = (d.u32()?, d.u32()?);
            libs.push(LoadedLib { symbols, range });
        }
        let ngates = d.u32()?;
        let mut service_gates = Vec::with_capacity(ngates as usize);
        for _ in 0..ngates {
            service_gates.push(d.u16()?);
        }
        Ok(ExtensibleApp {
            tid,
            gate_sel,
            calls,
            aborted_calls,
            verified_calls,
            invoke_stub,
            callgate_addr,
            slots,
            tramp_next,
            tramp_end,
            exts: std::sync::Arc::new(exts),
            libs: std::sync::Arc::new(libs),
            service_gates,
        })
    }

    /// Installs raw guest code into the application trampoline region
    /// (PPL 0, SPL 2) — used for application-service implementations and
    /// benchmark stubs. Returns its address.
    pub fn install_app_code(
        &mut self,
        k: &mut Kernel,
        obj: &Object,
    ) -> Result<BTreeMap<String, u32>, PalError> {
        self.install_app_code_linked(k, obj, &BTreeMap::new())
    }

    /// As [`ExtensibleApp::install_app_code`], resolving the object's
    /// imports against `externs` (e.g. a direct call to a generated
    /// `Prepare` routine).
    pub fn install_app_code_linked(
        &mut self,
        k: &mut Kernel,
        obj: &Object,
        externs: &BTreeMap<String, u32>,
    ) -> Result<BTreeMap<String, u32>, PalError> {
        k.switch_to(self.tid);
        let at = self.tramp_alloc(obj.len() as u32)?;
        let image = obj
            .link(at, externs)
            .map_err(|e| PalError::Link(e.to_string()))?;
        assert!(k.m.host_write(at, &image));
        Ok(obj
            .symbols
            .iter()
            .map(|(s, off)| (s.clone(), at + off))
            .collect())
    }
}

fn put_ext(e: &mut Enc, x: &Ext) {
    e.u32(x.base);
    e.u32(x.pages);
    ckpt::put_str_u32_map(e, &x.symbols);
    e.u32(x.arg_slot);
    e.u32(x.esp_slot);
    e.u32(x.tramp3_base);
    e.u32(x.tramp3_next);
    e.u32(x.preps.len() as u32);
    for (name, (p, t)) in &x.preps {
        e.str(name);
        e.u32(*p);
        e.u32(*t);
    }
    ckpt::put_opt_u32(e, x.got_page);
    ckpt::put_opt_pair(e, x.got_slots);
    ckpt::put_opt_pair(e, x.plt_range);
    e.u32(x.stack.0);
    e.u32(x.stack.1);
    e.u32(x.heap.0);
    e.u32(x.heap.1);
    ckpt::put_opt_attestation(e, x.verified.as_ref());
    e.bool(x.eager_predecode);
    e.u8(x.backend.code());
    ckpt::put_opt_pair(e, x.sandbox);
    e.bool(x.closed);
}

fn get_ext(d: &mut Dec) -> Result<Ext, RestoreError> {
    let base = d.u32()?;
    let pages = d.u32()?;
    let symbols = ckpt::get_str_u32_map(d)?;
    let arg_slot = d.u32()?;
    let esp_slot = d.u32()?;
    let tramp3_base = d.u32()?;
    let tramp3_next = d.u32()?;
    let npreps = d.u32()?;
    let mut preps = BTreeMap::new();
    for _ in 0..npreps {
        let name = d.str()?;
        let p = d.u32()?;
        let t = d.u32()?;
        preps.insert(name, (p, t));
    }
    let got_page = ckpt::get_opt_u32(d)?;
    let got_slots = ckpt::get_opt_pair(d)?;
    let plt_range = ckpt::get_opt_pair(d)?;
    let stack = (d.u32()?, d.u32()?);
    let heap = (d.u32()?, d.u32()?);
    let verified = ckpt::get_opt_attestation(d)?;
    let eager_predecode = d.bool()?;
    let code = d.u8()?;
    let backend = BackendKind::from_code(code).ok_or_else(|| d.fail("unknown backend code"))?;
    let sandbox = ckpt::get_opt_pair(d)?;
    let closed = d.bool()?;
    Ok(Ext {
        base,
        pages,
        symbols,
        arg_slot,
        esp_slot,
        tramp3_base,
        tramp3_next,
        preps,
        got_page,
        got_slots,
        plt_range,
        stack,
        heap,
        verified,
        eager_predecode,
        backend,
        sandbox,
        closed,
    })
}

/// Decodes `image`, rewrites it instruction-by-instruction through the
/// SFI rewriter (whose transformation is per-instruction local), and
/// re-encodes — returning the rewritten bytes plus the map from input
/// byte offsets to output byte offsets that relocates function symbols.
fn sfi_rewrite_image(
    image: &[u8],
    sb: &Sandbox,
) -> Result<(Vec<u8>, BTreeMap<u32, u32>), PalError> {
    let mut out = Vec::new();
    let mut map = BTreeMap::new();
    let mut in_off = 0usize;
    let mut out_len = 0u32;
    while in_off < image.len() {
        let (insn, len) = decode(&image[in_off..])
            .map_err(|_| PalError::Sfi(SfiError::Unsupported("undecodable bytes (inline data)")))?;
        let (rewritten, _) = sfi::rewrite(&[insn], sb, SfiPolicy::WriteProtect)?;
        map.insert(in_off as u32, out_len);
        let bytes = encode_program(&rewritten);
        out_len += bytes.len() as u32;
        out.extend_from_slice(&bytes);
        in_off += len;
    }
    Ok((out, map))
}
