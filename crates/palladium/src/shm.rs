//! Typed access to shared data areas.
//!
//! The extension ABI passes one 4-byte argument and returns one 4-byte
//! result; "more complicated data structures are stored in the shared
//! data area, and input and result arguments are pointers to them"
//! (§4.5.1). `SharedArea` is the host-side view of such an area: a small
//! arena of u32 slots, byte buffers and C strings with bounds checking,
//! whose addresses are handed to extensions as the 4-byte argument.

use minikernel::Kernel;

/// Errors from shared-area access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShmError {
    /// The access falls outside the area.
    OutOfBounds,
    /// The arena is full.
    Full,
}

impl core::fmt::Display for ShmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ShmError::OutOfBounds => write!(f, "access outside the shared area"),
            ShmError::Full => write!(f, "shared area exhausted"),
        }
    }
}

impl std::error::Error for ShmError {}

/// The host-side view of a shared data area (PPL 1, visible to both the
/// application and its extensions).
#[derive(Debug, Clone, Copy)]
pub struct SharedArea {
    base: u32,
    size: u32,
    cursor: u32,
}

impl SharedArea {
    /// Wraps an area previously allocated with
    /// [`crate::user_ext::ExtensibleApp::alloc_shared`].
    pub fn new(base: u32, size: u32) -> SharedArea {
        SharedArea {
            base,
            size,
            cursor: 0,
        }
    }

    /// The area's base address (what extensions receive).
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Bytes remaining in the arena.
    pub fn remaining(&self) -> u32 {
        self.size - self.cursor
    }

    /// Resets the arena cursor (per-request reuse).
    pub fn reset(&mut self) {
        self.cursor = 0;
    }

    fn alloc(&mut self, len: u32, align: u32) -> Result<u32, ShmError> {
        let aligned = self.cursor.div_ceil(align) * align;
        let end = aligned.checked_add(len).ok_or(ShmError::Full)?;
        if end > self.size {
            return Err(ShmError::Full);
        }
        self.cursor = end;
        Ok(self.base + aligned)
    }

    /// Writes a u32 into the arena, returning its address.
    pub fn put_u32(&mut self, k: &mut Kernel, v: u32) -> Result<u32, ShmError> {
        let addr = self.alloc(4, 4)?;
        k.m.host_write_u32(addr, v);
        Ok(addr)
    }

    /// Writes bytes into the arena, returning their address.
    pub fn put_bytes(&mut self, k: &mut Kernel, data: &[u8]) -> Result<u32, ShmError> {
        let addr = self.alloc(data.len() as u32, 4)?;
        assert!(k.m.host_write(addr, data));
        Ok(addr)
    }

    /// Writes a NUL-terminated string, returning its address.
    pub fn put_cstr(&mut self, k: &mut Kernel, s: &str) -> Result<u32, ShmError> {
        let mut data = s.as_bytes().to_vec();
        data.push(0);
        self.put_bytes(k, &data)
    }

    /// Reads a u32 at an absolute address inside the area.
    pub fn read_u32(&self, k: &Kernel, addr: u32) -> Result<u32, ShmError> {
        self.check(addr, 4)?;
        Ok(k.m.host_read_u32(addr))
    }

    /// Reads `len` bytes at an absolute address inside the area.
    pub fn read_bytes(&self, k: &Kernel, addr: u32, len: u32) -> Result<Vec<u8>, ShmError> {
        self.check(addr, len)?;
        Ok(k.m.host_read(addr, len as usize))
    }

    /// Reads a NUL-terminated string at an absolute address.
    pub fn read_cstr(&self, k: &Kernel, addr: u32) -> Result<String, ShmError> {
        self.check(addr, 1)?;
        let max = self.base + self.size - addr;
        let raw = k.m.host_read(addr, max as usize);
        let end = raw
            .iter()
            .position(|b| *b == 0)
            .ok_or(ShmError::OutOfBounds)?;
        Ok(String::from_utf8_lossy(&raw[..end]).into_owned())
    }

    fn check(&self, addr: u32, len: u32) -> Result<(), ShmError> {
        let end = addr.checked_add(len).ok_or(ShmError::OutOfBounds)?;
        if addr < self.base || end > self.base + self.size {
            return Err(ShmError::OutOfBounds);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::user_ext::{DlopenOptions, ExtensibleApp};
    use asm86::Assembler;

    fn setup() -> (Kernel, ExtensibleApp, SharedArea) {
        let mut k = Kernel::boot();
        let mut app = ExtensibleApp::new(&mut k).unwrap();
        let base = app.alloc_shared(&mut k, 1).unwrap();
        let shm = SharedArea::new(base, 4096);
        (k, app, shm)
    }

    #[test]
    fn arena_allocation_and_roundtrip() {
        let (mut k, _app, mut shm) = setup();
        let a = shm.put_u32(&mut k, 0xAABB).unwrap();
        let b = shm.put_cstr(&mut k, "hello").unwrap();
        let c = shm.put_u32(&mut k, 7).unwrap();
        assert_eq!(shm.read_u32(&k, a).unwrap(), 0xAABB);
        assert_eq!(shm.read_cstr(&k, b).unwrap(), "hello");
        assert_eq!(shm.read_u32(&k, c).unwrap(), 7);
        assert_eq!(c % 4, 0, "u32 slots aligned");
        shm.reset();
        assert_eq!(shm.remaining(), 4096);
    }

    #[test]
    fn bounds_are_enforced() {
        let (k, _app, mut shm) = setup();
        assert_eq!(shm.read_u32(&k, shm.base() - 4), Err(ShmError::OutOfBounds));
        assert_eq!(
            shm.read_u32(&k, shm.base() + 4096),
            Err(ShmError::OutOfBounds)
        );
        let mut k2 = Kernel::boot();
        assert_eq!(
            shm.put_bytes(&mut k2, &vec![0u8; 5000]).unwrap_err(),
            ShmError::Full
        );
    }

    #[test]
    fn extension_processes_a_structured_request() {
        // The §4.5.1 pattern end to end: the app marshals a (len, string)
        // record into the shared area; the extension uppercases the string
        // in place; the app reads the result back.
        let (mut k, mut app, mut shm) = setup();
        let text = shm.put_cstr(&mut k, "palladium").unwrap();
        let req = shm.put_u32(&mut k, text).unwrap(); // request = ptr to string

        let ext = Assembler::assemble(
            "upcase:\n\
             mov ecx, [esp+4]\n\
             mov ecx, [ecx]          ; request -> string ptr\n\
             loop_top:\n\
             mov eax, byte [ecx]\n\
             cmp eax, 0\n\
             je done\n\
             cmp eax, 97\n\
             jb next\n\
             cmp eax, 122\n\
             ja next\n\
             sub eax, 32\n\
             mov byte [ecx], eax\n\
             next:\n\
             inc ecx\n\
             jmp loop_top\n\
             done:\n\
             mov eax, ecx\n\
             sub eax, [esp+4]\n\
             ret\n",
        )
        .unwrap();
        let h = app.dlopen(&mut k, &ext, &DlopenOptions::new()).unwrap();
        let f = app.seg_dlsym(&mut k, h, "upcase").unwrap();
        app.call_extension(&mut k, f, req).unwrap();
        assert_eq!(shm.read_cstr(&k, text).unwrap(), "PALLADIUM");
    }
}
