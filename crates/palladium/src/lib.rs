//! `palladium` — the paper's primary contribution.
//!
//! Palladium enforces intra-address-space protection boundaries between a
//! core program and its dynamically loaded extensions using the x86
//! segmentation and paging hardware:
//!
//! * [`kernel_ext`] — the kernel-level mechanism (§4.3): extension
//!   segments at SPL 1 inside the kernel address range, an Extension
//!   Function Table, shared data areas, whitelisted kernel services, and
//!   synchronous + asynchronous invocation with CPU-time limits.
//! * [`user_ext`] — the user-level mechanism (§4.4): the extensible
//!   application promotes itself to SPL 2 (`init_PL`), its writable pages
//!   become PPL 0, and extensions run at SPL 3 in segments spanning the
//!   *same* 0-3 GB range, so no pointer swizzling is needed; page-level
//!   checks protect the app, segment-level checks protect the kernel.
//! * [`trampoline`] — generation of the `Prepare`/`Transfer`/`AppCallGate`
//!   sequences of Figure 6 that synthesize a protected downcall from
//!   `lret` and a call-gate `lcall`.
//! * [`dl`] — the `seg_dlopen`/`seg_dlsym`/`seg_dlclose` loading layer
//!   with eager GOT/PLT resolution and a sealed, page-aligned GOT.
//! * [`stdlib`] — a miniature libc (shared, PPL 1) plus the `xmalloc`
//!   extension allocator.
//! * [`guestlib`] — canned guest-side syscall wrappers (`exit`, `print`,
//!   `send`/`recv`, ...) for hand-written guest programs.
//! * [`protmem`] — the protected memory service sketched as on-going work
//!   in §6.
//! * [`mobile`] — the §6 mobile-code system: unverified compiled applets
//!   confined by the hardware, with service allow-lists, quotas and
//!   revocation.
//! * [`segdb`] — the §6 segmentation-aware debugger: domain-labelled
//!   trace symbolization and per-SPL cycle profiles.
//! * [`supervisor`] — extension supervision (§4.5.2's reclamation made
//!   total): per-segment resource ledgers unwound transactionally on
//!   fault/quarantine/`rmmod`/destroy, a kernel-side leak audit, and
//!   restart policies with exponential backoff and permanent tombstones.
//! * [`backend`] — pluggable isolation backends behind the
//!   [`IsolationBackend`] trait: the paper's segmentation+paging default,
//!   an MPK/POE-style protection-key model with gate-integrity-checked
//!   `wrpkru`, and a software-fault-isolation comparator wrapping
//!   [`baselines::sfi`].
//! * [`session`] — the [`Session`] façade: a booted kernel plus its
//!   promoted application behind one load/resolve/call/close API, with
//!   verification, attestation and predecode as [`DlopenOptions`] and the
//!   isolation mechanism selectable per session or per load.
//! * [`error`] — the unified [`Error`] enum every subsystem error
//!   converts into (see its module docs for the mapping table).

pub mod backend;
mod checkpoint;
pub mod dl;
pub mod error;
pub mod guestlib;
pub mod kernel_ext;
pub mod mobile;
pub mod protmem;
pub mod segdb;
pub mod session;
pub mod shm;
pub mod stdlib;
pub mod supervisor;
pub mod trampoline;
pub mod user_ext;

pub use backend::{backend_for, BackendKind, FaultAttribution, IsolationBackend, APP_KEY};
pub use error::Error;
pub use kernel_ext::{
    DispatchStats, ExtSegmentId, KernelExtensions, KextError, SegmentConfig, SegmentConfigBuilder,
};
pub use mobile::{AppletHost, AppletId, AppletOutcome, AppletQuota};
pub use segdb::SegDb;
pub use session::Session;
pub use shm::{SharedArea, ShmError};
pub use supervisor::{
    LedgerEntry, ModuleImage, ReclaimRecord, ResourceAudit, ResourceLedger, RestartPolicy,
    SupervisedId, SupervisedState, Supervisor, SupervisorError,
};
pub use user_ext::{DlopenOptions, ExtCallError, ExtensibleApp, ExtensionHandle};

/// The user-level runtime's error enum, re-exported at the crate root
/// for backward compatibility.
#[deprecated(
    note = "match on the unified `palladium::Error` (or name the subsystem enum \
            explicitly as `palladium::user_ext::PalError`)"
)]
pub use user_ext::PalError;
pub use verifier::{Attestation, VerifyError, VerifyPolicy};

#[cfg(test)]
mod tests;
