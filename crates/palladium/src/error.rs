//! The unified error surface: [`Error`].
//!
//! Every Palladium subsystem keeps its own precise error enum — the
//! user-level runtime's [`PalError`], the kernel-extension manager's
//! [`KextError`], the supervisor's [`SupervisorError`], the static
//! verifier's [`VerifyError`] and the protected-call outcome
//! [`ExtCallError`] — but callers composing several subsystems (the
//! [`Session`](crate::Session) façade, examples, drivers) should not
//! have to thread five error types through their signatures. [`Error`]
//! is the single top-level enum they all convert into via `From`/`?`.
//!
//! ## Mapping
//!
//! | Source type | `Error` variant | Notes |
//! |---|---|---|
//! | [`PalError`] | [`Error::Pal`] | except `PalError::Verify(e)`, which is hoisted to [`Error::Verify`] so one match arm catches every verifier rejection |
//! | [`KextError`] | [`Error::Kext`] | except `KextError::Verify(e)`, hoisted to [`Error::Verify`] likewise |
//! | [`SupervisorError`] | [`Error::Supervisor`] | |
//! | [`VerifyError`] | [`Error::Verify`] | |
//! | [`ExtCallError`] | [`Error::Call`] | an *aborted* protected call — the application survived |
//! | [`ShmError`] | [`Error::Shm`] | |
//! | [`SfiError`] | [`Error::Sfi`] | hoisted from `PalError::Sfi(e)` too: an image the SFI rewriter cannot sandbox |
//! | [`BpfError`] | [`Error::Bpf`] | a packet-filter program rejected by the BPF validator (baseline comparisons) |
//! | [`RestoreError`] | [`Error::Restore`] | a checkpoint image that failed structural/integrity checks |
//!
//! The hoisting rule means `matches!(e, Error::Verify(_))` is the
//! complete "rejected by the static verifier" test, no matter whether
//! the rejection came from `dlopen` (user level) or `insmod` (kernel
//! level) — and likewise `Error::Sfi(_)` catches every SFI-rewriter
//! rejection whether it was returned directly by `baselines::sfi` or
//! wrapped by a `dlopen` under the SFI backend.
//!
//! [`Error::BackendMismatch`] has no source type: it is produced by
//! [`Session::restore_as`](crate::Session::restore_as) when a checkpoint
//! carries a different isolation backend than the caller demanded.

use crate::backend::BackendKind;
use crate::kernel_ext::KextError;
use crate::shm::ShmError;
use crate::supervisor::SupervisorError;
use crate::user_ext::{ExtCallError, PalError};
use baselines::bpf::BpfError;
use baselines::sfi::SfiError;
use verifier::VerifyError;
use x86sim::image::RestoreError;

/// Any error a Palladium API can return (see the module docs for the
/// conversion mapping).
#[derive(Debug)]
pub enum Error {
    /// User-level runtime failure (load, link, symbol, kernel interface).
    Pal(PalError),
    /// Kernel-extension mechanism failure (`insmod`/`invoke`/segments).
    Kext(KextError),
    /// Supervision failure (staging, restart, reclamation).
    Supervisor(SupervisorError),
    /// An image was rejected by load-time static verification, at either
    /// privilege level.
    Verify(VerifyError),
    /// A protected extension call was aborted (fault / time limit); the
    /// hosting application survived.
    Call(ExtCallError),
    /// Shared-memory area failure.
    Shm(ShmError),
    /// An image the SFI rewriter cannot sandbox (under the `Sfi`
    /// isolation backend), at either wrapping level.
    Sfi(SfiError),
    /// A packet-filter program rejected by the BPF validator.
    Bpf(BpfError),
    /// A checkpoint image that failed structural or integrity checks
    /// during restore.
    Restore(RestoreError),
    /// A checkpoint was restored under a different isolation backend
    /// than it was taken with (see
    /// [`Session::restore_as`](crate::Session::restore_as)).
    BackendMismatch {
        /// The backend recorded in the checkpoint image.
        found: BackendKind,
        /// The backend the caller demanded.
        expected: BackendKind,
    },
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Error::Pal(e) => write!(f, "{e}"),
            Error::Kext(e) => write!(f, "{e}"),
            Error::Supervisor(e) => write!(f, "{e}"),
            Error::Verify(e) => write!(f, "extension rejected by the verifier: {e}"),
            Error::Call(e) => write!(f, "{e}"),
            Error::Shm(e) => write!(f, "{e}"),
            Error::Sfi(e) => write!(f, "extension rejected by the SFI rewriter: {e}"),
            Error::Bpf(e) => write!(f, "filter rejected by the BPF validator: {e}"),
            Error::Restore(e) => write!(f, "checkpoint restore failed: {e}"),
            Error::BackendMismatch { found, expected } => write!(
                f,
                "checkpoint was taken under the {found} backend, \
                 but the {expected} backend was demanded"
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Pal(e) => Some(e),
            Error::Kext(_) => None, // KextError does not implement Error
            Error::Supervisor(_) => None,
            Error::Verify(e) => Some(e),
            Error::Call(_) => None,
            Error::Shm(e) => Some(e),
            Error::Sfi(e) => Some(e),
            Error::Bpf(e) => Some(e),
            Error::Restore(e) => Some(e),
            Error::BackendMismatch { .. } => None,
        }
    }
}

impl From<PalError> for Error {
    fn from(e: PalError) -> Error {
        match e {
            PalError::Verify(v) => Error::Verify(v),
            PalError::Sfi(s) => Error::Sfi(s),
            other => Error::Pal(other),
        }
    }
}

impl From<SfiError> for Error {
    fn from(e: SfiError) -> Error {
        Error::Sfi(e)
    }
}

impl From<BpfError> for Error {
    fn from(e: BpfError) -> Error {
        Error::Bpf(e)
    }
}

impl From<RestoreError> for Error {
    fn from(e: RestoreError) -> Error {
        Error::Restore(e)
    }
}

impl From<KextError> for Error {
    fn from(e: KextError) -> Error {
        match e {
            KextError::Verify(v) => Error::Verify(v),
            other => Error::Kext(other),
        }
    }
}

impl From<SupervisorError> for Error {
    fn from(e: SupervisorError) -> Error {
        Error::Supervisor(e)
    }
}

impl From<VerifyError> for Error {
    fn from(e: VerifyError) -> Error {
        Error::Verify(e)
    }
}

impl From<ExtCallError> for Error {
    fn from(e: ExtCallError) -> Error {
        Error::Call(e)
    }
}

impl From<ShmError> for Error {
    fn from(e: ShmError) -> Error {
        Error::Shm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_rejections_are_hoisted_from_both_levels() {
        let v = VerifyError::Privileged {
            offset: 0,
            mnemonic: "hlt",
        };
        let from_pal: Error = PalError::Verify(v.clone()).into();
        let from_kext: Error = KextError::Verify(v.clone()).into();
        let direct: Error = v.into();
        for e in [from_pal, from_kext, direct] {
            assert!(matches!(e, Error::Verify(_)), "{e}");
        }
    }

    #[test]
    fn plain_variants_round_trip() {
        let e: Error = PalError::Closed.into();
        assert!(matches!(e, Error::Pal(PalError::Closed)));
        let e: Error = KextError::TimeLimit.into();
        assert!(matches!(e, Error::Kext(KextError::TimeLimit)));
        let e: Error = ExtCallError::TimeLimit.into();
        assert!(matches!(e, Error::Call(ExtCallError::TimeLimit)));
        assert!(!format!("{e}").is_empty());
    }

    #[test]
    fn baseline_errors_are_hoisted_at_the_backend_boundary() {
        let s = SfiError::Unsupported("relative branch");
        let from_pal: Error = PalError::Sfi(s).into();
        let direct: Error = s.into();
        for e in [from_pal, direct] {
            assert!(matches!(e, Error::Sfi(_)), "{e}");
        }
        let e: Error = BpfError::NoReturn.into();
        assert!(matches!(e, Error::Bpf(BpfError::NoReturn)));
        assert!(!format!("{e}").is_empty());
    }

    #[test]
    fn backend_mismatch_names_both_backends() {
        let e = Error::BackendMismatch {
            found: BackendKind::ProtKeys,
            expected: BackendKind::Sfi,
        };
        let msg = format!("{e}");
        assert!(msg.contains("prot-keys") && msg.contains("sfi"), "{msg}");
    }
}
