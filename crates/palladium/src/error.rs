//! The unified error surface: [`Error`].
//!
//! Every Palladium subsystem keeps its own precise error enum — the
//! user-level runtime's [`PalError`], the kernel-extension manager's
//! [`KextError`], the supervisor's [`SupervisorError`], the static
//! verifier's [`VerifyError`] and the protected-call outcome
//! [`ExtCallError`] — but callers composing several subsystems (the
//! [`Session`](crate::Session) façade, examples, drivers) should not
//! have to thread five error types through their signatures. [`Error`]
//! is the single top-level enum they all convert into via `From`/`?`.
//!
//! ## Mapping
//!
//! | Source type | `Error` variant | Notes |
//! |---|---|---|
//! | [`PalError`] | [`Error::Pal`] | except `PalError::Verify(e)`, which is hoisted to [`Error::Verify`] so one match arm catches every verifier rejection |
//! | [`KextError`] | [`Error::Kext`] | except `KextError::Verify(e)`, hoisted to [`Error::Verify`] likewise |
//! | [`SupervisorError`] | [`Error::Supervisor`] | |
//! | [`VerifyError`] | [`Error::Verify`] | |
//! | [`ExtCallError`] | [`Error::Call`] | an *aborted* protected call — the application survived |
//! | [`ShmError`] | [`Error::Shm`] | |
//!
//! The hoisting rule means `matches!(e, Error::Verify(_))` is the
//! complete "rejected by the static verifier" test, no matter whether
//! the rejection came from `dlopen` (user level) or `insmod` (kernel
//! level).

use crate::kernel_ext::KextError;
use crate::shm::ShmError;
use crate::supervisor::SupervisorError;
use crate::user_ext::{ExtCallError, PalError};
use verifier::VerifyError;

/// Any error a Palladium API can return (see the module docs for the
/// conversion mapping).
#[derive(Debug)]
pub enum Error {
    /// User-level runtime failure (load, link, symbol, kernel interface).
    Pal(PalError),
    /// Kernel-extension mechanism failure (`insmod`/`invoke`/segments).
    Kext(KextError),
    /// Supervision failure (staging, restart, reclamation).
    Supervisor(SupervisorError),
    /// An image was rejected by load-time static verification, at either
    /// privilege level.
    Verify(VerifyError),
    /// A protected extension call was aborted (fault / time limit); the
    /// hosting application survived.
    Call(ExtCallError),
    /// Shared-memory area failure.
    Shm(ShmError),
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Error::Pal(e) => write!(f, "{e}"),
            Error::Kext(e) => write!(f, "{e}"),
            Error::Supervisor(e) => write!(f, "{e}"),
            Error::Verify(e) => write!(f, "extension rejected by the verifier: {e}"),
            Error::Call(e) => write!(f, "{e}"),
            Error::Shm(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Pal(e) => Some(e),
            Error::Kext(_) => None, // KextError does not implement Error
            Error::Supervisor(_) => None,
            Error::Verify(e) => Some(e),
            Error::Call(_) => None,
            Error::Shm(e) => Some(e),
        }
    }
}

impl From<PalError> for Error {
    fn from(e: PalError) -> Error {
        match e {
            PalError::Verify(v) => Error::Verify(v),
            other => Error::Pal(other),
        }
    }
}

impl From<KextError> for Error {
    fn from(e: KextError) -> Error {
        match e {
            KextError::Verify(v) => Error::Verify(v),
            other => Error::Kext(other),
        }
    }
}

impl From<SupervisorError> for Error {
    fn from(e: SupervisorError) -> Error {
        Error::Supervisor(e)
    }
}

impl From<VerifyError> for Error {
    fn from(e: VerifyError) -> Error {
        Error::Verify(e)
    }
}

impl From<ExtCallError> for Error {
    fn from(e: ExtCallError) -> Error {
        Error::Call(e)
    }
}

impl From<ShmError> for Error {
    fn from(e: ShmError) -> Error {
        Error::Shm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_rejections_are_hoisted_from_both_levels() {
        let v = VerifyError::Privileged {
            offset: 0,
            mnemonic: "hlt",
        };
        let from_pal: Error = PalError::Verify(v.clone()).into();
        let from_kext: Error = KextError::Verify(v.clone()).into();
        let direct: Error = v.into();
        for e in [from_pal, from_kext, direct] {
            assert!(matches!(e, Error::Verify(_)), "{e}");
        }
    }

    #[test]
    fn plain_variants_round_trip() {
        let e: Error = PalError::Closed.into();
        assert!(matches!(e, Error::Pal(PalError::Closed)));
        let e: Error = KextError::TimeLimit.into();
        assert!(matches!(e, Error::Kext(KextError::TimeLimit)));
        let e: Error = ExtCallError::TimeLimit.into();
        assert!(matches!(e, Error::Call(ExtCallError::TimeLimit)));
        assert!(!format!("{e}").is_empty());
    }
}
