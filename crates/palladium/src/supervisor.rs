//! Extension supervision: transactional resource reclamation and
//! restart-with-backoff (§4.5.2).
//!
//! The paper's containment story ends with the kernel "reclaiming the
//! system resources previously allocated" to a misbehaving extension.
//! This module makes that reclamation *total and auditable*:
//!
//! * a per-segment [`ResourceLedger`] records every kernel allocation
//!   (pages, GDT descriptors, EFT entries, shared-memory ranges, queued
//!   asynchronous requests) at acquisition time, and
//!   [`KernelExtensions::reclaim_segment`] unwinds it transactionally in
//!   reverse-acquisition order;
//! * [`KernelExtensions::assert_no_leaks`] is the kernel-side audit
//!   proving the unwind left nothing behind — every ledgered page is
//!   either still mapped (live segment) or provably unmapped (reclaimed
//!   segment), every descriptor present or revoked-and-pooled;
//! * a [`Supervisor`] drives restart policy on top: one-for-one
//!   reinstall from the original module image, exponential backoff in
//!   simulated cycles, strike decay after healthy operation, and a
//!   permanent tombstone once `max_restarts` is exhausted.
//!
//! Everything is a pure function of simulated cycle counts and the call
//! sequence, so seeded chaos campaigns remain byte-for-byte replayable
//! with supervision enabled.

use asm86::Object;
use minikernel::Kernel;

use x86sim::image::{Dec, Enc, RestoreError};

use crate::checkpoint as ckpt;
use crate::kernel_ext::{
    get_segment_config, put_segment_config, ExtSegmentId, KernelExtensions, KextError,
    SegmentConfig,
};

// ----- the resource ledger --------------------------------------------------

/// One recorded kernel allocation owned by an extension segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LedgerEntry {
    /// Kernel virtual pages (the segment body, or a side allocation like
    /// the per-segment `kprepare` stub page).
    KernelPages {
        /// Linear base.
        base: u32,
        /// Page count.
        pages: u32,
    },
    /// A GDT slot holding one of the segment's SPL 1 descriptors.
    GdtDescriptor {
        /// GDT index.
        index: u16,
    },
    /// An Extension Function Table entry.
    EftEntry {
        /// Function name.
        name: String,
        /// Module that registered it.
        module: String,
    },
    /// The segment's shared data area.
    ShmRange {
        /// Segment-relative offset.
        base: u32,
        /// Size in bytes.
        size: u32,
        /// Module that exported `shared_area`.
        module: String,
    },
    /// A pending asynchronous request slot.
    AsyncSlot {
        /// Extension function name the request targets.
        func: String,
    },
}

/// Per-segment record of every kernel allocation, in acquisition order.
///
/// The ledger is append-only during normal operation and unwound in
/// reverse (LIFO) order at reclaim, so teardown mirrors construction —
/// the transactional discipline DESIGN.md §6 documents.
#[derive(Debug, Default, Clone)]
pub struct ResourceLedger {
    entries: Vec<LedgerEntry>,
}

impl ResourceLedger {
    /// Records one allocation.
    pub fn record(&mut self, entry: LedgerEntry) {
        self.entries.push(entry);
    }

    /// Removes the oldest entry matching `pred` (FIFO, pairing with the
    /// queue order of asynchronous requests). Returns whether one was
    /// removed.
    pub fn remove_first(&mut self, pred: impl Fn(&LedgerEntry) -> bool) -> bool {
        match self.entries.iter().position(pred) {
            Some(pos) => {
                self.entries.remove(pos);
                true
            }
            None => false,
        }
    }

    /// All recorded entries, oldest first.
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// Number of entries matching `pred`.
    pub fn count(&self, pred: impl Fn(&LedgerEntry) -> bool) -> usize {
        self.entries.iter().filter(|e| pred(e)).count()
    }

    /// Drains every entry except pending [`LedgerEntry::AsyncSlot`]s
    /// (those unwind as the queue itself drains, so late callers still
    /// receive structured errors), returning the removed entries in
    /// reverse-acquisition order.
    pub fn unwind(&mut self) -> Vec<LedgerEntry> {
        let mut unwound = Vec::new();
        let mut kept = Vec::new();
        for e in self.entries.drain(..) {
            if matches!(e, LedgerEntry::AsyncSlot { .. }) {
                kept.push(e);
            } else {
                unwound.push(e);
            }
        }
        self.entries = kept;
        unwound.reverse();
        unwound
    }
}

/// What a completed reclaim actually released — kept on the segment so
/// [`KernelExtensions::assert_no_leaks`] can verify the unwind *stayed*
/// total (pages still unmapped, descriptors still revoked) long after
/// the ledger itself has drained.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReclaimRecord {
    /// Kernel VA ranges `(base, pages)` returned to the kernel.
    pub page_ranges: Vec<(u32, u32)>,
    /// GDT indices revoked and pooled for supervised reuse.
    pub descriptors: Vec<u16>,
    /// Asynchronous requests dropped (drained as part of the reclaim).
    pub requests_dropped: usize,
}

/// A point-in-time snapshot of kernel resource occupancy, for
/// before/after comparison across kill–restart cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceAudit {
    /// Physical frames currently allocated.
    pub frames_in_use: u32,
    /// GDT slots in existence (pooled slots are reused, so a supervised
    /// restart cycle must not grow this).
    pub gdt_len: usize,
    /// Kernel pages attributed to live (unreclaimed) extension segments.
    pub ledgered_pages: u32,
}

impl ResourceAudit {
    /// Captures the current occupancy.
    pub fn capture(k: &Kernel, kx: &KernelExtensions) -> ResourceAudit {
        ResourceAudit {
            frames_in_use: k.frames.in_use(),
            gdt_len: k.m.gdt.len(),
            ledgered_pages: kx.ledgered_pages(),
        }
    }
}

// ----- restart policy -------------------------------------------------------

/// Restart policy for a supervised extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartPolicy {
    /// Restarts tolerated before the extension is permanently
    /// tombstoned.
    pub max_restarts: u32,
    /// Backoff before the first restart, in simulated cycles.
    pub backoff_base: u64,
    /// Multiplier applied per additional restart.
    pub backoff_factor: u64,
    /// Upper bound on any single backoff.
    pub backoff_max: u64,
    /// Healthy cycles that forgive one accumulated restart (and decay
    /// one strike on the live segment). `0` disables decay.
    pub decay_after: u64,
}

impl Default for RestartPolicy {
    fn default() -> RestartPolicy {
        RestartPolicy {
            max_restarts: 5,
            backoff_base: 50_000,
            backoff_factor: 2,
            backoff_max: 1_600_000,
            decay_after: 1_000_000,
        }
    }
}

impl RestartPolicy {
    /// An impatient policy: restart immediately, forever. Used by the
    /// chaos campaign, where the adversarial step generator supplies the
    /// pacing and the interesting property is that every kill–restart
    /// cycle reclaims completely.
    pub fn immediate() -> RestartPolicy {
        RestartPolicy {
            max_restarts: u32::MAX,
            backoff_base: 0,
            backoff_factor: 1,
            backoff_max: 0,
            decay_after: 0,
        }
    }

    /// Backoff before the `n`th restart (1-based):
    /// `min(backoff_base * backoff_factor^(n-1), backoff_max)`.
    pub fn backoff_for(&self, n: u32) -> u64 {
        let mut d = self.backoff_base;
        for _ in 1..n {
            d = d.saturating_mul(self.backoff_factor);
            if d >= self.backoff_max {
                return self.backoff_max;
            }
        }
        d.min(self.backoff_max.max(self.backoff_base))
    }
}

// ----- the supervisor -------------------------------------------------------

/// The original image of one module, retained for one-for-one reinstall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleImage {
    /// Module name.
    pub name: String,
    /// Relocatable object, exactly as first installed.
    pub obj: Object,
    /// Exported function names.
    pub exports: Vec<String>,
}

impl ModuleImage {
    /// Convenience constructor.
    pub fn new(name: &str, obj: Object, exports: &[&str]) -> ModuleImage {
        ModuleImage {
            name: name.to_string(),
            obj,
            exports: exports.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// Lifecycle state of a supervised extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupervisedState {
    /// Healthy and invocable.
    Running,
    /// Its segment died; a restart is scheduled.
    Backoff {
        /// Simulated cycle at which the restart becomes due.
        until: u64,
    },
    /// Permanently retired after exhausting `max_restarts`.
    Tombstoned,
}

/// Errors surfaced by [`Supervisor::invoke`].
#[derive(Debug, Clone, PartialEq)]
pub enum SupervisorError {
    /// The extension is in its backoff window; it becomes restartable at
    /// the given cycle.
    Restarting {
        /// Simulated cycle at which the restart becomes due.
        ready_at: u64,
    },
    /// The extension exhausted its restart budget and is permanently
    /// tombstoned.
    Tombstoned {
        /// Restarts consumed before retirement.
        restarts: u32,
    },
    /// The underlying invocation failed.
    Kext(KextError),
}

impl core::fmt::Display for SupervisorError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SupervisorError::Restarting { ready_at } => {
                write!(f, "extension restarting (ready at cycle {ready_at})")
            }
            SupervisorError::Tombstoned { restarts } => {
                write!(f, "extension tombstoned after {restarts} restarts")
            }
            SupervisorError::Kext(e) => write!(f, "{e}"),
        }
    }
}

/// Identifies one supervised extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisedId(usize);

impl SupervisedId {
    /// Positional index into the supervision table — the checkpoint
    /// identity of the supervised extension.
    pub fn index(self) -> usize {
        self.0
    }

    /// Rebuilds an id from a checkpointed positional index.
    pub fn from_index(index: usize) -> SupervisedId {
        SupervisedId(index)
    }
}

#[derive(Debug, Clone)]
struct SupervisedExt {
    seg: ExtSegmentId,
    pages: u32,
    config: SegmentConfig,
    images: Vec<ModuleImage>,
    state: SupervisedState,
    /// Restarts currently charged (decays under healthy operation).
    restarts: u32,
    /// Cycle of the last healthy event (install or successful invoke),
    /// advanced as decay credit is consumed.
    last_healthy: u64,
    /// Generation of the staged images (bumped by
    /// [`Supervisor::stage_images`] when the content actually changes).
    image_gen: u64,
    /// Generation installed in the running segment. While tombstoned this
    /// instead records the *retired* generation, so staging a different
    /// generation can revive the slot.
    running_gen: u64,
}

/// Drives restart policy over extension segments: detects death, reclaims
/// the dead segment through its ledger, waits out the backoff, reinstalls
/// from the retained images, and tombstones extensions that keep dying.
#[derive(Debug, Clone)]
pub struct Supervisor {
    policy: RestartPolicy,
    exts: Vec<SupervisedExt>,
    /// Completed restarts across all supervised extensions.
    pub restarts: u64,
    /// Extensions permanently tombstoned.
    pub tombstoned: u64,
    /// Kernel pages reclaimed through segment ledgers.
    pub pages_reclaimed: u64,
    /// Asynchronous requests dropped during reclaims.
    pub requests_dropped: u64,
    /// Operator-driven generation switches completed by
    /// [`Supervisor::rollover`].
    pub rollovers: u64,
}

impl Supervisor {
    /// Creates a supervisor with the given restart policy.
    pub fn new(policy: RestartPolicy) -> Supervisor {
        Supervisor {
            policy,
            exts: Vec::new(),
            restarts: 0,
            tombstoned: 0,
            pages_reclaimed: 0,
            requests_dropped: 0,
            rollovers: 0,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> RestartPolicy {
        self.policy
    }

    /// Installs a supervised extension: creates a segment (reusing pooled
    /// descriptors — a supervised restart cycle must not grow the GDT)
    /// and loads every image.
    pub fn install(
        &mut self,
        k: &mut Kernel,
        kx: &mut KernelExtensions,
        pages: u32,
        mut config: SegmentConfig,
        images: Vec<ModuleImage>,
    ) -> Result<SupervisedId, KextError> {
        config.recycle_descriptors = true;
        let seg = self.build(k, kx, pages, config.clone(), &images)?;
        self.exts.push(SupervisedExt {
            seg,
            pages,
            config,
            images,
            state: SupervisedState::Running,
            restarts: 0,
            last_healthy: k.m.cycles(),
            image_gen: 0,
            running_gen: 0,
        });
        Ok(SupervisedId(self.exts.len() - 1))
    }

    fn build(
        &mut self,
        k: &mut Kernel,
        kx: &mut KernelExtensions,
        pages: u32,
        config: SegmentConfig,
        images: &[ModuleImage],
    ) -> Result<ExtSegmentId, KextError> {
        let seg = kx.create_segment_with(k, pages, config)?;
        for img in images {
            let exports: Vec<&str> = img.exports.iter().map(String::as_str).collect();
            if let Err(e) = kx.insmod(k, seg, &img.name, &img.obj, &exports) {
                // A build that fails past segment creation must not strand
                // the partially-built segment: unwind it through the
                // ledger so upgrade churn cannot drift resource audits.
                self.reclaim(k, kx, seg);
                return Err(e);
            }
        }
        Ok(seg)
    }

    /// Reclaims a segment through its ledger, folding the record into the
    /// supervisor's counters.
    fn reclaim(&mut self, k: &mut Kernel, kx: &mut KernelExtensions, seg: ExtSegmentId) {
        let record = kx.reclaim_segment(k, seg);
        self.pages_reclaimed += record
            .page_ranges
            .iter()
            .map(|&(_, pages)| u64::from(pages))
            .sum::<u64>();
        self.requests_dropped += record.requests_dropped as u64;
    }

    /// The extension's current segment (changes across restarts).
    pub fn segment(&self, id: SupervisedId) -> ExtSegmentId {
        self.exts[id.0].seg
    }

    /// The extension's lifecycle state.
    pub fn state(&self, id: SupervisedId) -> SupervisedState {
        self.exts[id.0].state
    }

    /// Restarts currently charged against the extension (decays under
    /// healthy operation).
    pub fn charged_restarts(&self, id: SupervisedId) -> u32 {
        self.exts[id.0].restarts
    }

    /// Advances supervision for one extension at the current simulated
    /// cycle: applies strike/restart decay, performs a due restart
    /// (reclaiming nothing — the dead segment was already reclaimed when
    /// the fault was observed), and returns the resulting state.
    pub fn poll(
        &mut self,
        k: &mut Kernel,
        kx: &mut KernelExtensions,
        id: SupervisedId,
    ) -> SupervisedState {
        let now = k.m.cycles();
        // Strike/restart decay: healthy operation forgives history.
        if self.policy.decay_after > 0 {
            let ext = &mut self.exts[id.0];
            if ext.state == SupervisedState::Running {
                while ext.restarts > 0 && now - ext.last_healthy >= self.policy.decay_after {
                    ext.restarts -= 1;
                    ext.last_healthy += self.policy.decay_after;
                    kx.decay_strike(ext.seg);
                }
            }
        }
        if let SupervisedState::Backoff { until } = self.exts[id.0].state {
            if now >= until {
                self.try_restart(k, kx, id);
            }
        }
        self.exts[id.0].state
    }

    fn try_restart(&mut self, k: &mut Kernel, kx: &mut KernelExtensions, id: SupervisedId) {
        let (pages, config) = (self.exts[id.0].pages, self.exts[id.0].config.clone());
        let images = std::mem::take(&mut self.exts[id.0].images);
        let built = self.build(k, kx, pages, config, &images);
        self.exts[id.0].images = images;
        match built {
            Ok(seg) => {
                let now = k.m.cycles();
                let ext = &mut self.exts[id.0];
                ext.seg = seg;
                ext.state = SupervisedState::Running;
                ext.last_healthy = now;
                if ext.running_gen != ext.image_gen {
                    // The restart promoted a staged generation: the new
                    // lineage starts with a clean record instead of
                    // inheriting the replaced image's charged restarts
                    // (the strikes belonged to the *old* version).
                    ext.restarts = 0;
                    ext.running_gen = ext.image_gen;
                }
                self.restarts += 1;
            }
            Err(KextError::Verify(_) | KextError::Link(_)) => {
                // A module image that no longer decodes, links or
                // verifies is deterministically broken: retrying cannot
                // help, so tombstone immediately instead of burning
                // restart strikes through the backoff ladder.
                let ext = &mut self.exts[id.0];
                ext.state = SupervisedState::Tombstoned;
                // Record the staged generation as the retired lineage:
                // only staging a *different* generation can revive it.
                ext.running_gen = ext.image_gen;
                self.tombstoned += 1;
            }
            Err(_) => {
                // The reinstall itself failed (e.g. transient memory
                // pressure): charge it like a death and back off again.
                self.schedule_restart(k, kx, id, false);
            }
        }
    }

    fn schedule_restart(
        &mut self,
        k: &mut Kernel,
        kx: &mut KernelExtensions,
        id: SupervisedId,
        reclaim: bool,
    ) {
        if reclaim {
            self.reclaim(k, kx, self.exts[id.0].seg);
        }
        let ext = &mut self.exts[id.0];
        ext.restarts += 1;
        if ext.restarts > self.policy.max_restarts {
            ext.state = SupervisedState::Tombstoned;
            // The lineage that exhausted the budget is whatever is staged
            // right now; staging a different generation revives the slot.
            ext.running_gen = ext.image_gen;
            self.tombstoned += 1;
        } else {
            let delay = self.policy.backoff_for(ext.restarts);
            ext.state = SupervisedState::Backoff {
                until: k.m.cycles() + delay,
            };
        }
    }

    /// Invokes a function on the supervised extension, driving the full
    /// lifecycle: due restarts are performed first; a death observed
    /// during the call reclaims the segment through its ledger and
    /// schedules the restart (or tombstones the extension).
    pub fn invoke(
        &mut self,
        k: &mut Kernel,
        kx: &mut KernelExtensions,
        id: SupervisedId,
        func: &str,
        arg: u32,
    ) -> Result<u32, SupervisorError> {
        match self.poll(k, kx, id) {
            SupervisedState::Tombstoned => Err(SupervisorError::Tombstoned {
                restarts: self.exts[id.0].restarts,
            }),
            SupervisedState::Backoff { until } => {
                Err(SupervisorError::Restarting { ready_at: until })
            }
            SupervisedState::Running => {
                let seg = self.exts[id.0].seg;
                match kx.invoke(k, seg, func, arg) {
                    Ok(v) => {
                        self.exts[id.0].last_healthy = k.m.cycles();
                        Ok(v)
                    }
                    Err(e) => {
                        if kx.segment(seg).dead {
                            self.schedule_restart(k, kx, id, true);
                        }
                        Err(SupervisorError::Kext(e))
                    }
                }
            }
        }
    }

    /// Replaces the retained module images used for future reinstalls (a
    /// staged upgrade): the running segment is untouched; the next
    /// restart — or an explicit [`rollover`](Self::rollover) — loads the
    /// new images instead of the originals. The staged images must still
    /// pass the segment's admission policy at reinstall time — a
    /// replacement that fails to decode, link or verify tombstones the
    /// extension at that restart instead of burning through the backoff
    /// ladder.
    ///
    /// Each *content change* starts a new image generation (staging
    /// byte-identical images is a no-op, so a repeated rollback converges
    /// instead of churning). A new generation also revives a tombstoned
    /// slot: the tombstone retired one image lineage, not the extension's
    /// identity, so rolling back to a different (e.g. last-known-good)
    /// version schedules an immediately-due restart with a clean strike
    /// record.
    pub fn stage_images(&mut self, id: SupervisedId, images: Vec<ModuleImage>) {
        let ext = &mut self.exts[id.0];
        if ext.images == images {
            return;
        }
        ext.images = images;
        ext.image_gen += 1;
        if ext.state == SupervisedState::Tombstoned {
            ext.state = SupervisedState::Backoff { until: 0 };
            ext.restarts = 0;
        }
    }

    /// Generation of the currently staged images (bumped per
    /// [`stage_images`](Self::stage_images) content change).
    pub fn staged_generation(&self, id: SupervisedId) -> u64 {
        self.exts[id.0].image_gen
    }

    /// Generation installed in the running segment (for a tombstoned
    /// extension: the retired lineage).
    pub fn running_generation(&self, id: SupervisedId) -> u64 {
        self.exts[id.0].running_gen
    }

    /// Operator-driven generation switch: makes the staged images the
    /// running ones *now*, without waiting for the extension to die.
    ///
    /// A rollover is not a fault — the running segment is reclaimed
    /// gracefully through its ledger (in-flight asynchronous requests are
    /// dropped with structured errors and counted), no restart strike is
    /// charged, and no backoff is imposed. If the extension is already
    /// running the staged generation this is a no-op, which makes a
    /// double rollback idempotent. A tombstoned slot whose staged
    /// generation differs from the retired lineage is revived; one whose
    /// staged generation *is* the retired lineage stays tombstoned.
    ///
    /// The staged images still face the admission policy: a generation
    /// that fails to decode, link or verify tombstones the slot (the
    /// old segment is already gone), and any other build failure charges
    /// a restart and backs off as usual.
    pub fn rollover(
        &mut self,
        k: &mut Kernel,
        kx: &mut KernelExtensions,
        id: SupervisedId,
    ) -> Result<SupervisedState, KextError> {
        match self.exts[id.0].state {
            SupervisedState::Running
                if self.exts[id.0].running_gen == self.exts[id.0].image_gen =>
            {
                return Ok(SupervisedState::Running);
            }
            SupervisedState::Tombstoned => {
                return Ok(SupervisedState::Tombstoned);
            }
            SupervisedState::Running => {
                self.reclaim(k, kx, self.exts[id.0].seg);
            }
            // Backoff: the dead segment was already reclaimed when the
            // death was observed; the rollover just skips the wait.
            SupervisedState::Backoff { .. } => {}
        }

        let (pages, config) = (self.exts[id.0].pages, self.exts[id.0].config.clone());
        let images = std::mem::take(&mut self.exts[id.0].images);
        let built = self.build(k, kx, pages, config, &images);
        self.exts[id.0].images = images;
        match built {
            Ok(seg) => {
                let now = k.m.cycles();
                let ext = &mut self.exts[id.0];
                ext.seg = seg;
                ext.state = SupervisedState::Running;
                ext.last_healthy = now;
                ext.restarts = 0;
                ext.running_gen = ext.image_gen;
                self.rollovers += 1;
                Ok(SupervisedState::Running)
            }
            Err(e @ (KextError::Verify(_) | KextError::Link(_))) => {
                let ext = &mut self.exts[id.0];
                ext.state = SupervisedState::Tombstoned;
                ext.running_gen = ext.image_gen;
                self.tombstoned += 1;
                Err(e)
            }
            Err(e) => {
                self.schedule_restart(k, kx, id, false);
                Err(e)
            }
        }
    }

    /// Notifies the supervisor that the extension's segment died outside
    /// one of its own invocations (e.g. the owner quarantined it, or a
    /// drain surfaced the death). Reclaims and schedules the restart.
    pub fn notify_death(&mut self, k: &mut Kernel, kx: &mut KernelExtensions, id: SupervisedId) {
        if self.exts[id.0].state == SupervisedState::Running && kx.segment(self.exts[id.0].seg).dead
        {
            self.schedule_restart(k, kx, id, true);
        }
    }
}

impl Supervisor {
    // ----- durable checkpoints ----------------------------------------------

    /// Serializes the restart policy, the fleet-visible counters and every
    /// supervised extension — including the retained module images a
    /// restart would reinstall from — into `e`.
    pub fn save_into(&self, e: &mut Enc) {
        e.u32(self.policy.max_restarts);
        e.u64(self.policy.backoff_base);
        e.u64(self.policy.backoff_factor);
        e.u64(self.policy.backoff_max);
        e.u64(self.policy.decay_after);
        e.u64(self.restarts);
        e.u64(self.tombstoned);
        e.u64(self.pages_reclaimed);
        e.u64(self.requests_dropped);
        e.u64(self.rollovers);
        e.u32(self.exts.len() as u32);
        for x in &self.exts {
            e.u32(x.seg.index() as u32);
            e.u32(x.pages);
            put_segment_config(e, &x.config);
            e.u32(x.images.len() as u32);
            for img in &x.images {
                e.str(&img.name);
                ckpt::put_object(e, &img.obj);
                ckpt::put_str_vec(e, &img.exports);
            }
            match x.state {
                SupervisedState::Running => e.u8(0),
                SupervisedState::Backoff { until } => {
                    e.u8(1);
                    e.u64(until);
                }
                SupervisedState::Tombstoned => e.u8(2),
            }
            e.u32(x.restarts);
            e.u64(x.last_healthy);
            e.u64(x.image_gen);
            e.u64(x.running_gen);
        }
    }

    /// Rebuilds a supervisor from [`save_into`](Self::save_into) bytes.
    /// Segment ids are positional; restore alongside the
    /// [`KernelExtensions`] table saved at the same instant.
    pub fn restore_from(d: &mut Dec) -> Result<Supervisor, RestoreError> {
        let policy = RestartPolicy {
            max_restarts: d.u32()?,
            backoff_base: d.u64()?,
            backoff_factor: d.u64()?,
            backoff_max: d.u64()?,
            decay_after: d.u64()?,
        };
        let restarts = d.u64()?;
        let tombstoned = d.u64()?;
        let pages_reclaimed = d.u64()?;
        let requests_dropped = d.u64()?;
        let rollovers = d.u64()?;
        let nexts = d.u32()?;
        let mut exts = Vec::with_capacity(nexts as usize);
        for _ in 0..nexts {
            let seg = ExtSegmentId::from_index(d.u32()? as usize);
            let pages = d.u32()?;
            let config = get_segment_config(d)?;
            let nimages = d.u32()?;
            let mut images = Vec::with_capacity(nimages as usize);
            for _ in 0..nimages {
                let name = d.str()?;
                let obj = ckpt::get_object(d)?;
                let exports = ckpt::get_str_vec(d)?;
                images.push(ModuleImage { name, obj, exports });
            }
            let state = match d.u8()? {
                0 => SupervisedState::Running,
                1 => SupervisedState::Backoff { until: d.u64()? },
                2 => SupervisedState::Tombstoned,
                _ => return Err(d.fail("bad supervised state tag")),
            };
            exts.push(SupervisedExt {
                seg,
                pages,
                config,
                images,
                state,
                restarts: d.u32()?,
                last_healthy: d.u64()?,
                image_gen: d.u64()?,
                running_gen: d.u64()?,
            });
        }
        Ok(Supervisor {
            policy,
            exts,
            restarts,
            tombstoned,
            pages_reclaimed,
            requests_dropped,
            rollovers,
        })
    }
}
