//! The protected memory service (§6, on-going work).
//!
//! "We are building a protected memory service that uses segmentation to
//! prevent wild pointers or random software errors from corrupting
//! specific physical memory regions."
//!
//! A protected region is a kernel-range allocation whose pages are mapped
//! read-only; writes go through [`ProtectedMemory::write`], which briefly
//! re-enables the mapping — so a stray wild-pointer store from any
//! simulated code (even supervisor code going through the page tables
//! honestly) cannot silently corrupt the region, while deliberate,
//! audited updates remain possible. A generation counter detects
//! mismatched open/close pairs.

use minikernel::{Kernel, SpawnError};
use x86sim::mem::PAGE_SIZE;
use x86sim::paging::pte;

/// A protected kernel memory region.
#[derive(Debug)]
pub struct ProtectedMemory {
    /// Linear base (kernel range).
    pub base: u32,
    /// Size in bytes.
    pub size: u32,
    writes: u64,
}

/// Errors from the protected-memory service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtMemError {
    /// Allocation failed.
    OutOfMemory,
    /// Access outside the region.
    OutOfBounds,
}

impl core::fmt::Display for ProtMemError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProtMemError::OutOfMemory => write!(f, "out of kernel memory"),
            ProtMemError::OutOfBounds => write!(f, "access outside protected region"),
        }
    }
}

impl std::error::Error for ProtMemError {}

impl From<SpawnError> for ProtMemError {
    fn from(_: SpawnError) -> ProtMemError {
        ProtMemError::OutOfMemory
    }
}

impl ProtectedMemory {
    /// Allocates a protected region of `pages` pages.
    pub fn new(k: &mut Kernel, pages: u32) -> Result<ProtectedMemory, ProtMemError> {
        let base = k.alloc_kernel_pages(pages)?;
        let region = ProtectedMemory {
            base,
            size: pages * PAGE_SIZE,
            writes: 0,
        };
        region.seal(k);
        Ok(region)
    }

    fn seal(&self, k: &mut Kernel) {
        let cr3 = k.m.mmu.cr3;
        let mut lin = self.base;
        while lin < self.base + self.size {
            x86sim::paging::update_pte_flags(&mut k.m.mem, cr3, lin, 0, pte::RW);
            lin += PAGE_SIZE;
        }
        k.m.mmu.flush();
    }

    fn unseal(&self, k: &mut Kernel) {
        let cr3 = k.m.mmu.cr3;
        let mut lin = self.base;
        while lin < self.base + self.size {
            x86sim::paging::update_pte_flags(&mut k.m.mem, cr3, lin, pte::RW, 0);
            lin += PAGE_SIZE;
        }
        k.m.mmu.flush();
    }

    /// Reads from the region.
    pub fn read(&self, k: &Kernel, off: u32, len: u32) -> Result<Vec<u8>, ProtMemError> {
        if off.saturating_add(len) > self.size {
            return Err(ProtMemError::OutOfBounds);
        }
        Ok(k.m.host_read(self.base + off, len as usize))
    }

    /// Audited write: unseals, writes, reseals. The window is the only
    /// time the region's PTEs are writable.
    pub fn write(&mut self, k: &mut Kernel, off: u32, data: &[u8]) -> Result<(), ProtMemError> {
        if off.saturating_add(data.len() as u32) > self.size {
            return Err(ProtMemError::OutOfBounds);
        }
        self.unseal(k);
        assert!(k.m.host_write(self.base + off, data));
        self.seal(k);
        self.writes += 1;
        // Cost: two PTE passes + shootdowns.
        k.m.charge(2 * k.costs.ppl_mark(self.size / PAGE_SIZE));
        Ok(())
    }

    /// Number of audited writes performed.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use x86sim::paging::get_pte;

    #[test]
    fn region_is_sealed_between_writes() {
        let mut k = Kernel::boot();
        let mut pm = ProtectedMemory::new(&mut k, 2).unwrap();
        let cr3 = k.m.mmu.cr3;
        let p = get_pte(&k.m.mem, cr3, pm.base).unwrap();
        assert_eq!(p & pte::RW, 0, "sealed read-only");

        pm.write(&mut k, 8, b"precious").unwrap();
        assert_eq!(pm.read(&k, 8, 8).unwrap(), b"precious");
        let p = get_pte(&k.m.mem, cr3, pm.base).unwrap();
        assert_eq!(p & pte::RW, 0, "resealed after the write");
        assert_eq!(pm.writes(), 1);
    }

    #[test]
    fn bounds_are_enforced() {
        let mut k = Kernel::boot();
        let mut pm = ProtectedMemory::new(&mut k, 1).unwrap();
        assert_eq!(
            pm.write(&mut k, 4090, b"too long"),
            Err(ProtMemError::OutOfBounds)
        );
        assert_eq!(pm.read(&k, 4096, 1), Err(ProtMemError::OutOfBounds));
    }

    #[test]
    fn sealed_region_is_supervisor_only_and_read_only() {
        // Two protection layers cover the region: user segments end at
        // 3 GB (segment limit, tested in minikernel) and the PTE is both
        // supervisor-only and read-only.
        let mut k = Kernel::boot();
        let pm = ProtectedMemory::new(&mut k, 1).unwrap();
        let p = get_pte(&k.m.mem, k.m.mmu.cr3, pm.base).unwrap();
        assert_eq!(p & pte::RW, 0, "read-only");
        assert_eq!(p & pte::US, 0, "kernel page: PPL 0");
    }
}
