//! `segdb` — the segmentation-aware debugger sketched in §6.
//!
//! "Better programming tools for extensions programming are needed, in
//! particular, segmentation-aware debuggers..."
//!
//! Ordinary debuggers assume one flat protection domain; when an
//! extensible application traps, the interesting question is *which
//! domain* each instruction ran in. `SegDb` symbolizes a machine
//! [`x86sim::Trace`] against the loader's symbol maps and labels
//! every record with its privilege level, producing an annotated
//! disassembly and a per-domain cycle profile of the Figure 6 round trip.

use std::collections::BTreeMap;

use asm86::disasm::format_insn;
use x86sim::trace::{Trace, TraceRecord};

/// A named code region with its symbols.
#[derive(Debug, Clone)]
pub struct Region {
    /// Module name (e.g. `ext:reverse`, `app`, `trampoline`).
    pub name: String,
    /// Inclusive start address.
    pub base: u32,
    /// Exclusive end address.
    pub end: u32,
    /// Symbol table: address → name.
    symbols: BTreeMap<u32, String>,
    /// Whether the region's code carries a load-time `Verified`
    /// attestation (the static verifier admitted it).
    pub verified: bool,
}

/// The debugger: a set of regions plus formatting.
#[derive(Debug, Default)]
pub struct SegDb {
    regions: Vec<Region>,
}

impl SegDb {
    /// An empty symbol database.
    pub fn new() -> SegDb {
        SegDb::default()
    }

    /// Registers a region with its symbols (absolute addresses).
    pub fn add_region(
        &mut self,
        name: &str,
        base: u32,
        end: u32,
        symbols: impl IntoIterator<Item = (String, u32)>,
    ) {
        let symbols = symbols.into_iter().map(|(s, a)| (a, s)).collect();
        self.regions.push(Region {
            name: name.to_string(),
            base,
            end,
            symbols,
            verified: false,
        });
    }

    /// Marks a registered region as statically verified; its domain
    /// headers in [`format_trace`](Self::format_trace) gain a
    /// `(verified)` tag so a debugging session shows at a glance which
    /// code the loader proved safe versus merely contained.
    pub fn mark_verified(&mut self, name: &str) {
        for r in &mut self.regions {
            if r.name == name {
                r.verified = true;
            }
        }
    }

    fn region_of(&self, addr: u32) -> Option<&Region> {
        self.regions.iter().find(|r| addr >= r.base && addr < r.end)
    }

    /// Symbolizes an address as `module!symbol+offset` (or `module+off`,
    /// or raw hex when unknown).
    pub fn symbolize(&self, addr: u32) -> String {
        for r in &self.regions {
            if addr < r.base || addr >= r.end {
                continue;
            }
            // Nearest symbol at or below the address.
            if let Some((sym_addr, name)) = r.symbols.range(..=addr).next_back() {
                let off = addr - sym_addr;
                return if off == 0 {
                    format!("{}!{}", r.name, name)
                } else {
                    format!("{}!{}+{:#x}", r.name, name, off)
                };
            }
            return format!("{}+{:#x}", r.name, addr - r.base);
        }
        format!("{addr:#010x}")
    }

    /// The privilege-domain label the paper uses for each ring.
    pub fn domain(cpl: u8) -> &'static str {
        match cpl {
            0 => "SPL0/kernel",
            1 => "SPL1/kext",
            2 => "SPL2/app",
            _ => "SPL3/ext",
        }
    }

    /// Formats a trace as annotated, domain-labelled disassembly.
    pub fn format_trace(&self, trace: &Trace) -> String {
        let mut out = String::new();
        let mut last_cpl = u8::MAX;
        for r in trace.records() {
            if r.cpl != last_cpl {
                let verified = if self.region_of(r.eip).is_some_and(|reg| reg.verified) {
                    " (verified)"
                } else {
                    ""
                };
                out.push_str(&format!(
                    "---- {}{} (CS={:#06x}) ----\n",
                    Self::domain(r.cpl),
                    verified,
                    r.cs
                ));
                last_cpl = r.cpl;
            }
            out.push_str(&format!(
                "  {:>28}  {}\n",
                self.symbolize(r.eip),
                format_insn(&r.insn)
            ));
        }
        out
    }

    /// Cycles spent per privilege level across the trace (the cost of
    /// each side of a protection-domain crossing).
    pub fn domain_profile(trace: &Trace) -> BTreeMap<u8, u64> {
        let mut profile = BTreeMap::new();
        let mut prev_cycles = None;
        for r in trace.records() {
            let delta = match prev_cycles {
                Some(p) => r.cycles - p,
                None => 0,
            };
            *profile.entry(r.cpl).or_insert(0) += delta;
            prev_cycles = Some(r.cycles);
        }
        profile
    }

    /// Counts protection-domain crossings (CPL changes) in the trace.
    pub fn crossings(trace: &Trace) -> u32 {
        let recs = trace.records();
        recs.windows(2).filter(|w| w[0].cpl != w[1].cpl).count() as u32
    }
}

/// Convenience: returns a [`TraceRecord`] iterator filtered to one domain.
pub fn in_domain(trace: &Trace, cpl: u8) -> Vec<TraceRecord> {
    trace
        .records()
        .into_iter()
        .filter(|r| r.cpl == cpl)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::user_ext::{DlopenOptions, ExtensibleApp};
    use asm86::Assembler;
    use minikernel::Kernel;

    #[test]
    fn symbolization_picks_nearest_symbol() {
        let mut db = SegDb::new();
        db.add_region(
            "ext:demo",
            0x4000_0000,
            0x4000_1000,
            vec![
                ("entry".to_string(), 0x4000_0000),
                ("helper".to_string(), 0x4000_0020),
            ],
        );
        assert_eq!(db.symbolize(0x4000_0000), "ext:demo!entry");
        assert_eq!(db.symbolize(0x4000_0005), "ext:demo!entry+0x5");
        assert_eq!(db.symbolize(0x4000_0024), "ext:demo!helper+0x4");
        assert_eq!(db.symbolize(0x5000_0000), "0x50000000");
    }

    #[test]
    fn protected_call_trace_shows_both_domains_and_two_crossings() {
        let mut k = Kernel::boot();
        let mut app = ExtensibleApp::new(&mut k).unwrap();
        let ext = Assembler::assemble("f:\nmov eax, [esp+4]\nadd eax, 1\nret\n").unwrap();
        let h = app.dlopen(&mut k, &ext, &DlopenOptions::new()).unwrap();
        let prep = app.seg_dlsym(&mut k, h, "f").unwrap();
        app.call_extension(&mut k, prep, 0).unwrap(); // warm

        k.m.enable_trace(256);
        assert_eq!(app.call_extension(&mut k, prep, 41).unwrap(), 42);
        let trace = k.m.disable_trace().unwrap();

        // The Figure 6 round trip: SPL 2 -> SPL 3 -> SPL 2 = exactly two
        // crossings, as the paper contrasts with L4's four.
        assert_eq!(SegDb::crossings(&trace), 2);
        let profile = SegDb::domain_profile(&trace);
        assert!(profile[&2] > 0, "cycles at SPL 2");
        assert!(profile[&3] > 0, "cycles at SPL 3");
        assert!(!profile.contains_key(&0), "the kernel never ran guest code");

        // Annotated output names the extension function.
        let mut db = SegDb::new();
        let f_addr = app.dlsym(h, "f").unwrap();
        db.add_region(
            "ext:f",
            f_addr,
            f_addr + 64,
            vec![("f".to_string(), f_addr)],
        );
        let text = db.format_trace(&trace);
        assert!(text.contains("SPL3/ext"), "{text}");
        assert!(text.contains("SPL2/app"));
        assert!(text.contains("ext:f!f"));
    }

    #[test]
    fn verified_region_header_carries_annotation() {
        let mut k = Kernel::boot();
        let mut app = ExtensibleApp::new(&mut k).unwrap();
        let ext = Assembler::assemble("f:\nmov eax, [esp+4]\nadd eax, 1\nret\n").unwrap();
        let h = app
            .dlopen(&mut k, &ext, &DlopenOptions::new().verify(&["f"]))
            .unwrap();
        let prep = app.seg_dlsym(&mut k, h, "f").unwrap();
        app.call_extension(&mut k, prep, 0).unwrap(); // warm

        k.m.enable_trace(256);
        assert_eq!(app.call_extension(&mut k, prep, 6).unwrap(), 7);
        let trace = k.m.disable_trace().unwrap();

        let mut db = SegDb::new();
        let f_addr = app.dlsym(h, "f").unwrap();
        db.add_region(
            "ext:f",
            f_addr,
            f_addr + 64,
            vec![("f".to_string(), f_addr)],
        );
        // The SPL 3 entry trampoline (where the crossing lands) lives in
        // the same loaded extension; register it under the same name so
        // the domain header resolves to the extension's region.
        let tramp = in_domain(&trace, 3)[0].eip;
        db.add_region("ext:f", tramp, tramp + 32, vec![]);

        // Before the mark, the domain header is plain.
        let plain = db.format_trace(&trace);
        assert!(plain.contains("SPL3/ext (CS="), "{plain}");
        assert!(!plain.contains("(verified)"), "{plain}");

        // After the mark, only the extension's header gains the tag; the
        // application's own domain (no attestation) stays plain.
        db.mark_verified("ext:f");
        let text = db.format_trace(&trace);
        assert!(text.contains("SPL3/ext (verified) (CS="), "{text}");
        assert!(!text.contains("SPL2/app (verified)"), "{text}");
    }

    #[test]
    fn domain_filter() {
        let mut k = Kernel::boot();
        let mut app = ExtensibleApp::new(&mut k).unwrap();
        let ext = Assembler::assemble("f:\nret\n").unwrap();
        let h = app.dlopen(&mut k, &ext, &DlopenOptions::new()).unwrap();
        let prep = app.seg_dlsym(&mut k, h, "f").unwrap();
        app.call_extension(&mut k, prep, 0).unwrap();
        k.m.enable_trace(128);
        app.call_extension(&mut k, prep, 0).unwrap();
        let trace = k.m.disable_trace().unwrap();
        // SPL 3 executed exactly: Transfer's call, the ret, the lcall.
        let ext_insns = in_domain(&trace, 3);
        assert_eq!(ext_insns.len(), 3, "{ext_insns:?}");
    }
}
