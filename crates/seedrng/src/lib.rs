//! A tiny, dependency-free, deterministic pseudo-random number generator.
//!
//! The workspace builds offline, so it cannot depend on the `rand` crate;
//! every randomized workload (packet traffic synthesis, web benchmark
//! jitter, the chaos fault-injection campaigns and the seeded property
//! tests) draws from this generator instead. Determinism is a feature:
//! the same seed must always yield the same stream so chaos campaigns
//! are replayable bit-for-bit.
//!
//! The core is SplitMix64 (Steele, Lea & Flood, OOPSLA '14): a 64-bit
//! counter stepped by a Weyl constant and scrambled by two xor-shift
//! multiplies. It passes BigCrush, is trivially seedable from any u64
//! (including 0), and every step is a handful of arithmetic ops.

/// Deterministic 64-bit generator. `Clone` gives cheap stream forks;
/// two clones produce identical streams.
#[derive(Debug, Clone)]
pub struct SeedRng {
    state: u64,
}

impl SeedRng {
    /// Creates a generator; any seed (including 0) is fine.
    pub fn new(seed: u64) -> SeedRng {
        SeedRng { state: seed }
    }

    /// The raw generator state. Together with [`new`](Self::new) (which
    /// installs a state verbatim) this makes the generator checkpointable:
    /// `SeedRng::new(r.state())` continues exactly where `r` left off.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32-bit output (upper half of the 64-bit stream, which has the
    /// better-mixed bits).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[lo, hi)`. Empty ranges return `lo`.
    ///
    /// Uses multiply-shift range reduction; the modulo bias is below
    /// 2^-32 for any range that fits in a u32, which is far below what
    /// any test or campaign here can observe.
    pub fn gen_range(&mut self, lo: u32, hi: u32) -> u32 {
        if hi <= lo {
            return lo;
        }
        let span = (hi - lo) as u64;
        lo + ((self.next_u64() >> 32).wrapping_mul(span) >> 32) as u32
    }

    /// Uniform value in `[lo, hi)` over u64. Empty ranges return `lo`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        let span = hi - lo;
        lo + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// `true` with probability `p` (clamped to [0, 1]).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Fills a buffer with pseudo-random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let b = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&b[..chunk.len()]);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.gen_range(0, items.len() as u32) as usize]
    }

    /// Forks an independent generator whose stream is decorrelated from
    /// the parent's continuation (uses one parent draw as the child seed).
    pub fn fork(&mut self) -> SeedRng {
        SeedRng::new(self.next_u64())
    }

    /// Derives the generator for shard `shard` of a sharded computation
    /// seeded by `master`.
    ///
    /// Unlike [`fork`](Self::fork), the derivation is *positional*: shard
    /// `i`'s stream depends only on `(master, i)`, never on how many
    /// draws any other shard makes. That is what makes sharded execution
    /// mergeable deterministically — a worker pool can run shards in any
    /// order, on any number of threads, and every shard still sees
    /// exactly the stream it would have seen serially.
    ///
    /// Each component passes through its own SplitMix64 scramble before
    /// they are combined, so nearby `(master, shard)` pairs land far
    /// apart in seed space.
    pub fn stream(master: u64, shard: u64) -> SeedRng {
        let a = SeedRng::new(master).next_u64();
        let b = SeedRng::new(shard.wrapping_mul(0xA076_1D64_78BD_642F)).next_u64();
        SeedRng::new(a ^ b.rotate_left(17))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeedRng::new(42);
        let mut b = SeedRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SeedRng::new(1);
        let mut b = SeedRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = SeedRng::new(0);
        let v: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert!(v.iter().any(|&x| x != 0));
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SeedRng::new(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10, 20);
            assert!((10..20).contains(&v));
        }
        assert_eq!(r.gen_range(5, 5), 5);
        assert_eq!(r.gen_range(9, 3), 9);
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut r = SeedRng::new(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0, 8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SeedRng::new(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        let mut r = SeedRng::new(12);
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
    }

    #[test]
    fn fill_bytes_fills_exactly() {
        let mut r = SeedRng::new(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn fork_decorrelates() {
        let mut parent = SeedRng::new(9);
        let mut child = parent.fork();
        let a = parent.next_u64();
        let b = child.next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn stream_is_positional_and_decorrelated() {
        // Same (master, shard) ⇒ same stream, independent of anything else.
        let mut a = SeedRng::stream(42, 3);
        let mut b = SeedRng::stream(42, 3);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Different shards of one master never collide on a 64-draw
        // prefix, and neither do different masters of one shard.
        let mut streams: Vec<SeedRng> = (0..16).map(|s| SeedRng::stream(7, s)).collect();
        streams.extend((0..16).map(|m| SeedRng::stream(m, 0)));
        let prefixes: Vec<Vec<u64>> = streams
            .iter_mut()
            .map(|r| (0..64).map(|_| r.next_u64()).collect())
            .collect();
        for i in 0..prefixes.len() {
            for j in i + 1..prefixes.len() {
                if i == 0 && j == 23 {
                    continue; // stream(7, 0) appears in both batches
                }
                let same = prefixes[i]
                    .iter()
                    .zip(&prefixes[j])
                    .filter(|(a, b)| a == b)
                    .count();
                assert!(same <= 1, "streams {i} and {j} overlap in {same} draws");
            }
        }
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut r = SeedRng::new(99);
        for _ in 0..10 {
            r.next_u64();
        }
        let mut resumed = SeedRng::new(r.state());
        for _ in 0..100 {
            assert_eq!(r.next_u64(), resumed.next_u64());
        }
    }

    #[test]
    fn known_vector() {
        // Pin the stream so an accidental algorithm change shows up: the
        // first SplitMix64 output for seed 0 is a published reference value.
        let mut r = SeedRng::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
    }
}
