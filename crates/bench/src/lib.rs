//! `bench` — harnesses that regenerate every table and figure of the
//! paper's evaluation (§5).
//!
//! Each `measure_*` function returns structured results; the `table1`,
//! `table2`, `table3`, `figure7` and `micro` binaries print them in the
//! paper's format, and the Criterion-style benches exercise the same
//! paths.

use std::collections::BTreeMap;

use asm86::encode::encode_program;
use asm86::isa::{Insn, Mem, Reg, Src};
use asm86::Assembler;
use baselines::ipc;
use baselines::rpc::RpcCosts;
use minikernel::Kernel;
use netfilter::{extended_conjunction, paper_conjunction, reference_packet, FilterBench};
use palladium::trampoline::{self, PrepareParams, SaveSlots};
use palladium::user_ext::{DlopenOptions, ExtensibleApp};
use palladium::{KernelExtensions, SegmentConfig};
use webserver::{run_ab, AbConfig, ExecModel, WebServer};
use x86sim::cycles::{self, cycles_to_us, documented_cost, documented_event, Event};

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Component name.
    pub name: &'static str,
    /// Measured protected-call cycles (Inter).
    pub inter: u64,
    /// Measured unprotected-call cycles (Intra).
    pub intra: u64,
    /// Architecture-manual cycles (Hardware).
    pub hardware: f64,
}

/// Table 1: the protected-call cost breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// The four component rows.
    pub rows: Vec<Table1Row>,
}

impl Table1 {
    /// Column totals (inter, intra, hardware).
    pub fn totals(&self) -> (u64, u64, f64) {
        self.rows.iter().fold((0, 0, 0.0), |acc, r| {
            (acc.0 + r.inter, acc.1 + r.intra, acc.2 + r.hardware)
        })
    }
}

const PHASE_NAMES: [&str; 4] = [
    "Setting up stack",
    "Calling function",
    "Returning to caller",
    "Restoring state",
];

/// Byte length of the encoded `Prepare` body (everything before the
/// `lret`).
fn prepare_body_len() -> u32 {
    let params = PrepareParams {
        slots: SaveSlots {
            sp_slot: 0,
            bp_slot: 0,
        },
        arg_slot: 0,
        ext_esp_slot: 0,
        stack_sel: 0,
        code_sel: 0,
        transfer: 0,
    };
    let code = trampoline::prepare(params);
    encode_program(&code[..code.len() - 1]).len() as u32
}

/// Measures the protected-call phases by stepping the simulated CPU
/// through one warm Figure 6 round trip and attributing each
/// instruction's cycles to its phase by EIP.
fn measure_inter_phases() -> [u64; 4] {
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).expect("app");
    let null = Assembler::assemble("null_fn:\nret\n").unwrap();
    let h = app
        .dlopen(&mut k, &null, &DlopenOptions::new())
        .expect("dlopen");
    let prep = app.seg_dlsym(&mut k, h, "null_fn").expect("dlsym");
    // Warm the TLB and caches.
    app.call_extension(&mut k, prep, 0).expect("warm call");

    let (prep_addr, transfer) = app.trampoline_addrs(h, "null_fn").unwrap();
    let gate = app.app_callgate_addr();
    let ext_fn = app.dlsym(h, "null_fn").unwrap();
    let lret_addr = prep_addr + prepare_body_len();

    // A dedicated call site with a *direct* call, exactly like the
    // compiler-generated call the paper times (the generic invoke stub
    // calls through a register, one cycle dearer).
    let site = Assembler::assemble(
        "site:
         push eax
         call prepare
         stop:
         jmp stop
",
    )
    .unwrap();
    let mut externs = BTreeMap::new();
    externs.insert("prepare".to_string(), prep);
    let syms = app
        .install_app_code_linked(&mut k, &site, &externs)
        .expect("install call site");
    let stub = syms["site"];
    let stub_after_call = syms["stop"];
    // Transfer layout: call rel32 (5) then lcall.
    let transfer_lcall = transfer + 5;

    k.switch_to(app.tid);
    k.m.cpu.set_reg(Reg::Eax, 0);
    k.m.cpu.eip = stub;

    let mut phases = [0u64; 4];
    for _ in 0..200 {
        let eip = k.m.cpu.eip;
        if eip == stub_after_call {
            return phases;
        }
        let phase =
            if (stub..stub_after_call).contains(&eip) || (prep_addr..lret_addr).contains(&eip) {
                0 // caller's push + call, then the Prepare body
            } else if eip == lret_addr || eip == transfer {
                1 // the lret into the extension segment + Transfer's local call
            } else if eip == ext_fn || eip == transfer_lcall {
                2 // the extension function's ret / the lcall through the gate
            } else if (gate..gate + 64).contains(&eip) {
                3 // AppCallGate
            } else {
                panic!("unexpected EIP {eip:#x} during protected call");
            };
        let before = k.m.cycles();
        assert!(k.m.step().is_none(), "protected call must not exit");
        phases[phase] += k.m.cycles() - before;
    }
    panic!("protected call did not complete");
}

/// Measures the unprotected-call phases on a flat machine.
fn measure_intra_phases() -> [u64; 4] {
    use x86sim::desc::{Descriptor, Selector};
    use x86sim::machine::{Exit, Machine};

    let src = "\
caller:
    push eax        ; argument
    call f
    pop ecx         ; caller cleanup
    hlt
f:
    push ebp        ; prologue
    pop ebp         ; epilogue
    ret
";
    let obj = Assembler::assemble(src).unwrap();
    let image = obj.link(0x1000, &BTreeMap::new()).unwrap();
    let mut m = Machine::new();
    let c = m.gdt.push(Descriptor::flat_code(0));
    let d = m.gdt.push(Descriptor::flat_data(0));
    m.mem.write_bytes(0x1000, &image);
    m.force_seg_from_table(asm86::isa::SegReg::Cs, Selector::new(c, false, 0));
    m.force_seg_from_table(asm86::isa::SegReg::Ss, Selector::new(d, false, 0));
    m.cpu.set_reg(Reg::Esp, 0x8000);
    m.cpu.eip = 0x1000;

    // Phase attribution by instruction role.
    let f = 0x1000 + obj.symbol("f").unwrap();
    let push_arg = 0x1000;
    let call_site = push_arg + 3;
    let pop_ecx = call_site + 5;
    let hlt = pop_ecx + 2;
    let push_ebp = f;
    let pop_ebp = push_ebp + 3;
    let ret = pop_ebp + 2;

    let mut phases = [0u64; 4];
    loop {
        let eip = m.cpu.eip;
        if eip == hlt {
            return phases;
        }
        let phase = match eip {
            e if e == push_arg || e == push_ebp => 0,
            e if e == call_site => 1,
            e if e == ret => 2,
            e if e == pop_ebp || e == pop_ecx => 3,
            other => panic!("unexpected EIP {other:#x}"),
        };
        let before = m.cycles();
        match m.step() {
            None => {}
            Some(Exit::Hlt) => return phases,
            Some(other) => panic!("unexpected exit {other:?}"),
        }
        phases[phase] += m.cycles() - before;
    }
}

/// The analytic "Hardware" column: architecture-manual costs of the same
/// sequences (fractional values reflect U/V pairing).
fn hardware_phases() -> [f64; 4] {
    let params = PrepareParams {
        slots: SaveSlots {
            sp_slot: 0,
            bp_slot: 0,
        },
        arg_slot: 0,
        ext_esp_slot: 0,
        stack_sel: 0,
        code_sel: 0,
        transfer: 0,
    };
    let prep = trampoline::prepare(params);
    let setup: f64 = prep[..prep.len() - 1].iter().map(documented_cost).sum();
    let calling = documented_event(Event::FarRetOuter) + documented_cost(&Insn::Call(0));
    let returning = documented_cost(&Insn::Ret) + documented_event(Event::GateCallInner);
    let restoring =
        2.0 * documented_cost(&Insn::Load(Reg::Esp, Mem::abs(0))) + documented_cost(&Insn::Ret);
    [setup, calling, returning, restoring]
}

/// Regenerates Table 1.
pub fn measure_table1() -> Table1 {
    let inter = measure_inter_phases();
    let intra = measure_intra_phases();
    let hw = hardware_phases();
    Table1 {
        rows: (0..4)
            .map(|i| Table1Row {
                name: PHASE_NAMES[i],
                inter: inter[i],
                intra: intra[i],
                hardware: hw[i],
            })
            .collect(),
    }
}

/// One row of Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// String size in bytes.
    pub size: u32,
    /// Unprotected in-process call, microseconds.
    pub unprotected_us: f64,
    /// Palladium protected call, microseconds.
    pub palladium_us: f64,
    /// Linux socket RPC, microseconds.
    pub rpc_us: f64,
}

const REVERSE_SRC: &str = "\
; void reverse(char *s) — reverse a NUL-terminated string in place
reverse:
    mov ecx, [esp+4]
    mov edx, ecx
rev_scan:
    mov eax, byte [edx]
    cmp eax, 0
    je rev_found
    inc edx
    jmp rev_scan
rev_found:
    dec edx
rev_loop:
    cmp ecx, edx
    jae rev_done
    mov eax, byte [ecx]
    mov esi, byte [edx]
    mov byte [ecx], esi
    mov byte [edx], eax
    inc ecx
    dec edx
    jmp rev_loop
rev_done:
    mov eax, 0
    ret
";

/// Regenerates Table 2: the string-reverse service under the three
/// mechanisms. The protected and unprotected versions run the *same*
/// routine on the simulated CPU; the RPC column adds the modelled socket
/// round trip to the same computation.
pub fn measure_table2() -> Vec<Table2Row> {
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).expect("app");
    let reverse = Assembler::assemble(REVERSE_SRC).unwrap();

    // Protected: the routine as an extension.
    let h = app
        .dlopen(&mut k, &reverse, &DlopenOptions::new())
        .expect("dlopen");
    let prep = app.seg_dlsym(&mut k, h, "reverse").expect("dlsym");

    // Unprotected: the same routine installed as plain application code,
    // called through the same stub.
    let app_syms = app.install_app_code(&mut k, &reverse).expect("install");
    let app_reverse = app_syms["reverse"];

    // Harness overhead: calling a null app function measures the stub +
    // yield cost around the Table 1 "Intra" 10-cycle call.
    let null = Assembler::assemble("nul:\nret\n").unwrap();
    let null_syms = app.install_app_code(&mut k, &null).expect("install null");
    let null_fn = null_syms["nul"];
    app.call_app_function(&mut k, null_fn, 0).unwrap();
    let c0 = k.m.cycles();
    app.call_app_function(&mut k, null_fn, 0).unwrap();
    let harness_overhead = (k.m.cycles() - c0).saturating_sub(10);

    let shared = app.alloc_shared(&mut k, 1).expect("shared");
    let rpc = RpcCosts::default();

    let mut rows = Vec::new();
    for size in [32u32, 64, 128, 256] {
        let s: Vec<u8> = (0..size).map(|i| b'A' + (i % 26) as u8).collect();
        let mut with_nul = s.clone();
        with_nul.push(0);

        let measure = |k: &mut Kernel, app: &mut ExtensibleApp, target: u32| -> u64 {
            // Warm, then measure twice (the paper averages 100 runs; the
            // simulator is deterministic, asserted below).
            assert!(k.m.host_write(shared, &with_nul));
            app.call_extension(k, target, shared).unwrap();
            assert!(k.m.host_write(shared, &with_nul));
            let a = k.m.cycles();
            app.call_extension(k, target, shared).unwrap();
            let b = k.m.cycles();
            assert!(k.m.host_write(shared, &with_nul));
            app.call_extension(k, target, shared).unwrap();
            let c = k.m.cycles();
            assert_eq!(b - a, c - b, "warm runs are deterministic");
            (b - a).saturating_sub(harness_overhead)
        };

        let pd = measure(&mut k, &mut app, prep);
        let un = measure(&mut k, &mut app, app_reverse);
        // Sanity: an odd number of reversals leaves the string reversed.
        let got = k.m.host_read(shared, size as usize);
        let want: Vec<u8> = s.iter().rev().copied().collect();
        assert_eq!(got, want, "string got reversed");

        let rpc_cycles = rpc.round_trip_cycles(size as usize) + un;
        rows.push(Table2Row {
            size,
            unprotected_us: cycles_to_us(un),
            palladium_us: cycles_to_us(pd),
            rpc_us: cycles_to_us(rpc_cycles),
        });
    }
    rows
}

/// One row of Table 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Response size in bytes.
    pub size: u32,
    /// Throughput per model, in [`ExecModel::ALL`] order.
    pub rps: [f64; 5],
}

/// Regenerates Table 3. Also returns the measured protected-call cycles
/// the server observed at start-up.
pub fn measure_table3() -> (Vec<Table3Row>, u64) {
    let server = WebServer::new().expect("server");
    let cfg = AbConfig::default();
    let rows = [28u32, 1024, 10 * 1024, 100 * 1024]
        .into_iter()
        .map(|size| {
            let mut rps = [0.0f64; 5];
            for (i, model) in ExecModel::ALL.into_iter().enumerate() {
                rps[i] = run_ab(&server, model, size, cfg).rps;
            }
            Table3Row { size, rps }
        })
        .collect();
    (rows, server.protected_call_cycles)
}

/// One point of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Figure7Point {
    /// Number of conjunction terms.
    pub terms: usize,
    /// BPF interpreter cycles.
    pub bpf_cycles: u64,
    /// Palladium compiled-extension cycles (including invocation).
    pub palladium_cycles: u64,
}

/// Regenerates Figure 7: filter cost vs term count, all terms true.
pub fn measure_figure7() -> Vec<Figure7Point> {
    let pkt = reference_packet(64);
    (0..=4)
        .map(|terms| {
            let f = paper_conjunction(terms);
            let mut b = FilterBench::new().expect("bench");
            b.install_compiled(&f).expect("install");
            // Warm both paths.
            b.run_compiled(&pkt).unwrap();
            b.run_bpf(&f, &pkt).unwrap();
            let pd = b.run_compiled(&pkt).unwrap();
            let bpf = b.run_bpf(&f, &pkt).unwrap();
            assert!(pd.accept && bpf.accept);
            Figure7Point {
                terms,
                bpf_cycles: bpf.cycles,
                palladium_cycles: pd.cycles,
            }
        })
        .collect()
}

/// Extends Figure 7 past the paper's x-axis with payload-byte terms.
pub fn measure_figure7_extended(term_counts: &[usize]) -> Vec<Figure7Point> {
    let pkt = reference_packet(128);
    term_counts
        .iter()
        .map(|&terms| {
            let f = extended_conjunction(terms);
            let mut b = FilterBench::new().expect("bench");
            b.install_compiled(&f).expect("install");
            b.run_compiled(&pkt).unwrap();
            b.run_bpf(&f, &pkt).unwrap();
            let pd = b.run_compiled(&pkt).unwrap();
            let bpf = b.run_bpf(&f, &pkt).unwrap();
            assert!(pd.accept && bpf.accept);
            Figure7Point {
                terms,
                bpf_cycles: bpf.cycles,
                palladium_cycles: pd.cycles,
            }
        })
        .collect()
}

/// The §5.1/§5.2 micro-measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Micro {
    /// Measured segment-register load, cycles (paper: 12).
    pub seg_load_cycles: u64,
    /// Documented segment-register load (paper: 2-3).
    pub seg_load_documented: f64,
    /// PPL marking cost for (pages, cycles) pairs (paper: startup +
    /// 45/page).
    pub ppl_marking: Vec<(u32, u64)>,
    /// `dlopen` in microseconds (paper: 400).
    pub dlopen_us: f64,
    /// `seg_dlopen` in microseconds (paper: 420).
    pub seg_dlopen_us: f64,
    /// SIGSEGV detection-to-delivery, cycles (paper: 3,325).
    pub sigsegv_cycles: u64,
    /// Kernel-extension #GP processing, cycles (paper: 1,020).
    pub kext_abort_cycles: u64,
    /// The IPC comparison rows.
    pub ipc: Vec<ipc::IpcMechanism>,
}

/// Runs a `mov ds, reg` on the machine and returns its cycle cost.
fn measure_seg_load() -> u64 {
    use x86sim::desc::{Descriptor, Selector};
    use x86sim::machine::Machine;

    let mut m = Machine::new();
    let c = m.gdt.push(Descriptor::flat_code(0));
    let d = m.gdt.push(Descriptor::flat_data(0));
    let sel = Selector::new(d, false, 0);
    let prog = encode_program(&[
        Insn::Mov(Reg::Eax, Src::Imm(sel.0 as i32)),
        Insn::MovToSeg(asm86::isa::SegReg::Ds, Reg::Eax),
        Insn::Hlt,
    ]);
    m.mem.write_bytes(0x1000, &prog);
    m.force_seg_from_table(asm86::isa::SegReg::Cs, Selector::new(c, false, 0));
    m.force_seg_from_table(asm86::isa::SegReg::Ss, sel);
    m.cpu.set_reg(Reg::Esp, 0x8000);
    m.cpu.eip = 0x1000;
    assert!(m.step().is_none());
    let before = m.cycles();
    assert!(m.step().is_none());
    m.cycles() - before
}

/// Measures dlopen-style costs by charging through the loader paths.
fn measure_dlopen() -> (f64, f64) {
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).expect("app");
    let lib = palladium::stdlib::libc_object();
    let before = k.m.cycles();
    app.load_shared_lib(&mut k, &lib).expect("dlopen");
    let dlopen = k.m.cycles() - before;

    let ext = Assembler::assemble("f:\nret\n").unwrap();
    let before = k.m.cycles();
    app.dlopen(&mut k, &ext, &DlopenOptions::new())
        .expect("seg_dlopen");
    let seg_dlopen = k.m.cycles() - before;
    (cycles_to_us(dlopen), cycles_to_us(seg_dlopen))
}

/// Measures the SIGSEGV detection-to-delivery latency by making an
/// extension touch application memory.
fn measure_sigsegv() -> u64 {
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).expect("app");
    let evil = Assembler::assemble(&format!(
        "f:\nmov eax, 1\nmov [{}], eax\nret\n",
        minikernel::USER_TEXT
    ))
    .unwrap();
    let h = app
        .dlopen(&mut k, &evil, &DlopenOptions::new())
        .expect("dlopen");
    let prep = app.seg_dlsym(&mut k, h, "f").expect("dlsym");
    let before_faults = k.stats.faults;
    let r = app.call_extension(&mut k, prep, 0);
    assert!(r.is_err());
    assert_eq!(k.stats.faults, before_faults + 1);
    // Detection-to-delivery = hardware vectoring + handler + frame setup.
    cycles::measured_event(Event::ExceptionDelivery)
        + k.costs.pagefault_handler
        + k.costs.signal_deliver
}

/// Regenerates the §5.1/§5.2 micro-measurements.
pub fn measure_micro() -> Micro {
    let k = Kernel::boot();
    let ppl_marking = [1u32, 10, 32, 64]
        .into_iter()
        .map(|p| (p, k.costs.ppl_mark(p)))
        .collect();
    let (dlopen_us, seg_dlopen_us) = measure_dlopen();
    Micro {
        seg_load_cycles: measure_seg_load(),
        seg_load_documented: documented_event(Event::SegLoad),
        ppl_marking,
        dlopen_us,
        seg_dlopen_us,
        sigsegv_cycles: measure_sigsegv(),
        kext_abort_cycles: cycles::measured_event(Event::ExceptionDelivery) + k.costs.kext_abort,
        ipc: vec![ipc::palladium(), ipc::l4(), ipc::lrpc()],
    }
}

// ----- host simulation throughput (BENCH_sim_throughput.json) -------------

/// One workload of the host-throughput benchmark: guest instructions per
/// host second with the predecode fast path on (`fast`) and off (`base`,
/// the byte-wise pre-change fetch kept as the in-tree baseline).
///
/// Simulated results are identical in both modes — only the host clock
/// differs — so `speedup` is a pure host-performance number.
#[derive(Debug, Clone)]
pub struct ThroughputPoint {
    /// Workload tag: `figure7`, `chaos`, `webserver`, `kext_dispatch`,
    /// or the proof-hoisting pair `figure7_hoist` / `kext_hoist` (where
    /// `fast` is proof-hoisted and `base` is verified-unhoisted
    /// dispatch).
    pub workload: &'static str,
    /// Guest instructions retired in the timed fast-path run.
    pub fast_insns: u64,
    /// Host seconds for the fast-path run.
    pub fast_secs: f64,
    /// Guest instructions retired in the timed baseline run.
    pub base_insns: u64,
    /// Host seconds for the baseline run.
    pub base_secs: f64,
}

impl ThroughputPoint {
    /// Fast-path host throughput, guest instructions per second.
    pub fn fast_ips(&self) -> f64 {
        self.fast_insns as f64 / self.fast_secs.max(1e-9)
    }

    /// Baseline host throughput, guest instructions per second.
    pub fn base_ips(&self) -> f64 {
        self.base_insns as f64 / self.base_secs.max(1e-9)
    }

    /// Host speedup of the fast path over the baseline.
    pub fn speedup(&self) -> f64 {
        self.fast_ips() / self.base_ips().max(1e-9)
    }
}

/// Figure 7 packet-filter workload: repeated protected invocations of a
/// compiled filter far past the figure's x-axis (an 80-term conjunction
/// over a 128-byte packet — ~265 guest instructions of invocation path
/// plus filter body per call, the same machinery the `figure7` binary
/// measures in cycles).
fn throughput_figure7(iters: u32, predecode: bool) -> (u64, f64) {
    let mut b = FilterBench::new().expect("filter bench");
    b.k.m.set_predecode(predecode);
    b.install_compiled(&extended_conjunction(80))
        .expect("install");
    let pkt = reference_packet(128);
    b.run_compiled(&pkt).expect("warm");
    let insns0 = b.k.m.insns();
    let t = std::time::Instant::now();
    for _ in 0..iters {
        b.run_compiled(&pkt).expect("run");
    }
    (b.k.m.insns() - insns0, t.elapsed().as_secs_f64())
}

/// Chaos-campaign workload: a seeded adversarial campaign (probes off so
/// only episode kernels — which honour the predecode flag — are timed).
fn throughput_chaos(steps: u32, predecode: bool) -> (u64, f64) {
    let cfg = chaos::campaign::CampaignConfig {
        seed: 0xBE7C_4A05,
        steps,
        probe_interval: 0,
        predecode,
        ..chaos::campaign::CampaignConfig::default()
    };
    let t = std::time::Instant::now();
    let report = chaos::campaign::run(&cfg);
    (report.guest_insns, t.elapsed().as_secs_f64())
}

/// Table 3 web-server workload: live protected-CGI requests actually
/// stepped through the simulator.
fn throughput_webserver(iters: u32, predecode: bool) -> (u64, f64) {
    let mut s = WebServer::new().expect("server");
    s.k.m.set_predecode(predecode);
    let cube = Assembler::assemble(
        "cube:\n\
         mov eax, [esp+4]\n\
         imul eax, [esp+4]\n\
         imul eax, [esp+4]\n\
         ret\n",
    )
    .unwrap();
    s.add_dynamic("/cube", &cube, "cube").expect("add_dynamic");
    let req = webserver::http::get_request("/cube?n=7");
    s.handle(&req, ExecModel::LibCgiProtected).expect("warm");
    let insns0 = s.k.m.insns();
    let t = std::time::Instant::now();
    for _ in 0..iters {
        s.handle(&req, ExecModel::LibCgiProtected).expect("handle");
    }
    (s.k.m.insns() - insns0, t.elapsed().as_secs_f64())
}

/// Kernel-extension dispatch workload: repeated `invoke` of a benign
/// 60-odd-instruction extension. The `fast` mode loads it into a segment
/// with [`SegmentConfig::verify`] on, so dispatch rides the `Verified`
/// attestation (no per-call entry-window re-validation, eager
/// predecode); the `base` mode loads it unverified and pays the advisory
/// per-call check with predecode off. Simulated results are identical —
/// the attestation only licenses skipping host-side work.
fn throughput_kext_dispatch(iters: u32, verified: bool) -> (u64, f64) {
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).expect("kext init");
    let config = SegmentConfig {
        verify: verified,
        ..kx.default_config()
    };
    let seg = kx.create_segment_with(&mut k, 16, config).expect("segment");
    let mut src = String::from("work:\nmov eax, [esp+4]\n");
    for _ in 0..64 {
        src.push_str("add eax, 1\n");
    }
    src.push_str("ret\n");
    let obj = Assembler::assemble(&src).expect("assemble");
    kx.insmod(&mut k, seg, "work", &obj, &["work"])
        .expect("insmod");
    k.m.set_predecode(verified);
    kx.invoke(&mut k, seg, "work", 1).expect("warm");
    let insns0 = k.m.insns();
    let t = std::time::Instant::now();
    for _ in 0..iters {
        kx.invoke(&mut k, seg, "work", 1).expect("invoke");
    }
    (k.m.insns() - insns0, t.elapsed().as_secs_f64())
}

/// Proof-hoisted figure7: the same compiled 80-term filter in a
/// *verified* segment, so every straight-line block carries `ds_bounds`
/// proofs over the shared packet area. The `fast` mode runs with proof
/// elision on (per-access segment-limit/PPL checks hoisted to one guard
/// at block entry); the `base` mode is verified-unhoisted
/// ([`x86sim::Machine::set_proof_elision`] off) with the same predecode
/// setting, so the delta isolates the hoist itself. Simulated cycles,
/// results and faults are byte-identical either way.
fn throughput_figure7_hoist(iters: u32, elide: bool) -> (u64, f64) {
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).expect("kext init");
    let config = SegmentConfig {
        verify: true,
        ..kx.default_config()
    };
    let seg = kx.create_segment_with(&mut k, 16, config).expect("segment");
    let obj = netfilter::compile::compile(&extended_conjunction(80));
    kx.insmod(&mut k, seg, "pktfilter", &obj, &["filter"])
        .expect("insmod");
    k.m.set_proof_elision(elide);
    let (area, _) = kx.shared_area_linear(seg).expect("shared area");
    let pkt = reference_packet(128);
    assert!(k.m.host_write(area, &pkt));
    kx.invoke(&mut k, seg, "filter", pkt.len() as u32)
        .expect("warm");
    let insns0 = k.m.insns();
    let t = std::time::Instant::now();
    for _ in 0..iters {
        kx.invoke(&mut k, seg, "filter", pkt.len() as u32)
            .expect("invoke");
    }
    (k.m.insns() - insns0, t.elapsed().as_secs_f64())
}

/// Proof-hoisted kext dispatch: a verified counted loop summing a
/// 256-dword module-local table — one DS access per iteration, the shape
/// whose per-access checks the loop-aware block proofs license hoisting.
/// As for [`throughput_figure7_hoist`], `fast` is proof-hoisted and
/// `base` is verified-unhoisted; only host time may differ.
fn throughput_kext_hoist(iters: u32, elide: bool) -> (u64, f64) {
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).expect("kext init");
    let config = SegmentConfig {
        verify: true,
        ..kx.default_config()
    };
    let seg = kx.create_segment_with(&mut k, 16, config).expect("segment");
    let mut src = String::from(
        "work:\n\
         mov eax, 0\n\
         mov esi, 0\n\
         lp:\n\
         mov ebx, table\n\
         add ebx, eax\n\
         add esi, [ebx]\n\
         add eax, 4\n\
         cmp eax, 1024\n\
         jb lp\n\
         mov eax, esi\n\
         ret\n\
         table:\n",
    );
    // One slack dword: the stride-blind interval domain proves a range
    // reaching 3 bytes past offset 1020.
    for i in 0..=256u32 {
        src.push_str(&format!(".dd {i}\n"));
    }
    let obj = Assembler::assemble(&src).expect("assemble");
    kx.insmod(&mut k, seg, "work", &obj, &["work"])
        .expect("insmod");
    k.m.set_proof_elision(elide);
    kx.invoke(&mut k, seg, "work", 0).expect("warm");
    let insns0 = k.m.insns();
    let t = std::time::Instant::now();
    for _ in 0..iters {
        kx.invoke(&mut k, seg, "work", 0).expect("invoke");
    }
    (k.m.insns() - insns0, t.elapsed().as_secs_f64())
}

/// Measures host steps/sec on the figure7, chaos, webserver,
/// kext-dispatch and proof-hoisting workloads with explicit per-workload
/// iteration counts (exposed for cheap tests; use
/// [`measure_sim_throughput`] for the real benchmark).
pub fn measure_sim_throughput_with(
    figure7_iters: u32,
    chaos_steps: u32,
    webserver_iters: u32,
    kext_iters: u32,
) -> Vec<ThroughputPoint> {
    type Runner = fn(u32, bool) -> (u64, f64);
    let specs: [(&'static str, Runner, u32); 6] = [
        ("figure7", throughput_figure7, figure7_iters),
        ("chaos", throughput_chaos, chaos_steps),
        ("webserver", throughput_webserver, webserver_iters),
        ("kext_dispatch", throughput_kext_dispatch, kext_iters),
        ("figure7_hoist", throughput_figure7_hoist, figure7_iters),
        ("kext_hoist", throughput_kext_hoist, kext_iters),
    ];
    specs
        .into_iter()
        .map(|(workload, run, iters)| {
            // Interleave fast and baseline batches and keep each mode's
            // best time: host noise (scheduling, frequency drift) then
            // hits both modes alike instead of biasing whichever mode
            // happened to run during a slow spell. The guest instruction
            // count is identical in every batch — the simulation is
            // deterministic — so only the host clock varies. Several
            // short batches beat one long one for this: the minimum
            // converges on the unloaded-host time.
            const ROUNDS: u32 = 14;
            let mut fast = (0u64, f64::INFINITY);
            let mut base = (0u64, f64::INFINITY);
            for _ in 0..ROUNDS {
                let f = run(iters, true);
                if f.1 < fast.1 {
                    fast = f;
                }
                let b = run(iters, false);
                if b.1 < base.1 {
                    base = b;
                }
            }
            ThroughputPoint {
                workload,
                fast_insns: fast.0,
                fast_secs: fast.1,
                base_insns: base.0,
                base_secs: base.1,
            }
        })
        .collect()
}

/// Measures the host-throughput benchmark; `scale` multiplies the
/// iteration counts (1 = the CI `--quick` run).
pub fn measure_sim_throughput(scale: u32) -> Vec<ThroughputPoint> {
    let s = scale.max(1);
    measure_sim_throughput_with(1_000 * s, 400 * s, 200 * s, 2_000 * s)
}

// ----- fleet rollout (the "fleet" section of the same JSON) ----------------

/// One fleet-rollout scenario of the availability benchmark: the
/// canaried roll of `crates/fleet` driven end to end, reporting how the
/// request stream fared while the fleet changed versions underneath it.
///
/// The simulated outcome (every counter except `host_secs`) is
/// byte-deterministic per seed and worker count; only the host clock
/// varies between runs.
#[derive(Debug, Clone)]
pub struct FleetPoint {
    /// Scenario tag: `rollback` (faulty push, canary trips, automatic
    /// rollback) or `promote` (healthy push, waves to convergence).
    pub scenario: &'static str,
    /// Fleet size.
    pub replicas: u32,
    /// Rounds driven.
    pub rounds: u32,
    /// Requests answered 200 across the fleet.
    pub served: u64,
    /// Requests answered 503 across the fleet.
    pub degraded: u64,
    /// Requests dropped fail-closed across the fleet.
    pub dropped: u64,
    /// How the roll ended (`promoted` / `rolled-back` / `incomplete`).
    pub outcome: &'static str,
    /// Round the automatic rollback fired, if it did.
    pub rollback_round: Option<u32>,
    /// Simulated cycles from the canary upgrade to the completed
    /// rollback (the paper-world "time to detect and revert").
    pub rollback_latency_cycles: Option<u64>,
    /// First round the fleet converged on its final version.
    pub converged_round: Option<u32>,
    /// Fleet-wide availability in basis points (served / total).
    pub availability_bp: u32,
    /// Guest instructions retired across every replica.
    pub guest_insns: u64,
    /// Host wall-clock seconds for the whole scenario.
    pub host_secs: f64,
}

fn fleet_point(scenario: &'static str, cfg: &fleet::RolloutConfig, faulty: bool) -> FleetPoint {
    let old = fleet::version_images("filter", 1);
    let new = if faulty {
        fleet::faulty_images("filter")
    } else {
        fleet::version_images("filter", 2)
    };
    let t = std::time::Instant::now();
    let r = fleet::rollout::run(cfg, &old, &new);
    let host_secs = t.elapsed().as_secs_f64();
    assert!(r.violations.is_empty(), "{scenario}: {:?}", r.violations);
    assert!(
        r.leak_failures.is_empty(),
        "{scenario}: {:?}",
        r.leak_failures
    );
    let total = r.served + r.degraded + r.dropped;
    FleetPoint {
        scenario,
        replicas: r.replicas,
        rounds: r.rounds,
        served: r.served,
        degraded: r.degraded,
        dropped: r.dropped,
        outcome: r.outcome.tag(),
        rollback_round: r.rollback_round,
        rollback_latency_cycles: r.rollback_latency_cycles,
        converged_round: r.converged_round,
        availability_bp: (r.served * 10_000).checked_div(total).unwrap_or(0) as u32,
        guest_insns: r.guest_insns,
        host_secs,
    }
}

/// Measures the two canonical fleet scenarios — a faulty push that the
/// canary catches (automatic rollback) and a healthy push that promotes
/// to convergence; `scale` multiplies the per-round request count (1 =
/// the CI `--quick` run).
pub fn measure_fleet(scale: u32) -> Vec<FleetPoint> {
    let cfg = fleet::RolloutConfig {
        requests_per_round: 40 * scale.max(1),
        ..fleet::RolloutConfig::default()
    };
    vec![
        fleet_point("rollback", &cfg, true),
        fleet_point("promote", &cfg, false),
    ]
}

// ----- worker scaling (the "scaling" section of the same JSON) -------------

/// One worker-count sample of a sharded workload.
///
/// The shard decomposition is fixed per workload, so `guest_insns` is
/// identical across worker counts (asserted by the determinism suite);
/// only `host_secs` — wall-clock over the whole fan-out — varies.
/// Speedup is relative to each workload's own 1-worker row.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Workload tag: `figure7`, `chaos` or `webserver`.
    pub workload: &'static str,
    /// Worker threads in the [`parex::Pool`].
    pub workers: usize,
    /// Independent shards fanned across those workers.
    pub shards: u32,
    /// Guest instructions retired across all shards (worker-count
    /// invariant).
    pub guest_insns: u64,
    /// Simulated cycles spent booting and warming the shard worlds,
    /// summed across shards. Boot happens **outside** the timed window
    /// (`host_secs` measures steady-state work only); this column keeps
    /// the excluded cost visible. Zero for the chaos workload, whose
    /// episode boot is part of the campaign itself (and already
    /// fork-amortised via `CampaignConfig::fork_boot`).
    pub boot_cycles: u64,
    /// Host wall-clock seconds for the whole fan-out.
    pub host_secs: f64,
}

impl ScalingPoint {
    /// Host throughput, guest instructions per second.
    pub fn ips(&self) -> f64 {
        self.guest_insns as f64 / self.host_secs.max(1e-9)
    }
}

/// Figure 7 filter workload sharded: each shard owns a private
/// [`FilterBench`] (kernel + machine) and runs `iters` protected
/// invocations of the 80-term compiled filter.
fn scaling_figure7(shards: u32, iters: u32, pool: parex::Pool) -> (u64, u64, f64) {
    // Cold-path bugfix: shard boot used to run inside the timed window,
    // polluting `host_secs` with world construction. Boot one warmed
    // template outside the timer and fork a world per shard
    // (copy-on-write); the timer measures only the filter iterations.
    let mut template = FilterBench::new().expect("filter bench");
    template
        .install_compiled(&extended_conjunction(80))
        .expect("install");
    let pkt = reference_packet(128);
    template.run_compiled(&pkt).expect("warm");
    let boot_cycles = template.k.m.cycles() * u64::from(shards);
    let worlds: Vec<FilterBench> = (0..shards).map(|_| template.clone()).collect();

    let t = std::time::Instant::now();
    let insns = pool.run_ordered(worlds, |_, mut b| {
        let insns0 = b.k.m.insns();
        for _ in 0..iters {
            b.run_compiled(&pkt).expect("run");
        }
        b.k.m.insns() - insns0
    });
    (insns.iter().sum(), boot_cycles, t.elapsed().as_secs_f64())
}

/// Chaos workload sharded: the campaign's own episode fan-out
/// ([`CampaignConfig::jobs`](chaos::campaign::CampaignConfig::jobs)).
fn scaling_chaos(steps: u32, jobs: usize) -> (u64, u64, f64) {
    let cfg = chaos::campaign::CampaignConfig {
        seed: 0xBE7C_4A05,
        steps,
        probe_interval: 0,
        jobs,
        ..chaos::campaign::CampaignConfig::default()
    };
    let t = std::time::Instant::now();
    let report = chaos::campaign::run(&cfg);
    // Episode boot is part of the campaign (fork-amortised internally),
    // so no boot cost is split out of the timed window here.
    (report.guest_insns, 0, t.elapsed().as_secs_f64())
}

/// Web-server workload sharded: [`webserver::run_live_sharded`] request
/// groups, each on a replica server.
fn scaling_webserver(shards: u32, requests: u32, pool: parex::Pool) -> (u64, u64, f64) {
    // Cold-path bugfix: each request group used to cold-boot its server
    // inside the timed window. Boot and warm one template outside the
    // timer; `make` hands each group a copy-on-write fork of it.
    let template = {
        let mut s = WebServer::new().expect("webserver");
        let cube = Assembler::assemble(
            "cube:\n\
             mov eax, [esp+4]\n\
             imul eax, [esp+4]\n\
             imul eax, [esp+4]\n\
             ret\n",
        )
        .unwrap();
        s.add_dynamic("/cube", &cube, "cube").expect("add_dynamic");
        s
    };
    let groups = shards.clamp(1, requests.max(1));
    let boot_cycles = template.k.m.cycles() * u64::from(groups);
    let make = || Ok(template.clone());

    let t = std::time::Instant::now();
    let (_, stats) = webserver::run_live_sharded(
        make,
        ExecModel::LibCgiProtected,
        "/cube?n=7",
        requests,
        0xAB12,
        shards,
        pool,
    )
    .expect("sharded live run");
    let insns: u64 = stats.iter().map(|s| s.cycles).sum();
    // `cycles` is the simulated-cycle counter; the guest work metric for
    // scaling only needs to be worker-count invariant and proportional
    // to the simulated work, which cycles are.
    (insns, boot_cycles, t.elapsed().as_secs_f64())
}

/// Measures the sharded workloads at each worker count in `workers`,
/// with explicit shard/iteration counts (exposed for cheap tests; the
/// `sim_throughput` binary uses [`measure_scaling`]).
pub fn measure_scaling_with(
    shards: u32,
    figure7_iters: u32,
    chaos_steps: u32,
    webserver_reqs: u32,
    workers: &[usize],
) -> Vec<ScalingPoint> {
    let mut points = Vec::new();
    for &w in workers {
        let pool = parex::Pool::new(w);
        let (insns, boot, secs) = scaling_figure7(shards, figure7_iters, pool);
        points.push(ScalingPoint {
            workload: "figure7",
            workers: w,
            shards,
            guest_insns: insns,
            boot_cycles: boot,
            host_secs: secs,
        });
        let (insns, boot, secs) = scaling_chaos(chaos_steps, w);
        points.push(ScalingPoint {
            workload: "chaos",
            workers: w,
            shards: chaos_steps.div_ceil(chaos::campaign::CampaignConfig::default().episode_len),
            guest_insns: insns,
            boot_cycles: boot,
            host_secs: secs,
        });
        let (insns, boot, secs) = scaling_webserver(shards, webserver_reqs, pool);
        points.push(ScalingPoint {
            workload: "webserver",
            workers: w,
            shards,
            guest_insns: insns,
            boot_cycles: boot,
            host_secs: secs,
        });
    }
    points
}

/// Measures worker scaling at 1/2/4/8 workers; `scale` multiplies the
/// per-shard work (1 = the CI `--quick` run).
pub fn measure_scaling(scale: u32) -> Vec<ScalingPoint> {
    let s = scale.max(1);
    measure_scaling_with(16, 250 * s, 300 * s, 240 * s, &[1, 2, 4, 8])
}

// ----- world startup: cold boot vs fork (the "startup" JSON section) -------

/// Host-side cost of producing one more shard world: a full cold boot
/// (+ load + warm) versus a copy-on-write fork of a warmed template
/// ([`x86sim::Machine::fork`]).
#[derive(Debug, Clone)]
pub struct StartupPoint {
    /// World tag: `session` or `webserver`.
    pub world: &'static str,
    /// Host seconds to cold-boot and warm the world (min over reps).
    pub cold_secs: f64,
    /// Host seconds to fork the warmed template (min over reps).
    pub fork_secs: f64,
}

impl StartupPoint {
    /// How many times cheaper a fork is than a cold boot.
    pub fn speedup(&self) -> f64 {
        self.cold_secs / self.fork_secs.max(1e-12)
    }
}

/// Minimum wall-clock over `reps` calls of `f` (min, not mean: the
/// measurement noise on a hot path is strictly additive).
fn min_secs<T>(reps: u32, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = std::time::Instant::now();
        let out = f();
        best = best.min(t.elapsed().as_secs_f64());
        std::hint::black_box(&out);
    }
    best
}

/// Measures cold-boot vs fork startup for the two canonical shard
/// worlds: a warmed [`palladium::Session`] (boot + verified dlopen +
/// warm call) and a [`WebServer`] with a dynamic endpoint installed.
pub fn measure_startup() -> Vec<StartupPoint> {
    let build_session = || {
        let mut s = palladium::Session::new().expect("boot");
        let ext = Assembler::assemble("double:\nmov eax, [esp+4]\nadd eax, eax\nret\n").unwrap();
        let h = s
            .dlopen(&ext, &DlopenOptions::new().verify(&["double"]))
            .expect("dlopen");
        let f = s.dlsym(h, "double").expect("dlsym");
        s.call(f, 3).expect("warm");
        s
    };
    let session_tmpl = build_session();

    let build_server = || {
        let mut s = WebServer::new().expect("webserver");
        let cube =
            Assembler::assemble("cube:\nmov eax, [esp+4]\nimul eax, [esp+4]\nret\n").unwrap();
        s.add_dynamic("/cube", &cube, "cube").expect("add_dynamic");
        s
    };
    let server_tmpl = build_server();

    vec![
        StartupPoint {
            world: "session",
            cold_secs: min_secs(5, build_session),
            fork_secs: min_secs(200, || session_tmpl.fork()),
        },
        StartupPoint {
            world: "webserver",
            cold_secs: min_secs(5, build_server),
            fork_secs: min_secs(200, || server_tmpl.clone()),
        },
    ]
}

// ----- durable checkpoints (the "durability" JSON section) -----------------

/// Save/restore cost of one durable world image
/// ([`x86sim::Machine::save_image`] and the layered images stacked on
/// it): how many bytes the image is and how long a save / restore takes
/// on the host.
///
/// Image bytes are deterministic per world; only the two latency
/// columns vary between runs.
#[derive(Debug, Clone)]
pub struct DurabilityPoint {
    /// World tag: `machine`, `kernel`, `session` or `replica`.
    pub world: &'static str,
    /// Size of the serialized image in bytes.
    pub image_bytes: usize,
    /// Host seconds to serialize the world (min over reps).
    pub save_secs: f64,
    /// Host seconds to rebuild the world from the image (min over reps).
    pub restore_secs: f64,
}

/// One crash-recovery drill of [`fleet::drill`]: a replica is killed
/// mid-stream and brought back from its checkpoint lineage while the
/// rest of the fleet keeps serving.
///
/// Everything except `host_secs` is byte-deterministic per seed.
#[derive(Debug, Clone)]
pub struct DrillPoint {
    /// Scenario tag: `restore` (latest checkpoint intact) or
    /// `walkback` (newest generations corrupted, lineage walked).
    pub scenario: &'static str,
    /// How recovery ended (`restored` / `restored-after-walkback` /
    /// `cold-booted`).
    pub outcome: &'static str,
    /// Checkpoint generations rejected before one restored.
    pub generations_walked: u32,
    /// Requests answered 503 while the victim was down.
    pub recovery_degraded: u64,
    /// Rounds after the crash until the victim served a clean round.
    pub rounds_to_converge: Option<u32>,
    /// Fleet-wide availability in basis points (served / total).
    pub availability_bp: u32,
    /// Largest checkpoint image written during the run, in bytes.
    pub largest_image_bytes: usize,
    /// Host wall-clock seconds for the whole drill.
    pub host_secs: f64,
}

/// Measures image size and save/restore latency for the four durable
/// worlds, innermost first: the bare machine, the kernel over it, a
/// warmed [`palladium::Session`] (verified dlopen + warm call) and a
/// warmed [`fleet::Replica`] (one served round).
pub fn measure_durability() -> Vec<DurabilityPoint> {
    let mut session = palladium::Session::new().expect("boot");
    let ext = Assembler::assemble("double:\nmov eax, [esp+4]\nadd eax, eax\nret\n").unwrap();
    let h = session
        .dlopen(&ext, &DlopenOptions::new().verify(&["double"]))
        .expect("dlopen");
    let f = session.dlsym(h, "double").expect("dlsym");
    session.call(f, 3).expect("warm");

    let mut replica = fleet::Replica::new(
        1,
        0,
        fleet::version_images("filter", 1),
        palladium::supervisor::RestartPolicy::default(),
        20_000,
        true,
    )
    .expect("replica");
    replica.serve_round(8);

    let mut pts = Vec::new();
    let machine_img = session.kernel().m.save_image();
    pts.push(DurabilityPoint {
        world: "machine",
        image_bytes: machine_img.len(),
        save_secs: min_secs(20, || session.kernel().m.save_image()),
        restore_secs: min_secs(20, || {
            x86sim::Machine::restore_image(&machine_img).expect("machine restore")
        }),
    });
    let kernel_img = session.kernel().save_image();
    pts.push(DurabilityPoint {
        world: "kernel",
        image_bytes: kernel_img.len(),
        save_secs: min_secs(20, || session.kernel().save_image()),
        restore_secs: min_secs(20, || {
            Kernel::restore_image(&kernel_img).expect("kernel restore")
        }),
    });
    let session_img = session.checkpoint();
    pts.push(DurabilityPoint {
        world: "session",
        image_bytes: session_img.len(),
        save_secs: min_secs(20, || session.checkpoint()),
        restore_secs: min_secs(20, || {
            palladium::Session::restore(&session_img).expect("session restore")
        }),
    });
    let replica_img = replica.checkpoint();
    pts.push(DurabilityPoint {
        world: "replica",
        image_bytes: replica_img.len(),
        save_secs: min_secs(20, || replica.checkpoint()),
        restore_secs: min_secs(20, || {
            fleet::Replica::restore(&replica_img).expect("replica restore")
        }),
    });
    pts
}

fn drill_point(scenario: &'static str, cfg: &fleet::DrillConfig) -> DrillPoint {
    let images = fleet::version_images("filter", 1);
    let t = std::time::Instant::now();
    let r = fleet::drill::run(cfg, &images);
    let host_secs = t.elapsed().as_secs_f64();
    assert!(r.violations.is_empty(), "{scenario}: {:?}", r.violations);
    assert!(
        r.leak_failures.is_empty(),
        "{scenario}: {:?}",
        r.leak_failures
    );
    assert_eq!(
        r.healthy_replica_drops, 0,
        "{scenario}: healthy replicas dropped requests"
    );
    let total = r.served + r.degraded + r.dropped;
    DrillPoint {
        scenario,
        outcome: r.outcome.tag(),
        generations_walked: r.generations_walked,
        recovery_degraded: r.recovery_degraded,
        rounds_to_converge: r.rounds_to_converge,
        availability_bp: (r.served * 10_000).checked_div(total).unwrap_or(0) as u32,
        largest_image_bytes: r.largest_image_bytes,
        host_secs,
    }
}

/// Runs the two canonical crash-recovery drills — latest checkpoint
/// intact (plain restore) and newest generations corrupted (lineage
/// walk-back); `scale` multiplies the per-round request count (1 = the
/// CI `--quick` run).
pub fn measure_drills(scale: u32) -> Vec<DrillPoint> {
    let cfg = fleet::DrillConfig {
        requests_per_round: 40 * scale.max(1),
        ..fleet::DrillConfig::default()
    };
    let walkback = fleet::DrillConfig {
        corrupt_latest: 2,
        ..cfg.clone()
    };
    vec![
        drill_point("restore", &cfg),
        drill_point("walkback", &walkback),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_the_paper_exactly() {
        let t = measure_table1();
        let expected = [(26u64, 2u64), (34, 3), (75, 3), (7, 2)];
        for (row, (inter, intra)) in t.rows.iter().zip(expected) {
            assert_eq!(row.inter, inter, "{} (inter)", row.name);
            assert_eq!(row.intra, intra, "{} (intra)", row.name);
        }
        let (inter, intra, hw) = t.totals();
        assert_eq!(inter, 142, "paper's 142-cycle protected call");
        assert_eq!(intra, 10, "paper's 10-cycle unprotected call");
        // The paper prints 89 as the hardware total although its rows sum
        // to 76; our analytic rows sum close to the row sum.
        assert!((70.0..90.0).contains(&hw), "hardware total {hw}");
    }

    #[test]
    fn table2_shape_matches_the_paper() {
        let rows = measure_table2();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            // Palladium within roughly the 142-cycle delta (0.71us) of
            // unprotected.
            let delta = r.palladium_us - r.unprotected_us;
            assert!(
                (0.3..1.2).contains(&delta),
                "{}-byte delta {delta:.2}us",
                r.size
            );
            assert!(r.rpc_us > 10.0 * r.palladium_us);
        }
        // Within 30% of the paper's absolute values.
        let paper = [(32u32, 2.20), (64, 4.06), (128, 7.78), (256, 15.22)];
        for (r, (size, us)) in rows.iter().zip(paper) {
            assert_eq!(r.size, size);
            let err = (r.unprotected_us - us).abs() / us;
            assert!(err < 0.30, "{size}B: got {:.2} vs {us}", r.unprotected_us);
        }
        assert!(rows[0].rpc_us / rows[0].unprotected_us > 100.0);
    }

    #[test]
    fn figure7_crossover_and_factor() {
        let pts = measure_figure7();
        assert!(pts[0].bpf_cycles < pts[0].palladium_cycles);
        assert!(pts[4].bpf_cycles >= 2 * pts[4].palladium_cycles);
        for w in pts.windows(2) {
            assert!(w[1].bpf_cycles > w[0].bpf_cycles);
        }
    }

    #[test]
    fn throughput_bench_runs_all_workloads() {
        let pts = measure_sim_throughput_with(50, 30, 10, 50);
        assert_eq!(pts.len(), 6);
        let tags: Vec<_> = pts.iter().map(|p| p.workload).collect();
        assert_eq!(
            tags,
            [
                "figure7",
                "chaos",
                "webserver",
                "kext_dispatch",
                "figure7_hoist",
                "kext_hoist"
            ]
        );
        for p in &pts {
            // The simulated work is mode-independent; only host time may
            // differ. (Speedup itself is wall-clock and not asserted.)
            assert!(p.fast_insns > 0, "{}: no guest work", p.workload);
            assert_eq!(p.fast_insns, p.base_insns, "{}", p.workload);
            assert!(p.fast_ips() > 0.0 && p.base_ips() > 0.0);
        }
    }

    #[test]
    fn scaling_workloads_do_identical_guest_work_at_any_worker_count() {
        let pts = measure_scaling_with(4, 20, 30, 16, &[1, 4]);
        assert_eq!(pts.len(), 6);
        for w in ["figure7", "chaos", "webserver"] {
            let rows: Vec<&ScalingPoint> = pts.iter().filter(|p| p.workload == w).collect();
            assert_eq!(rows.len(), 2, "{w}");
            assert_eq!(
                rows[0].guest_insns, rows[1].guest_insns,
                "{w}: sharded work must be invariant"
            );
            assert!(rows[0].guest_insns > 0, "{w}: no guest work");
            // Boot cost is split out of the timed window and reported
            // deterministically (chaos boots inside its campaign).
            assert_eq!(rows[0].boot_cycles, rows[1].boot_cycles, "{w}");
            if w != "chaos" {
                assert!(rows[0].boot_cycles > 0, "{w}: boot cost unreported");
            }
        }
    }

    #[test]
    fn fork_startup_is_at_least_100x_cheaper_than_cold_boot() {
        for p in measure_startup() {
            assert!(p.cold_secs > 0.0 && p.fork_secs > 0.0, "{}", p.world);
            assert!(
                p.speedup() >= 100.0,
                "{}: fork only {:.0}x cheaper ({:.6}s cold vs {:.9}s fork)",
                p.world,
                p.speedup(),
                p.cold_secs,
                p.fork_secs
            );
        }
    }

    #[test]
    fn fleet_bench_covers_both_scenarios() {
        let pts = measure_fleet(1);
        assert_eq!(pts.len(), 2);
        let rb = &pts[0];
        assert_eq!(rb.scenario, "rollback");
        assert_eq!(rb.outcome, "rolled-back");
        assert!(rb.rollback_round.is_some());
        assert!(rb.rollback_latency_cycles.unwrap() > 0);
        assert_eq!(rb.dropped, 0, "graceful degradation never drops");
        let pm = &pts[1];
        assert_eq!(pm.scenario, "promote");
        assert_eq!(pm.outcome, "promoted");
        assert!(pm.converged_round.is_some());
        assert_eq!(pm.degraded + pm.dropped, 0, "healthy roll serves 100%");
        for p in &pts {
            assert!(p.guest_insns > 0);
            assert!(p.availability_bp <= 10_000);
        }
    }

    #[test]
    fn durability_bench_covers_every_world_layer() {
        let pts = measure_durability();
        let worlds: Vec<&str> = pts.iter().map(|p| p.world).collect();
        assert_eq!(worlds, ["machine", "kernel", "session", "replica"]);
        // Each layer's image embeds the previous one plus its own
        // tables, so sizes are strictly increasing.
        for w in pts.windows(2) {
            assert!(
                w[1].image_bytes > w[0].image_bytes,
                "{} ({}) should outsize {} ({})",
                w[1].world,
                w[1].image_bytes,
                w[0].world,
                w[0].image_bytes
            );
        }
        for p in &pts {
            assert!(p.save_secs > 0.0 && p.restore_secs > 0.0);
        }
    }

    #[test]
    fn drill_bench_covers_restore_and_walkback() {
        let pts = measure_drills(1);
        assert_eq!(pts.len(), 2);
        let restore = &pts[0];
        assert_eq!(restore.scenario, "restore");
        assert_eq!(restore.outcome, "restored");
        assert_eq!(restore.generations_walked, 0);
        let walk = &pts[1];
        assert_eq!(walk.scenario, "walkback");
        assert_eq!(walk.outcome, "restored-after-walkback");
        assert!(walk.generations_walked > 0);
        for p in &pts {
            assert!(
                p.rounds_to_converge.is_some(),
                "{}: never converged",
                p.scenario
            );
            assert!(p.recovery_degraded > 0, "crash must cost some 503s");
            assert!(p.availability_bp < 10_000 && p.availability_bp > 9_000);
            assert!(p.largest_image_bytes > 0);
        }
    }

    #[test]
    fn micro_matches_paper_constants() {
        let m = measure_micro();
        assert_eq!(m.seg_load_cycles, 12);
        assert_eq!(m.sigsegv_cycles, 3_325);
        assert_eq!(m.kext_abort_cycles, 1_020);
        assert!((m.dlopen_us - 400.0).abs() < 40.0, "{}", m.dlopen_us);
        assert!(m.seg_dlopen_us > m.dlopen_us);
        let ten_pages = m.ppl_marking.iter().find(|(p, _)| *p == 10).unwrap().1;
        assert!((3_450..=5_450).contains(&ten_pages));
    }
}

// ---------------------------------------------------------------------------
// Isolation-backend matrix

/// One adversarial scenario's outcome under one backend.
#[derive(Debug, Clone, PartialEq)]
pub struct ContainmentOutcome {
    /// Scenario name.
    pub scenario: &'static str,
    /// What stopped the adversary: a fault-dispatcher tag
    /// (`"page-protection"`, `"page-key"`, ...), `"budget"`,
    /// `"load-rejected"` (refused before it ever ran) or `"masked"`
    /// (SFI redirected the write into the sandbox).
    pub outcome: String,
    /// Whether the violation was contained (every row should be `true`).
    pub contained: bool,
}

/// One backend's row of the comparative isolation matrix: warm
/// protected-call cost, dispatch cost on a branch-free filter workload,
/// and containment outcomes over a small adversarial corpus.
///
/// Everything is counted in guest cycles on the deterministic simulator,
/// so rows are bit-reproducible across hosts and runs — unlike the
/// wall-clock throughput sections.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendMatrixRow {
    /// [`palladium::BackendKind::name`] of the backend.
    pub backend: &'static str,
    /// Warm null-extension protected call, guest cycles (same protocol
    /// as the Table 2 harness: back-to-back deterministic calls).
    pub warm_call_cycles: u64,
    /// Warm 4-load checksum-filter dispatch, guest cycles.
    pub dispatch_cycles: u64,
    /// Outcome per adversarial scenario.
    pub containment: Vec<ContainmentOutcome>,
}

impl BackendMatrixRow {
    /// Warm filter dispatches per million guest cycles.
    pub fn dispatch_per_mcycle(&self) -> f64 {
        1e6 / self.dispatch_cycles as f64
    }

    /// `(contained, total)` over the adversarial corpus.
    pub fn coverage(&self) -> (usize, usize) {
        let contained = self.containment.iter().filter(|c| c.contained).count();
        (contained, self.containment.len())
    }
}

/// The branch-free dispatch workload: the SFI rewriter admits no
/// relative branches, so a straight-line checksum keeps the *same*
/// object loadable under all three backends.
const SUM4_SRC: &str = "\
sum4:
    mov ecx, [esp+4]
    mov eax, [ecx]
    add eax, [ecx+4]
    add eax, [ecx+8]
    add eax, [ecx+12]
    ret
";

/// Stores the argument through itself as a pointer — a wild write when
/// called with an application-private address.
const WILD_SRC: &str = "\
wild:
    mov eax, [esp+4]
    mov [eax], eax
    ret
";

/// Regenerates the isolation-backend matrix: every
/// [`palladium::BackendKind`] raced over the same workloads and the same
/// adversarial corpus through the [`palladium::IsolationBackend`] trait.
pub fn measure_backend_matrix() -> Vec<BackendMatrixRow> {
    use palladium::{backend_for, BackendKind, FaultAttribution};

    BackendKind::ALL
        .iter()
        .map(|&kind| {
            let b = backend_for(kind);

            let mut k = Kernel::boot();
            let mut app = ExtensibleApp::new(&mut k).expect("app");

            // Warm protected-call cost.
            let nul = Assembler::assemble("nul:\n    ret\n").unwrap();
            let h = b
                .load(&mut k, &mut app, &nul, &DlopenOptions::new())
                .expect("load nul");
            let f = b.resolve(&mut k, &mut app, h, "nul").expect("resolve nul");
            b.call(&mut k, &mut app, f, 0).unwrap();
            let c0 = k.m.cycles();
            b.call(&mut k, &mut app, f, 0).unwrap();
            let c1 = k.m.cycles();
            b.call(&mut k, &mut app, f, 0).unwrap();
            let c2 = k.m.cycles();
            assert_eq!(c1 - c0, c2 - c1, "{kind}: warm calls are deterministic");
            let warm_call_cycles = c2 - c1;

            // Dispatch cost on the checksum filter.
            let sum = Assembler::assemble(SUM4_SRC).unwrap();
            let h = b
                .load(&mut k, &mut app, &sum, &DlopenOptions::new())
                .expect("load sum4");
            let f = b
                .resolve(&mut k, &mut app, h, "sum4")
                .expect("resolve sum4");
            let shared = app.alloc_shared(&mut k, 1).expect("shared");
            for (i, v) in [11u32, 22, 33, 44].iter().enumerate() {
                assert!(k.m.host_write(shared + 4 * i as u32, &v.to_le_bytes()));
            }
            assert_eq!(b.call(&mut k, &mut app, f, shared).unwrap(), 110, "{kind}");
            let c0 = k.m.cycles();
            b.call(&mut k, &mut app, f, shared).unwrap();
            let c1 = k.m.cycles();
            b.call(&mut k, &mut app, f, shared).unwrap();
            let c2 = k.m.cycles();
            assert_eq!(c1 - c0, c2 - c1, "{kind}: warm dispatch is deterministic");
            let dispatch_cycles = c2 - c1;

            // Containment corpus, each adversary in a fresh world.
            let corpus: [(&'static str, &str, &str); 3] = [
                ("wild-write", "wild", WILD_SRC),
                ("priv-insn", "bad", "bad:\n    hlt\n    ret\n"),
                ("runaway", "spin", "spin:\n    jmp spin\n"),
            ];
            let containment = corpus
                .iter()
                .map(|&(scenario, entry_name, src)| {
                    let mut k = Kernel::boot();
                    k.extension_cycle_limit = 50_000;
                    let mut app = ExtensibleApp::new(&mut k).expect("app");
                    let obj = Assembler::assemble(src).unwrap();
                    let h = match b.load(&mut k, &mut app, &obj, &DlopenOptions::new()) {
                        Ok(h) => h,
                        Err(_) => {
                            return ContainmentOutcome {
                                scenario,
                                outcome: "load-rejected".into(),
                                contained: true,
                            }
                        }
                    };
                    let entry = b
                        .resolve(&mut k, &mut app, h, entry_name)
                        .expect("resolve adversary");
                    let victim = app.save_slot_addr();
                    let (outcome, contained) = match b.call(&mut k, &mut app, entry, victim) {
                        Ok(_) => {
                            // The call survived: legal only if the wild
                            // store was masked away from the victim.
                            let masked = k.m.host_read_u32(victim) != victim;
                            let tag = if masked { "masked" } else { "escaped" };
                            (tag.to_string(), masked)
                        }
                        Err(e) => match b.attribute_fault(&e) {
                            FaultAttribution::Contained { check } => (check.to_string(), true),
                            FaultAttribution::Budget => ("budget".into(), true),
                            FaultAttribution::Unattributed => ("unattributed".into(), false),
                        },
                    };
                    ContainmentOutcome {
                        scenario,
                        outcome,
                        contained,
                    }
                })
                .collect();

            BackendMatrixRow {
                backend: kind.name(),
                warm_call_cycles,
                dispatch_cycles,
                containment,
            }
        })
        .collect()
}
