//! Prints Table 3: CGI execution-model throughput, plus a live spot check
//! where requests are actually served (protected LibCGI calls really
//! execute on the simulated CPU).

use webserver::{run_live, ExecModel, WebServer};

fn main() {
    let (rows, pcall) = bench::measure_table3();
    println!("Table 3: throughput, requests/second (1000 requests, concurrency 30)");
    print!("{:>10}", "Size");
    for m in ExecModel::ALL {
        print!(" {:>20}", m.name());
    }
    println!();
    for r in &rows {
        print!("{:>9}B", r.size);
        for v in r.rps {
            print!(" {:>20.0}", v);
        }
        println!();
    }
    println!();
    println!("measured protected LibCGI call: {pcall} cycles");
    println!("paper @28B: 98 / 193 / 437 / 448 / 460;  @100KB: 33 / 52 / 57 / 57 / 57");

    // Live spot check at 1 KB: 100 requests per model, actually served.
    let mut s = WebServer::new().expect("server");
    s.add_benchmark_files();
    println!();
    println!("live spot check (100 served requests each, 1 KB):");
    for model in ExecModel::ALL {
        let r = run_live(&mut s, model, "/file1024", 100, 9).expect("live");
        println!("  {:<22} {:>7.0} req/s", model.name(), r.rps);
    }
}
