//! Host simulation throughput: guest instructions per host second on the
//! figure7, chaos and webserver workloads, with the predecode fast path
//! on (fast) and off (baseline), plus the kext_dispatch workload, where
//! fast is verified dispatch (load-time attestation: no per-call
//! entry-window re-validation, eager predecode) and baseline is
//! unverified dispatch. Written to `BENCH_sim_throughput.json`.
//!
//! Usage: `sim_throughput [--quick] [--out <path>]`

use bench::ThroughputPoint;

fn json_escape_free_number(v: f64) -> String {
    // All values here are finite and positive; keep a stable format.
    format!("{v:.6}")
}

fn to_json(pts: &[ThroughputPoint], quick: bool) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"benchmark\": \"sim_throughput\",\n");
    s.push_str("  \"unit\": \"guest_insns_per_host_sec\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str("  \"workloads\": [\n");
    for (i, p) in pts.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"workload\": \"{}\",\n", p.workload));
        s.push_str(&format!("      \"guest_insns\": {},\n", p.fast_insns));
        s.push_str(&format!(
            "      \"fast_secs\": {},\n",
            json_escape_free_number(p.fast_secs)
        ));
        s.push_str(&format!(
            "      \"fast_steps_per_sec\": {},\n",
            json_escape_free_number(p.fast_ips())
        ));
        s.push_str(&format!(
            "      \"baseline_secs\": {},\n",
            json_escape_free_number(p.base_secs)
        ));
        s.push_str(&format!(
            "      \"baseline_steps_per_sec\": {},\n",
            json_escape_free_number(p.base_ips())
        ));
        s.push_str(&format!(
            "      \"speedup\": {}\n",
            json_escape_free_number(p.speedup())
        ));
        s.push_str(if i + 1 == pts.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_sim_throughput.json".to_string());

    let scale = if quick { 1 } else { 5 };
    let pts = bench::measure_sim_throughput(scale);

    println!("Host simulation throughput (guest instructions / host second)");
    println!(
        "{:>10} {:>12} {:>14} {:>14} {:>9}",
        "Workload", "Insns", "Baseline/s", "Fast/s", "Speedup"
    );
    for p in &pts {
        println!(
            "{:>10} {:>12} {:>14.0} {:>14.0} {:>8.2}x",
            p.workload,
            p.fast_insns,
            p.base_ips(),
            p.fast_ips(),
            p.speedup()
        );
    }

    let json = to_json(&pts, quick);
    std::fs::write(&out, json).expect("write benchmark JSON");
    println!("\nwrote {out}");
}
