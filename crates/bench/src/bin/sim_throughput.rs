//! Host simulation throughput: guest instructions per host second on the
//! figure7, chaos and webserver workloads, with the predecode fast path
//! on (fast) and off (baseline), plus the kext_dispatch workload, where
//! fast is verified dispatch (load-time attestation: no per-call
//! entry-window re-validation, eager predecode) and baseline is
//! unverified dispatch. The `figure7_hoist` and `kext_hoist` rows
//! isolate proof-directed check elision: both modes are verified, fast
//! is proof-hoisted (per-access limit/PPL checks collapsed to one guard
//! at block entry) and baseline is verified-unhoisted. Written to
//! `BENCH_sim_throughput.json`.
//!
//! A second section measures worker scaling: the same workloads sharded
//! across a `parex` pool at 1/2/4/8 workers (override with
//! `--workers 1,2,4`). Shard decompositions are fixed, so the simulated
//! work is identical at every worker count; only host wall-clock
//! changes. `host_cpus` records the machine's available parallelism —
//! speedups are bounded by it.
//!
//! Shard worlds boot **outside** the timed scaling windows (they used
//! to fold into `host_secs`); each scaling row carries the excluded
//! cost in a `boot_cycles` column.
//!
//! A third section, `fleet`, records the canaried rollout scenarios of
//! `crates/fleet`: requests served / degraded / dropped while a version
//! rolls out, the rollback latency when the canary trips, and the
//! time-to-converge of a healthy promotion.
//!
//! A fourth section, `startup`, compares cold-booting a shard world
//! against forking a warmed template (copy-on-write snapshot/fork):
//! host seconds for each, and the speedup.
//!
//! A fifth section, `durability`, covers durable checkpoints: image
//! size and save/restore latency for each world layer (machine, kernel,
//! session, replica), plus the fleet crash-recovery drills — a replica
//! killed mid-stream and restored from its checkpoint lineage, with and
//! without corrupted newest generations forcing a walk-back.
//!
//! Usage: `sim_throughput [--quick] [--out <path>] [--workers LIST]`

use bench::{
    BackendMatrixRow, DrillPoint, DurabilityPoint, FleetPoint, ScalingPoint, StartupPoint,
    ThroughputPoint,
};

fn json_escape_free_number(v: f64) -> String {
    // All values here are finite and positive; keep a stable format.
    format!("{v:.6}")
}

fn json_opt<T: std::fmt::Display>(v: Option<T>) -> String {
    v.map_or_else(|| "null".to_string(), |v| v.to_string())
}

/// The measured sections of the report, in emission order.
struct Sections<'a> {
    pts: &'a [ThroughputPoint],
    matrix: &'a [BackendMatrixRow],
    scaling: &'a [ScalingPoint],
    fleet: &'a [FleetPoint],
    startup: &'a [StartupPoint],
    durability: &'a [DurabilityPoint],
    drills: &'a [DrillPoint],
}

fn to_json(sections: &Sections<'_>, quick: bool) -> String {
    let &Sections {
        pts,
        matrix,
        scaling,
        fleet,
        startup,
        durability,
        drills,
    } = sections;
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"benchmark\": \"sim_throughput\",\n");
    s.push_str("  \"unit\": \"guest_insns_per_host_sec\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!(
        "  \"host_cpus\": {},\n",
        parex::host_parallelism()
    ));
    s.push_str("  \"workloads\": [\n");
    for (i, p) in pts.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"workload\": \"{}\",\n", p.workload));
        s.push_str(&format!("      \"guest_insns\": {},\n", p.fast_insns));
        s.push_str(&format!(
            "      \"fast_secs\": {},\n",
            json_escape_free_number(p.fast_secs)
        ));
        s.push_str(&format!(
            "      \"fast_steps_per_sec\": {},\n",
            json_escape_free_number(p.fast_ips())
        ));
        s.push_str(&format!(
            "      \"baseline_secs\": {},\n",
            json_escape_free_number(p.base_secs)
        ));
        s.push_str(&format!(
            "      \"baseline_steps_per_sec\": {},\n",
            json_escape_free_number(p.base_ips())
        ));
        s.push_str(&format!(
            "      \"speedup\": {}\n",
            json_escape_free_number(p.speedup())
        ));
        s.push_str(if i + 1 == pts.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    s.push_str("  ],\n");
    // Guest-cycle numbers: bit-reproducible across hosts, unlike the
    // wall-clock sections.
    s.push_str("  \"backends\": [\n");
    for (i, r) in matrix.iter().enumerate() {
        let (contained, total) = r.coverage();
        s.push_str("    {\n");
        s.push_str(&format!("      \"backend\": \"{}\",\n", r.backend));
        s.push_str(&format!(
            "      \"warm_call_cycles\": {},\n",
            r.warm_call_cycles
        ));
        s.push_str(&format!(
            "      \"dispatch_cycles\": {},\n",
            r.dispatch_cycles
        ));
        s.push_str(&format!(
            "      \"dispatch_per_mcycle\": {},\n",
            json_escape_free_number(r.dispatch_per_mcycle())
        ));
        s.push_str("      \"containment\": [\n");
        for (j, c) in r.containment.iter().enumerate() {
            s.push_str(&format!(
                "        {{ \"scenario\": \"{}\", \"outcome\": \"{}\", \"contained\": {} }}{}\n",
                c.scenario,
                c.outcome,
                c.contained,
                if j + 1 == r.containment.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        s.push_str("      ],\n");
        s.push_str(&format!("      \"coverage\": \"{contained}/{total}\"\n"));
        s.push_str(if i + 1 == matrix.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    s.push_str("  ],\n");
    s.push_str("  \"scaling\": [\n");
    for (i, p) in scaling.iter().enumerate() {
        // Speedup vs this workload's own 1-worker row.
        let serial = scaling
            .iter()
            .find(|q| q.workload == p.workload && q.workers == 1)
            .map(|q| q.host_secs)
            .unwrap_or(p.host_secs);
        s.push_str("    {\n");
        s.push_str(&format!("      \"workload\": \"{}\",\n", p.workload));
        s.push_str(&format!("      \"workers\": {},\n", p.workers));
        s.push_str(&format!("      \"shards\": {},\n", p.shards));
        s.push_str(&format!("      \"guest_insns\": {},\n", p.guest_insns));
        s.push_str(&format!("      \"boot_cycles\": {},\n", p.boot_cycles));
        s.push_str(&format!(
            "      \"host_secs\": {},\n",
            json_escape_free_number(p.host_secs)
        ));
        s.push_str(&format!(
            "      \"steps_per_sec\": {},\n",
            json_escape_free_number(p.ips())
        ));
        s.push_str(&format!(
            "      \"speedup_vs_1_worker\": {}\n",
            json_escape_free_number(serial / p.host_secs.max(1e-9))
        ));
        s.push_str(if i + 1 == scaling.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    s.push_str("  ],\n");
    s.push_str("  \"fleet\": [\n");
    for (i, p) in fleet.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"scenario\": \"{}\",\n", p.scenario));
        s.push_str(&format!("      \"replicas\": {},\n", p.replicas));
        s.push_str(&format!("      \"rounds\": {},\n", p.rounds));
        s.push_str(&format!("      \"served\": {},\n", p.served));
        s.push_str(&format!("      \"degraded\": {},\n", p.degraded));
        s.push_str(&format!("      \"dropped\": {},\n", p.dropped));
        s.push_str(&format!("      \"outcome\": \"{}\",\n", p.outcome));
        s.push_str(&format!(
            "      \"rollback_round\": {},\n",
            json_opt(p.rollback_round)
        ));
        s.push_str(&format!(
            "      \"rollback_latency_cycles\": {},\n",
            json_opt(p.rollback_latency_cycles)
        ));
        s.push_str(&format!(
            "      \"converged_round\": {},\n",
            json_opt(p.converged_round)
        ));
        s.push_str(&format!(
            "      \"availability_bp\": {},\n",
            p.availability_bp
        ));
        s.push_str(&format!("      \"guest_insns\": {},\n", p.guest_insns));
        s.push_str(&format!(
            "      \"host_secs\": {}\n",
            json_escape_free_number(p.host_secs)
        ));
        s.push_str(if i + 1 == fleet.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    s.push_str("  ],\n");
    s.push_str("  \"startup\": [\n");
    for (i, p) in startup.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"world\": \"{}\",\n", p.world));
        // Nanosecond resolution: a fork is sub-microsecond, which the
        // 6-decimal format used elsewhere would round to 0.0.
        s.push_str(&format!("      \"cold_boot_secs\": {:.9},\n", p.cold_secs));
        s.push_str(&format!("      \"fork_secs\": {:.9},\n", p.fork_secs));
        s.push_str(&format!(
            "      \"speedup\": {}\n",
            json_escape_free_number(p.speedup())
        ));
        s.push_str(if i + 1 == startup.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    s.push_str("  ],\n");
    s.push_str("  \"durability\": {\n");
    s.push_str("    \"images\": [\n");
    for (i, p) in durability.iter().enumerate() {
        s.push_str("      {\n");
        s.push_str(&format!("        \"world\": \"{}\",\n", p.world));
        s.push_str(&format!("        \"image_bytes\": {},\n", p.image_bytes));
        // Nanosecond resolution, as for `startup`: a machine-image save
        // is in the microseconds.
        s.push_str(&format!("        \"save_secs\": {:.9},\n", p.save_secs));
        s.push_str(&format!(
            "        \"restore_secs\": {:.9}\n",
            p.restore_secs
        ));
        s.push_str(if i + 1 == durability.len() {
            "      }\n"
        } else {
            "      },\n"
        });
    }
    s.push_str("    ],\n");
    s.push_str("    \"drills\": [\n");
    for (i, p) in drills.iter().enumerate() {
        s.push_str("      {\n");
        s.push_str(&format!("        \"scenario\": \"{}\",\n", p.scenario));
        s.push_str(&format!("        \"outcome\": \"{}\",\n", p.outcome));
        s.push_str(&format!(
            "        \"generations_walked\": {},\n",
            p.generations_walked
        ));
        s.push_str(&format!(
            "        \"recovery_degraded\": {},\n",
            p.recovery_degraded
        ));
        s.push_str(&format!(
            "        \"rounds_to_converge\": {},\n",
            json_opt(p.rounds_to_converge)
        ));
        s.push_str(&format!(
            "        \"availability_bp\": {},\n",
            p.availability_bp
        ));
        s.push_str(&format!(
            "        \"largest_image_bytes\": {},\n",
            p.largest_image_bytes
        ));
        s.push_str(&format!(
            "        \"host_secs\": {}\n",
            json_escape_free_number(p.host_secs)
        ));
        s.push_str(if i + 1 == drills.len() {
            "      }\n"
        } else {
            "      },\n"
        });
    }
    s.push_str("    ]\n  }\n}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_sim_throughput.json".to_string());
    let workers: Vec<usize> = args
        .iter()
        .position(|a| a == "--workers")
        .and_then(|i| args.get(i + 1))
        .map(|list| {
            list.split(',')
                .map(|w| w.parse().expect("--workers expects a comma-separated list"))
                .collect()
        })
        .unwrap_or_else(|| vec![1, 2, 4, 8]);

    let scale = if quick { 1 } else { 5 };
    let pts = bench::measure_sim_throughput(scale);

    println!("Host simulation throughput (guest instructions / host second)");
    println!(
        "{:>10} {:>12} {:>14} {:>14} {:>9}",
        "Workload", "Insns", "Baseline/s", "Fast/s", "Speedup"
    );
    for p in &pts {
        println!(
            "{:>10} {:>12} {:>14.0} {:>14.0} {:>8.2}x",
            p.workload,
            p.fast_insns,
            p.base_ips(),
            p.fast_ips(),
            p.speedup()
        );
    }

    let matrix = bench::measure_backend_matrix();
    println!("\nIsolation-backend matrix (guest cycles; bit-reproducible)");
    println!(
        "{:>10} {:>10} {:>10} {:>12} {:>9}",
        "Backend", "Call", "Dispatch", "Disp/Mcyc", "Coverage"
    );
    for r in &matrix {
        let (contained, total) = r.coverage();
        println!(
            "{:>10} {:>10} {:>10} {:>12.1} {:>6}/{}",
            r.backend,
            r.warm_call_cycles,
            r.dispatch_cycles,
            r.dispatch_per_mcycle(),
            contained,
            total
        );
        for c in &r.containment {
            println!("{:>22}: {}", c.scenario, c.outcome);
        }
    }

    let scaling = bench::measure_scaling_with(16, 250 * scale, 300 * scale, 240 * scale, &workers);
    println!("\nWorker scaling ({} host CPUs)", parex::host_parallelism());
    println!(
        "{:>10} {:>8} {:>8} {:>12} {:>12} {:>9}",
        "Workload", "Workers", "Shards", "Insns", "Work/s", "Speedup"
    );
    for p in &scaling {
        let serial = scaling
            .iter()
            .find(|q| q.workload == p.workload && q.workers == 1)
            .map(|q| q.host_secs)
            .unwrap_or(p.host_secs);
        println!(
            "{:>10} {:>8} {:>8} {:>12} {:>12.0} {:>8.2}x",
            p.workload,
            p.workers,
            p.shards,
            p.guest_insns,
            p.ips(),
            serial / p.host_secs.max(1e-9)
        );
    }

    let fleet = bench::measure_fleet(scale);
    println!("\nFleet rollout (canaried roll + SLO-driven rollback)");
    println!(
        "{:>10} {:>12} {:>9} {:>9} {:>8} {:>14} {:>10}",
        "Scenario", "Outcome", "Served", "Degraded", "Dropped", "RollbackCycles", "Converged"
    );
    for p in &fleet {
        println!(
            "{:>10} {:>12} {:>9} {:>9} {:>8} {:>14} {:>10}",
            p.scenario,
            p.outcome,
            p.served,
            p.degraded,
            p.dropped,
            p.rollback_latency_cycles
                .map_or_else(|| "-".to_string(), |c| c.to_string()),
            p.converged_round
                .map_or_else(|| "-".to_string(), |r| format!("round {r}")),
        );
    }

    let startup = bench::measure_startup();
    println!("\nWorld startup: cold boot vs copy-on-write fork");
    println!(
        "{:>10} {:>14} {:>14} {:>9}",
        "World", "Cold (us)", "Fork (us)", "Speedup"
    );
    for p in &startup {
        println!(
            "{:>10} {:>14.1} {:>14.3} {:>8.0}x",
            p.world,
            p.cold_secs * 1e6,
            p.fork_secs * 1e6,
            p.speedup()
        );
    }

    let durability = bench::measure_durability();
    println!("\nDurable checkpoints: image size and save/restore latency");
    println!(
        "{:>10} {:>12} {:>12} {:>14}",
        "World", "Image (B)", "Save (us)", "Restore (us)"
    );
    for p in &durability {
        println!(
            "{:>10} {:>12} {:>12.1} {:>14.1}",
            p.world,
            p.image_bytes,
            p.save_secs * 1e6,
            p.restore_secs * 1e6
        );
    }

    let drills = bench::measure_drills(scale);
    println!("\nFleet crash-recovery drills");
    println!(
        "{:>10} {:>24} {:>7} {:>10} {:>9} {:>8}",
        "Scenario", "Outcome", "Walked", "503s", "Converge", "Avail"
    );
    for p in &drills {
        println!(
            "{:>10} {:>24} {:>7} {:>10} {:>9} {:>7}bp",
            p.scenario,
            p.outcome,
            p.generations_walked,
            p.recovery_degraded,
            p.rounds_to_converge
                .map_or_else(|| "-".to_string(), |r| format!("{r} rds")),
            p.availability_bp,
        );
    }

    let json = to_json(
        &Sections {
            pts: &pts,
            matrix: &matrix,
            scaling: &scaling,
            fleet: &fleet,
            startup: &startup,
            durability: &durability,
            drills: &drills,
        },
        quick,
    );
    std::fs::write(&out, json).expect("write benchmark JSON");
    println!("\nwrote {out}");
}
