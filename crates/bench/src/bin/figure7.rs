//! Prints Figure 7: compiled filter vs interpreted BPF.

fn main() {
    let pts = bench::measure_figure7();
    println!("Figure 7: packet filter cost vs conjunction terms (all true), cycles");
    println!(
        "{:>6} {:>10} {:>12} {:>8}",
        "Terms", "BPF", "Palladium", "Ratio"
    );
    for p in &pts {
        println!(
            "{:>6} {:>10} {:>12} {:>7.2}x",
            p.terms,
            p.bpf_cycles,
            p.palladium_cycles,
            p.bpf_cycles as f64 / p.palladium_cycles as f64
        );
    }
    println!();
    // A small ASCII rendition of the figure.
    let max = pts
        .iter()
        .map(|p| p.bpf_cycles.max(p.palladium_cycles))
        .max()
        .unwrap();
    for p in &pts {
        let b = (p.bpf_cycles * 50 / max) as usize;
        let d = (p.palladium_cycles * 50 / max) as usize;
        println!("{} terms  BPF {:<52}", p.terms, "#".repeat(b));
        println!("         Pd  {:<52}", "*".repeat(d));
    }
    println!("paper: BPF grows steeply to ~1000 cycles at 4 terms; the compiled");
    println!("extension stays nearly flat and is >2x faster at 4 terms.");

    // Beyond the paper: extend the sweep to 12 terms (payload-byte tests).
    println!();
    println!("Extended sweep (beyond the paper's x-axis):");
    println!(
        "{:>6} {:>10} {:>12} {:>8}",
        "Terms", "BPF", "Palladium", "Ratio"
    );
    for p in bench::measure_figure7_extended(&[6, 8, 10, 12]) {
        println!(
            "{:>6} {:>10} {:>12} {:>7.2}x",
            p.terms,
            p.bpf_cycles,
            p.palladium_cycles,
            p.bpf_cycles as f64 / p.palladium_cycles as f64
        );
    }
}
