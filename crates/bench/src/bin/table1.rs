//! Prints Table 1: protected-call cost breakdown.

fn main() {
    let t = bench::measure_table1();
    println!("Table 1: invocation cost, CPU cycles (Pentium 200 MHz model)");
    println!(
        "{:<22} {:>6} {:>6} {:>9}",
        "Component", "Inter", "Intra", "Hardware"
    );
    for r in &t.rows {
        println!(
            "{:<22} {:>6} {:>6} {:>9.1}",
            r.name, r.inter, r.intra, r.hardware
        );
    }
    let (inter, intra, hw) = t.totals();
    println!("{:<22} {:>6} {:>6} {:>9.1}", "Total Cost", inter, intra, hw);
    println!();
    println!("paper:                    142     10        89 (rows sum to 76)");
}
