//! Prints Table 2: string reverse under three mechanisms.

fn main() {
    let rows = bench::measure_table2();
    println!("Table 2: string reverse, microseconds (200 MHz model)");
    println!(
        "{:>6} {:>14} {:>14} {:>12}",
        "Bytes", "Unprotected", "Palladium", "Linux RPC"
    );
    for r in &rows {
        println!(
            "{:>6} {:>14.2} {:>14.2} {:>12.2}",
            r.size, r.unprotected_us, r.palladium_us, r.rpc_us
        );
    }
    println!();
    println!("paper:  32B 2.20/2.79/349.19 ... 256B 15.22/15.97/423.33");
    println!();
    println!("(the protection delta stays a constant ~0.67us at every size;");
    println!(" the RPC column's fixed cost dominates until the KB range)");
}
