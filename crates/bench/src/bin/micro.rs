//! Prints the micro-measurements quoted in §5.1/§5.2.

fn main() {
    let m = bench::measure_micro();
    println!("Micro-benchmarks (paper anchors in parentheses)");
    println!(
        "segment register load:     {} cycles measured, {:.1} documented (paper: 12 vs 2-3)",
        m.seg_load_cycles, m.seg_load_documented
    );
    println!("PPL marking:");
    for (pages, cycles) in &m.ppl_marking {
        println!("  {pages:>3} pages: {cycles} cycles (paper: 3000-5000 + 45/page)");
    }
    println!(
        "dlopen: {:.1} us, seg_dlopen: {:.1} us (paper: 400 vs 420)",
        m.dlopen_us, m.seg_dlopen_us
    );
    println!(
        "SIGSEGV detection-to-delivery: {} cycles (paper: 3,325)",
        m.sigsegv_cycles
    );
    println!(
        "kernel extension #GP processing: {} cycles (paper: 1,020)",
        m.kext_abort_cycles
    );
    println!();
    println!("IPC comparison (published numbers, §2.2/§5.1):");
    println!(
        "{:<36} {:>8} {:>10} {:>10} {:>9}",
        "Mechanism", "Cycles", "us", "Crossings", "CtxSw"
    );
    for i in &m.ipc {
        println!(
            "{:<36} {:>8} {:>10.2} {:>10} {:>9}",
            i.name,
            i.cycles,
            i.latency_us(),
            i.crossings,
            i.context_switches
        );
    }

    println!();
    println!("Protection-approach comparison (§2.3):");
    println!(
        "{:<36} {:>9} {:>14} {:>12}",
        "Approach", "Crossing", "Slowdown", "Break-even"
    );
    for a in baselines::comparison::all() {
        let be = baselines::comparison::break_even_work(&a)
            .map(|w| format!("{w} cy work"))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<36} {:>7}cy {:>6.2}x-{:.2}x {:>12}",
            a.name, a.crossing_cycles, a.slowdown.0, a.slowdown.1, be
        );
    }
}
