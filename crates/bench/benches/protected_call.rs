//! Table 1 bench: regenerates the invocation-cost breakdown, then times
//! how fast the host simulates protected calls (Criterion).

use criterion::{criterion_group, criterion_main, Criterion};

use asm86::Assembler;
use minikernel::Kernel;
use palladium::user_ext::{DlOptions, ExtensibleApp};

fn print_table1() {
    let t = bench::measure_table1();
    println!("\nTable 1 (simulated cycles): Inter/Intra/Hardware");
    for r in &t.rows {
        println!(
            "  {:<22} {:>5} {:>5} {:>7.1}",
            r.name, r.inter, r.intra, r.hardware
        );
    }
    let (inter, intra, hw) = t.totals();
    println!(
        "  {:<22} {:>5} {:>5} {:>7.1}   (paper: 142 / 10 / 89)",
        "Total", inter, intra, hw
    );
}

fn bench_protected_call(c: &mut Criterion) {
    print_table1();

    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).unwrap();
    let h = app
        .seg_dlopen(
            &mut k,
            &Assembler::assemble("f:\nret\n").unwrap(),
            DlOptions::default(),
        )
        .unwrap();
    let prep = app.seg_dlsym(&mut k, h, "f").unwrap();
    app.call_extension(&mut k, prep, 0).unwrap();

    c.bench_function("simulate_protected_call", |b| {
        b.iter(|| app.call_extension(&mut k, prep, 0).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_protected_call
}
criterion_main!(benches);
