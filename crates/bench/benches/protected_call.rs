//! Table 1 bench: regenerates the invocation-cost breakdown, then times
//! how fast the host simulates protected calls (Criterion).

use asm86::Assembler;
use minikernel::Kernel;
use palladium::user_ext::{DlopenOptions, ExtensibleApp};

/// Minimal timing harness (criterion is unavailable offline): runs the
/// closure `iters` times after a short warmup and prints mean ns/iter.
fn time_it<F: FnMut()>(name: &str, iters: u32, mut f: F) {
    for _ in 0..iters.div_ceil(10) {
        f();
    }
    let start = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = start.elapsed().as_nanos() / iters as u128;
    println!("  {name:<28} {per:>12} ns/iter");
}

fn print_table1() {
    let t = bench::measure_table1();
    println!("\nTable 1 (simulated cycles): Inter/Intra/Hardware");
    for r in &t.rows {
        println!(
            "  {:<22} {:>5} {:>5} {:>7.1}",
            r.name, r.inter, r.intra, r.hardware
        );
    }
    let (inter, intra, hw) = t.totals();
    println!(
        "  {:<22} {:>5} {:>5} {:>7.1}   (paper: 142 / 10 / 89)",
        "Total", inter, intra, hw
    );
}

fn main() {
    print_table1();

    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).unwrap();
    let h = app
        .dlopen(
            &mut k,
            &Assembler::assemble("f:\nret\n").unwrap(),
            &DlopenOptions::new(),
        )
        .unwrap();
    let prep = app.seg_dlsym(&mut k, h, "f").unwrap();
    app.call_extension(&mut k, prep, 0).unwrap();

    println!();
    time_it("simulate_protected_call", 20, || {
        app.call_extension(&mut k, prep, 0).unwrap();
    });
}
