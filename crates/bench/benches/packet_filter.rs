//! Figure 7 bench: regenerates the filter-cost series, then times both
//! mechanisms at four terms.

use criterion::{criterion_group, criterion_main, Criterion};
use netfilter::{paper_conjunction, reference_packet, FilterBench};

fn print_figure7() {
    println!("\nFigure 7 (simulated cycles):");
    println!(
        "  {:>5} {:>8} {:>11} {:>7}",
        "Terms", "BPF", "Palladium", "Ratio"
    );
    for p in bench::measure_figure7() {
        println!(
            "  {:>5} {:>8} {:>11} {:>6.2}x",
            p.terms,
            p.bpf_cycles,
            p.palladium_cycles,
            p.bpf_cycles as f64 / p.palladium_cycles as f64
        );
    }
    println!("  (paper: >2x at 4 terms, BPF grows steeply, compiled nearly flat)");
}

fn bench_filters(c: &mut Criterion) {
    print_figure7();

    let f = paper_conjunction(4);
    let pkt = reference_packet(64);
    let mut bench = FilterBench::new().unwrap();
    bench.install_compiled(&f).unwrap();
    bench.run_compiled(&pkt).unwrap();
    bench.run_bpf(&f, &pkt).unwrap();

    let mut group = c.benchmark_group("filter_4_terms");
    group.bench_function("palladium_compiled", |b| {
        b.iter(|| bench.run_compiled(&pkt).unwrap())
    });
    group.bench_function("bpf_interpreted", |b| {
        b.iter(|| bench.run_bpf(&f, &pkt).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_filters
}
criterion_main!(benches);
