//! Figure 7 bench: regenerates the filter-cost series, then times both
//! mechanisms at four terms.

use netfilter::{paper_conjunction, reference_packet, FilterBench};

/// Minimal timing harness (criterion is unavailable offline): runs the
/// closure `iters` times after a short warmup and prints mean ns/iter.
fn time_it<F: FnMut()>(name: &str, iters: u32, mut f: F) {
    for _ in 0..iters.div_ceil(10) {
        f();
    }
    let start = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = start.elapsed().as_nanos() / iters as u128;
    println!("  {name:<28} {per:>12} ns/iter");
}

fn print_figure7() {
    println!("\nFigure 7 (simulated cycles):");
    println!(
        "  {:>5} {:>8} {:>11} {:>7}",
        "Terms", "BPF", "Palladium", "Ratio"
    );
    for p in bench::measure_figure7() {
        println!(
            "  {:>5} {:>8} {:>11} {:>6.2}x",
            p.terms,
            p.bpf_cycles,
            p.palladium_cycles,
            p.bpf_cycles as f64 / p.palladium_cycles as f64
        );
    }
    println!("  (paper: >2x at 4 terms, BPF grows steeply, compiled nearly flat)");
}

fn main() {
    print_figure7();

    let f = paper_conjunction(4);
    let pkt = reference_packet(64);
    let mut bench = FilterBench::new().unwrap();
    bench.install_compiled(&f).unwrap();
    bench.run_compiled(&pkt).unwrap();
    bench.run_bpf(&f, &pkt).unwrap();

    println!("\nhost time per filter run (4 terms):");
    time_it("palladium_compiled", 20, || {
        bench.run_compiled(&pkt).unwrap();
    });
    time_it("bpf_interpreted", 20, || {
        bench.run_bpf(&f, &pkt).unwrap();
    });
}
