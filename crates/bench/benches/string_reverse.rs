//! Table 2 bench: regenerates the string-reverse comparison, then times
//! the 256-byte protected reverse simulation.

use criterion::{criterion_group, criterion_main, Criterion};

fn print_table2() {
    println!("\nTable 2 (microseconds at the simulated 200 MHz):");
    println!(
        "  {:>5} {:>12} {:>11} {:>10}",
        "Bytes", "Unprotected", "Palladium", "Linux RPC"
    );
    for r in bench::measure_table2() {
        println!(
            "  {:>5} {:>12.2} {:>11.2} {:>10.2}",
            r.size, r.unprotected_us, r.palladium_us, r.rpc_us
        );
    }
    println!("  (paper: 32B 2.20/2.79/349.19 ... 256B 15.22/15.97/423.33)");
}

fn bench_reverse(c: &mut Criterion) {
    print_table2();
    c.bench_function("measure_table2_full", |b| b.iter(bench::measure_table2));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_reverse
}
criterion_main!(benches);
