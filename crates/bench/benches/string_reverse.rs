//! Table 2 bench: regenerates the string-reverse comparison, then times
//! the 256-byte protected reverse simulation.

/// Minimal timing harness (criterion is unavailable offline): runs the
/// closure `iters` times after a short warmup and prints mean ns/iter.
fn time_it<F: FnMut()>(name: &str, iters: u32, mut f: F) {
    for _ in 0..iters.div_ceil(10) {
        f();
    }
    let start = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = start.elapsed().as_nanos() / iters as u128;
    println!("  {name:<28} {per:>12} ns/iter");
}

fn print_table2() {
    println!("\nTable 2 (microseconds at the simulated 200 MHz):");
    println!(
        "  {:>5} {:>12} {:>11} {:>10}",
        "Bytes", "Unprotected", "Palladium", "Linux RPC"
    );
    for r in bench::measure_table2() {
        println!(
            "  {:>5} {:>12.2} {:>11.2} {:>10.2}",
            r.size, r.unprotected_us, r.palladium_us, r.rpc_us
        );
    }
    println!("  (paper: 32B 2.20/2.79/349.19 ... 256B 15.22/15.97/423.33)");
}

fn main() {
    print_table2();
    println!();
    time_it("measure_table2_full", 10, || {
        bench::measure_table2();
    });
}
