//! Ablation bench: quantifies the design choices DESIGN.md calls out.
//!
//! 1. **Stack-pointer save location** (§4.5.1): Palladium saves ESP/EBP in
//!    the application segment; saving them in the TSS would require a
//!    system call per protected invocation.
//! 2. **SFI vs Palladium** (§2.3): SFI pays per memory operation,
//!    Palladium pays once per crossing; the crossover is where an
//!    extension body's sandboxed-op count times the per-op overhead
//!    exceeds the 142-cycle crossing.
//! 3. **Eager vs lazy GOT binding** (§4.4.2): lazy binding would leave the
//!    GOT writable at PPL 1 — a security hole — and pay a resolver call on
//!    first use.

use asm86::encode::encode_program;
use asm86::isa::{Insn, Mem, Reg, Src};
use baselines::sfi::{self, Sandbox, SfiPolicy};
use x86sim::cycles::{measured_cost, measured_event, Event};
use x86sim::desc::{Descriptor, Selector};
use x86sim::machine::{Exit, Machine};

fn run_flat(prog: &[Insn]) -> u64 {
    let mut m = Machine::new();
    let c = m.gdt.push(Descriptor::flat_code(0));
    let d = m.gdt.push(Descriptor::flat_data(0));
    let mut code = prog.to_vec();
    code.push(Insn::Hlt);
    m.mem.write_bytes(0x1000, &encode_program(&code));
    m.force_seg_from_table(asm86::isa::SegReg::Cs, Selector::new(c, false, 0));
    m.force_seg_from_table(asm86::isa::SegReg::Ss, Selector::new(d, false, 0));
    m.force_seg_from_table(asm86::isa::SegReg::Ds, Selector::new(d, false, 0));
    m.cpu.set_reg(Reg::Esp, 0x8000);
    m.cpu.eip = 0x1000;
    // Warm: run once, then measure a fresh machine? The machine is
    // deterministic; subtract the hlt cost.
    match m.run(100_000) {
        Exit::Hlt => {}
        other => panic!("unexpected exit {other:?}"),
    }
    m.cycles() - measured_cost(&Insn::Hlt)
}

fn store_heavy_body(n: usize) -> Vec<Insn> {
    // n stores into the sandbox region plus light ALU work, the
    // worst case for write-protect SFI.
    let mut v = Vec::new();
    for i in 0..n {
        v.push(Insn::Mov(Reg::Eax, Src::Imm(i as i32)));
        v.push(Insn::Store(
            Mem::abs(0x0010_0000 + 4 * i as u32),
            Src::Reg(Reg::Eax),
        ));
    }
    v
}

fn main() {
    println!("Ablation 1: where to save the application stack pointers (§4.5.1)");
    let in_segment = 2 * measured_cost(&Insn::Store(Mem::abs(0), Src::Reg(Reg::Esp)))
        + 2 * measured_cost(&Insn::Load(Reg::Esp, Mem::abs(0)));
    let via_tss = measured_event(Event::IntGate) + measured_event(Event::IretResume) + 160;
    println!("  save/restore in application segment: {in_segment} cycles");
    println!("  save/restore via TSS (needs a syscall): ~{via_tss} cycles");
    println!("  -> the paper's choice avoids a {via_tss}-cycle syscall per call\n");

    println!("Ablation 2: SFI per-op overhead vs Palladium's one-time crossing (§2.3)");
    let sb = Sandbox {
        base: 0x0010_0000,
        size: 0x1_0000,
    };
    println!(
        "  {:>8} {:>10} {:>10} {:>10} {:>12}",
        "Ops", "Plain", "SFI(W)", "Overhead", "Palladium"
    );
    for n in [4usize, 16, 36, 64, 256] {
        let body = store_heavy_body(n);
        let plain = run_flat(&body);
        let (safe, _) = sfi::rewrite(&body, &sb, SfiPolicy::WriteProtect).unwrap();
        let sandboxed = run_flat(&safe);
        let overhead = (sandboxed - plain) as f64 / plain as f64 * 100.0;
        // Palladium: same body unsandboxed plus the 142-cycle crossing.
        let palladium = plain + 142;
        println!(
            "  {:>8} {:>10} {:>10} {:>9.0}% {:>12}",
            n, plain, sandboxed, overhead, palladium
        );
    }
    println!("  (paper: SFI overhead ranges from under 1% to 220%)\n");

    println!("Ablation 3: sensitivity of the 142-cycle call to gate hardware");
    // What would Palladium cost on faster privilege-transition hardware?
    // The non-transfer part of the protected call is fixed; sweep the two
    // far-transfer events.
    let fixed = 142 - measured_event(Event::FarRetOuter) - measured_event(Event::GateCallInner);
    println!(
        "  {:>26} {:>8} {:>8} {:>10}",
        "Scenario", "lret", "lcall", "Total"
    );
    for (name, lret, lcall) in [
        (
            "Pentium measured (paper)",
            measured_event(Event::FarRetOuter),
            measured_event(Event::GateCallInner),
        ),
        ("Pentium manual", 19u64, 41u64),
        ("SYSENTER-class (~P6)", 12, 25),
        ("hypothetical 1-cycle gates", 1, 1),
    ] {
        println!(
            "  {:>26} {:>8} {:>8} {:>10}",
            name,
            lret,
            lcall,
            fixed + lret + lcall
        );
    }
    println!("  -> even free gates leave {fixed} cycles of software sequence;");
    println!("     the mechanism's floor is the Figure 6 choreography.\n");

    println!("Ablation 4: eager vs lazy GOT binding (§4.4.2)");
    let plt_jump = measured_cost(&Insn::JmpM(Mem::abs(0)));
    let resolver = 2_000u64;
    println!("  eager: sealed read-only GOT, {plt_jump} cycles per PLT jump");
    println!("  lazy:  writable GOT at PPL 1 (extensions could redirect the");
    println!("         application's library calls) + ~{resolver}-cycle resolver");
    println!("         on first use. Palladium requires eager binding.");
}
