//! Table 3 bench: regenerates the CGI throughput table, then times live
//! request handling per execution model.

use criterion::{criterion_group, criterion_main, Criterion};
use webserver::{ExecModel, WebServer};

fn print_table3() {
    let (rows, pcall) = bench::measure_table3();
    println!("\nTable 3 (requests/second):");
    print!("  {:>9}", "Size");
    for m in ExecModel::ALL {
        print!(" {:>20}", m.name());
    }
    println!();
    for r in &rows {
        print!("  {:>8}B", r.size);
        for v in r.rps {
            print!(" {:>20.0}", v);
        }
        println!();
    }
    println!("  measured protected call: {pcall} cycles");
    println!("  (paper @28B: 98 / 193 / 437 / 448 / 460)");
}

fn bench_live_requests(c: &mut Criterion) {
    print_table3();

    let mut s = WebServer::new().unwrap();
    s.add_benchmark_files();
    let req = webserver::http::get_request("/file1024");
    let mut group = c.benchmark_group("live_request");
    for model in [ExecModel::StaticFile, ExecModel::LibCgiProtected] {
        group.bench_function(model.name(), |b| b.iter(|| s.handle(&req, model).unwrap()));
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_live_requests
}
criterion_main!(benches);
