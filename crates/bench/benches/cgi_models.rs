//! Table 3 bench: regenerates the CGI throughput table, then times live
//! request handling per execution model.

use webserver::{ExecModel, WebServer};

/// Minimal timing harness (criterion is unavailable offline): runs the
/// closure `iters` times after a short warmup and prints mean ns/iter.
fn time_it<F: FnMut()>(name: &str, iters: u32, mut f: F) {
    for _ in 0..iters.div_ceil(10) {
        f();
    }
    let start = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = start.elapsed().as_nanos() / iters as u128;
    println!("  {name:<28} {per:>12} ns/iter");
}

fn print_table3() {
    let (rows, pcall) = bench::measure_table3();
    println!("\nTable 3 (requests/second):");
    print!("  {:>9}", "Size");
    for m in ExecModel::ALL {
        print!(" {:>20}", m.name());
    }
    println!();
    for r in &rows {
        print!("  {:>8}B", r.size);
        for v in r.rps {
            print!(" {:>20.0}", v);
        }
        println!();
    }
    println!("  measured protected call: {pcall} cycles");
    println!("  (paper @28B: 98 / 193 / 437 / 448 / 460)");
}

fn main() {
    print_table3();

    let mut s = WebServer::new().unwrap();
    s.add_benchmark_files();
    let req = webserver::http::get_request("/file1024");
    println!("\nhost time per live request:");
    for model in [ExecModel::StaticFile, ExecModel::LibCgiProtected] {
        time_it(model.name(), 20, || {
            s.handle(&req, model).unwrap();
        });
    }
}
