//! `verifier` — load-time static verification of extension object code.
//!
//! The paper positions Palladium's segment/page hardware checks against
//! purely software safety arguments (SFI rewriting, static verification).
//! This crate supplies the static counterpart: a small analysis that runs
//! at `insmod`/`seg_dlopen` time over the *linked* image, before a single
//! extension instruction executes. It
//!
//! 1. recovers a control-flow graph by reachability from the exported
//!    entry points ([`asm86::disasm::Cfg`]) — never a linear sweep, since
//!    extension images interleave dispatch slots and data with code;
//! 2. scans for privileged or reserved instructions outside the permitted
//!    set for the target SPL (`hlt`, segment-register loads, `iret`,
//!    `lret`, unlisted `int` vectors, unlisted `lcall` gates);
//! 3. runs a loop-aware interval abstract interpretation over registers
//!    used as addresses — dominator tree, natural loops, branch-condition
//!    refinement, widening only at retreating-edge targets plus
//!    descending narrowing — rejecting memory accesses that *provably*
//!    fall outside the allowed ranges (extension segment, stack, heap);
//! 4. validates every outbound control transfer: static branches must
//!    stay in-image or land in whitelisted code ranges (EFT stubs, PLT,
//!    trampolines), far calls must name registered call gates, and
//!    indirect transfers must resolve to a verified target or a
//!    loader-sealed dispatch slot; and
//! 5. emits a [`ProofMap`]: per basic block, the facts it *proved*
//!    (bounded DS access region, no privileged instructions, pure
//!    fall-through, loop trip-bound class), carried inside the
//!    [`Attestation`] for the dispatch layer to cash in as elided
//!    runtime checks (see `x86sim`'s proof tokens).
//!
//! The analysis is deliberately *one-sided*: it rejects only violations it
//! can prove (a constant or bounded address outside every allowed range, a
//! reserved opcode on a reachable path). Addresses it cannot bound are
//! accepted and left to the segment-limit and page-protection hardware,
//! which remains the soundness backstop — exactly the division of labour
//! DESIGN.md §7 describes. What a `Verified` attestation licenses eliding
//! is therefore the *redundant software* work on the dispatch path
//! (per-call entry re-validation, lazy predecode, and — through the
//! proof map — per-instruction segment checks whose outcome the proof
//! predetermines), never the hardware checks themselves.

#![warn(clippy::pedantic)]
#![allow(
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_lossless,
    clippy::missing_errors_doc,
    clippy::missing_panics_doc,
    clippy::module_name_repetitions,
    clippy::must_use_candidate,
    clippy::redundant_closure_for_method_calls,
    clippy::similar_names,
    clippy::too_many_lines
)]

mod interval;
mod policy;
mod proofs;
mod scan;

pub use policy::{VerifyError, VerifyPolicy};
pub use proofs::{BlockProof, LoopClass, ProofMap};
pub use scan::verify_image;

/// Proof-carrying summary of a successful verification, stored by the
/// loader next to the segment's configuration. Its existence is what
/// licenses the verified-dispatch fast path, and its [`ProofMap`] is
/// what licenses per-block check elision.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Attestation {
    /// Entry points traversed (exports plus resolved indirect targets).
    pub entries: u32,
    /// Reachable instructions verified.
    pub insns: u32,
    /// Basic blocks in the recovered CFG.
    pub blocks: u32,
    /// Memory accesses examined.
    pub memory_checks: u32,
    /// Accesses proven in-range by the interval analysis.
    pub proven_accesses: u32,
    /// Accesses left to the hardware (unbounded address).
    pub unknown_accesses: u32,
    /// Static transfers that leave the image for whitelisted code.
    pub external_transfers: u32,
    /// Indirect transfers resolved to a concrete verified target.
    pub resolved_indirect: u32,
    /// Per-block proven facts.
    pub proofs: ProofMap,
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm86::encode::DecodeError;
    use asm86::isa::{AluOp, Cond, Insn, Mem, Reg::*, Src};
    use asm86::CodeBuilder;
    use std::collections::BTreeMap;

    const SEG: u32 = 0x8000; // 8-page extension segment
    const LOAD: u32 = 0x2040;

    fn kernel_policy() -> VerifyPolicy {
        VerifyPolicy::new(1, LOAD)
            .allow_data(0, SEG)
            .allow_vector(0x81)
    }

    fn link(b: CodeBuilder) -> Vec<u8> {
        b.finish().unwrap().link(LOAD, &BTreeMap::new()).unwrap()
    }

    #[test]
    fn benign_module_is_accepted_with_stats() {
        let mut b = CodeBuilder::new();
        b.label("entry").unwrap();
        b.emit(Insn::Load(Eax, Mem::based(Esp, 4)));
        b.emit(Insn::Alu(AluOp::Add, Eax, Src::Imm(1)));
        b.emit(Insn::Ret);
        let image = link(b);
        let at = verify_image(&image, &[0], &kernel_policy()).unwrap();
        assert_eq!(at.insns, 3);
        assert_eq!(at.blocks, 1);
        assert_eq!(at.memory_checks, 1);
        assert_eq!(at.unknown_accesses, 1, "esp-relative is hardware's job");
        assert_eq!(at.proofs.len(), 1, "one proof per block");
        let p = at.proofs.get(0).unwrap();
        assert!(p.no_privileged);
        assert!(!p.fall_through_only, "ends in ret");
        assert_eq!(p.loop_class, LoopClass::NotInLoop);
        assert_eq!(p.ds_bounds, None, "the esp load goes through SS");
    }

    #[test]
    fn privileged_instructions_are_rejected() {
        for insn in [
            Insn::Hlt,
            Insn::MovToSeg(asm86::SegReg::Ds, Eax),
            Insn::PopSeg(asm86::SegReg::Es),
            Insn::Iret,
            Insn::Lret,
            Insn::LretN(8),
        ] {
            let mut b = CodeBuilder::new();
            b.emit(insn);
            b.emit(Insn::Ret);
            let err = verify_image(&link(b), &[0], &kernel_policy()).unwrap_err();
            assert!(
                matches!(err, VerifyError::Privileged { offset: 0, .. }),
                "{err}"
            );
        }
    }

    #[test]
    fn unreachable_privileged_bytes_are_no_concern() {
        let mut b = CodeBuilder::new();
        b.emit(Insn::Ret);
        b.emit(Insn::Hlt); // dead bytes after the return
        verify_image(&link(b), &[0], &kernel_policy()).unwrap();
    }

    #[test]
    fn interrupt_vectors_follow_the_allowlist() {
        let mut b = CodeBuilder::new();
        b.emit(Insn::Int(0x81));
        b.emit(Insn::Ret);
        verify_image(&link(b), &[0], &kernel_policy()).unwrap();

        let mut b = CodeBuilder::new();
        b.emit(Insn::Int(0x80));
        b.emit(Insn::Ret);
        let err = verify_image(&link(b), &[0], &kernel_policy()).unwrap_err();
        assert_eq!(
            err,
            VerifyError::ForbiddenVector {
                offset: 0,
                vector: 0x80
            }
        );
    }

    #[test]
    fn constant_out_of_segment_store_is_rejected() {
        let mut b = CodeBuilder::new();
        b.emit(Insn::Store(Mem::abs(0xC000_0000), Src::Imm(1)));
        b.emit(Insn::Ret);
        let err = verify_image(&link(b), &[0], &kernel_policy()).unwrap_err();
        assert!(
            matches!(
                err,
                VerifyError::OutOfSegment {
                    offset: 0,
                    lo: 0xC000_0000,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn computed_constant_address_is_tracked_through_registers() {
        // mov ebx, 0xBFFF0000; add ebx, 0x10000; mov [ebx], eax
        let mut b = CodeBuilder::new();
        b.emit(Insn::Mov(Ebx, Src::Imm(0xBFFF_0000u32 as i32)));
        b.emit(Insn::Alu(AluOp::Add, Ebx, Src::Imm(0x10000)));
        b.emit(Insn::Store(Mem::based(Ebx, 0), Src::Reg(Eax)));
        b.emit(Insn::Ret);
        let err = verify_image(&link(b), &[0], &kernel_policy()).unwrap_err();
        assert!(
            matches!(
                err,
                VerifyError::OutOfSegment {
                    lo: 0xC000_0000,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn in_segment_constant_store_is_proven() {
        let mut b = CodeBuilder::new();
        b.emit(Insn::Store(Mem::abs(0x100), Src::Imm(7)));
        b.emit(Insn::Ret);
        let at = verify_image(&link(b), &[0], &kernel_policy()).unwrap();
        assert_eq!(at.proven_accesses, 1);
        let p = at.proofs.get(0).unwrap();
        assert_eq!(p.ds_bounds, Some((0x100, 0x103)));
        assert!(p.ds_stores && !p.ds_loads);
    }

    #[test]
    fn runtime_pointer_is_left_to_hardware() {
        // The argument is a pointer we cannot bound: accepted as unknown.
        let mut b = CodeBuilder::new();
        b.emit(Insn::Load(Ecx, Mem::based(Esp, 4)));
        b.emit(Insn::Load(Eax, Mem::based(Ecx, 0)));
        b.emit(Insn::Ret);
        let at = verify_image(&link(b), &[0], &kernel_policy()).unwrap();
        assert_eq!(at.unknown_accesses, 2);
        let p = at.proofs.get(0).unwrap();
        assert_eq!(
            p.ds_bounds, None,
            "an unbounded DS access forfeits the block's bounds fact"
        );
    }

    #[test]
    fn far_calls_need_registered_gates() {
        let mut b = CodeBuilder::new();
        b.emit(Insn::Lcall(0x3B, 0));
        b.emit(Insn::Ret);
        let err = verify_image(&link(b), &[0], &kernel_policy()).unwrap_err();
        assert_eq!(
            err,
            VerifyError::ForbiddenGate {
                offset: 0,
                selector: 0x3B
            }
        );
        let ok = verify_image(
            &{
                let mut b = CodeBuilder::new();
                b.emit(Insn::Lcall(0x3B, 0));
                b.emit(Insn::Ret);
                link(b)
            },
            &[0],
            &kernel_policy().allow_gate(0x3B),
        );
        ok.unwrap();
    }

    #[test]
    fn external_branch_must_hit_whitelisted_code() {
        let mut b = CodeBuilder::new();
        b.emit(Insn::Call(0x0001_0000));
        b.emit(Insn::Ret);
        let image = link(b);
        let err = verify_image(&image, &[0], &kernel_policy()).unwrap_err();
        assert!(
            matches!(err, VerifyError::BranchOutOfRange { offset: 0, .. }),
            "{err}"
        );

        // Whitelist the landing range and it passes.
        let target = LOAD + 5 + 0x0001_0000;
        let policy = kernel_policy().allow_code(target, target + 16);
        let at = verify_image(&image, &[0], &policy).unwrap();
        assert_eq!(at.external_transfers, 1);
    }

    #[test]
    fn register_indirect_with_unknown_target_is_rejected() {
        let mut b = CodeBuilder::new();
        b.emit(Insn::JmpReg(Edi));
        let err = verify_image(&link(b), &[0], &kernel_policy()).unwrap_err();
        assert_eq!(err, VerifyError::IndirectUnresolved { offset: 0 });
    }

    #[test]
    fn register_indirect_with_constant_target_is_traversed() {
        // mov ecx, &helper; call ecx — the helper must then verify too.
        let mut b = CodeBuilder::new();
        b.mov_label(Ecx, "helper");
        b.emit(Insn::CallReg(Ecx));
        b.emit(Insn::Ret);
        b.label("helper").unwrap();
        b.emit(Insn::Int(0x80)); // poison in the resolved target
        b.emit(Insn::Ret);
        let err = verify_image(&link(b), &[0], &kernel_policy()).unwrap_err();
        assert!(
            matches!(err, VerifyError::ForbiddenVector { vector: 0x80, .. }),
            "{err}"
        );
    }

    #[test]
    fn runtime_written_dispatch_slot_is_accepted() {
        // The service-stub return linkage: pop [slot]; ...; jmp [slot].
        let mut b = CodeBuilder::new();
        b.label("stub").unwrap();
        b.popm_label("slot", 0);
        b.jmpm_label("slot", 0);
        b.label("slot").unwrap();
        b.dword(0);
        let at = verify_image(&link(b), &[0], &kernel_policy()).unwrap();
        assert_eq!(at.resolved_indirect, 1);
    }

    #[test]
    fn overflowed_dispatch_slot_is_rejected() {
        // The chaos RelocOverflow shape: jmp [slot] where the linked slot
        // holds an address far outside the module.
        let mut b = CodeBuilder::new();
        b.jmpm_label("slot", 0);
        b.label("slot").unwrap();
        b.dword(0x1A00_0000);
        let err = verify_image(&link(b), &[0], &kernel_policy()).unwrap_err();
        assert_eq!(
            err,
            VerifyError::BadIndirectTarget {
                offset: 0,
                value: 0x1A00_0000
            }
        );
    }

    #[test]
    fn data_interleaved_with_code_is_skipped() {
        let mut b = CodeBuilder::new();
        b.label("entry").unwrap();
        b.load_label(Eax, "table", 0);
        b.emit(Insn::Ret);
        b.label("table").unwrap();
        b.bytes(&[0xFF; 16]); // undecodable as instructions
        let at = verify_image(&link(b), &[0], &kernel_policy()).unwrap();
        assert_eq!(at.insns, 2);
        assert_eq!(at.proven_accesses, 1, "table load lands inside the image");
    }

    #[test]
    fn loops_terminate_via_widening() {
        let mut b = CodeBuilder::new();
        b.label("entry").unwrap();
        b.emit(Insn::Mov(Eax, Src::Imm(0)));
        b.label("loop").unwrap();
        b.emit(Insn::Inc(Eax));
        b.emit(Insn::Cmp(Eax, Src::Imm(100)));
        b.jcc_label(Cond::L, "loop");
        b.emit(Insn::Ret);
        verify_image(&link(b), &[0], &kernel_policy()).unwrap();
    }

    #[test]
    fn truncated_image_is_a_decode_error() {
        let mut b = CodeBuilder::new();
        b.emit(Insn::Mov(Eax, Src::Imm(1)));
        let mut image = link(b);
        image.truncate(3);
        let err = verify_image(&image, &[0], &kernel_policy()).unwrap_err();
        assert!(matches!(
            err,
            VerifyError::Decode {
                offset: 0,
                cause: DecodeError::Truncated
            }
        ));
    }

    #[test]
    fn loader_sealed_slots_are_trusted() {
        // jmp [got] where the GOT page is outside the image but declared
        // sealed by the loader (the PLT pattern).
        let got = 0x7000;
        let mut b = CodeBuilder::new();
        b.emit(Insn::JmpM(Mem::abs(got)));
        let policy = kernel_policy().allow_slots(got, got + 0x1000);
        verify_image(&link(b), &[0], &policy).unwrap();
    }

    // ----- proof-map tests -------------------------------------------------

    /// A bounded table-walk loop: `eax` scans `[0, 0x100)` in steps of 4,
    /// each iteration loading `table[eax]` through a `lea`-computed
    /// pointer. The refinement + narrowing pipeline must prove the loop
    /// body's DS access bounded even though the counter crosses a widened
    /// loop head.
    fn bounded_loop_module() -> Vec<u8> {
        let mut b = CodeBuilder::new();
        b.label("entry").unwrap();
        b.emit(Insn::Mov(Eax, Src::Imm(0)));
        b.emit(Insn::Mov(Esi, Src::Imm(0)));
        b.label("lp").unwrap();
        b.mov_label(Ebx, "table");
        b.emit(Insn::Alu(AluOp::Add, Ebx, Src::Reg(Eax)));
        b.emit(Insn::AluM(AluOp::Add, Esi, Mem::based(Ebx, 0)));
        b.emit(Insn::Alu(AluOp::Add, Eax, Src::Imm(4)));
        b.emit(Insn::Cmp(Eax, Src::Imm(0x100)));
        b.jcc_label(Cond::B, "lp");
        b.emit(Insn::Mov(Eax, Src::Reg(Esi)));
        b.emit(Insn::Ret);
        b.label("table").unwrap();
        for _ in 0..0x41 {
            b.dword(1);
        }
        link(b)
    }

    #[test]
    fn counted_loop_body_gets_bounded_ds_proof() {
        let image = bounded_loop_module();
        let at = verify_image(&image, &[0], &kernel_policy()).unwrap();
        // Every access in the loop body was proven (none left unknown).
        assert_eq!(at.unknown_accesses, 0, "{at:?}");
        assert!(at.proven_accesses >= 1);
        // Find the loop body block: it holds the AluM access.
        let body = at
            .proofs
            .blocks
            .values()
            .find(|p| p.ds_bounds.is_some())
            .expect("a block with proven DS bounds");
        let (lo, hi) = body.ds_bounds.unwrap();
        // Counter narrows to [0, 0xFF] (the domain is stride-blind), so
        // the proven range is [table, table+0xFF+3] — inside the 0x104-
        // byte table.
        assert_eq!(hi - lo, 0x102, "loop covers the whole table");
        assert!(body.ds_loads && !body.ds_stores);
        assert!(
            matches!(body.loop_class, LoopClass::Counted { .. }),
            "{:?}",
            body.loop_class
        );
    }

    #[test]
    fn loop_whose_last_iteration_escapes_is_not_proven() {
        // Same loop, but the table sits so close to the segment end that
        // the final iteration's access straddles the boundary: interval
        // [base, base+0x103] is not contained, so the block must NOT get
        // a bounds proof (the access stays `unknown`, hardware's job).
        let mut b = CodeBuilder::new();
        b.label("entry").unwrap();
        b.emit(Insn::Mov(Eax, Src::Imm((SEG - 0x20) as i32)));
        b.label("lp").unwrap();
        b.emit(Insn::Store(Mem::based(Eax, 0), Src::Imm(1)));
        b.emit(Insn::Alu(AluOp::Add, Eax, Src::Imm(4)));
        b.emit(Insn::Cmp(Eax, Src::Imm((SEG + 4) as i32)));
        b.jcc_label(Cond::B, "lp");
        b.emit(Insn::Ret);
        let at = verify_image(&link(b), &[0], &kernel_policy()).unwrap();
        assert!(at.unknown_accesses >= 1, "{at:?}");
        assert!(
            at.proofs.blocks.values().all(|p| p.ds_bounds.is_none()),
            "an escaping loop access must not be proven: {at:?}"
        );
    }

    #[test]
    fn attestation_and_proofs_are_deterministic() {
        let image = bounded_loop_module();
        let a = verify_image(&image, &[0], &kernel_policy()).unwrap();
        let b = verify_image(&image, &[0], &kernel_policy()).unwrap();
        assert_eq!(a, b, "same image + policy must be bit-identical");
    }

    #[test]
    fn block_containing_maps_offsets_to_proofs() {
        let image = bounded_loop_module();
        let at = verify_image(&image, &[0], &kernel_policy()).unwrap();
        for p in at.proofs.blocks.values() {
            assert_eq!(at.proofs.block_containing(p.start).unwrap().start, p.start);
            assert_eq!(
                at.proofs
                    .block_containing(p.start + p.len - 1)
                    .unwrap()
                    .start,
                p.start
            );
        }
        assert!(at.proofs.block_containing(0xFFFF_0000).is_none());
    }

    #[test]
    fn mod32_wraparound_access_is_not_proven() {
        // A counter that wraps through 0xFFFF_FFFF: the mod-2^32 interval
        // straddles the boundary, so the analysis must refuse to bound it
        // (one-sidedness: accepted, left to hardware) rather than prove a
        // wrong range.
        let mut b = CodeBuilder::new();
        b.label("entry").unwrap();
        b.emit(Insn::Mov(Eax, Src::Imm(0xFFFF_FFF0u32 as i32)));
        b.label("lp").unwrap();
        b.emit(Insn::StoreB(Mem::based(Eax, 0x18), Ecx));
        b.emit(Insn::Inc(Eax));
        b.emit(Insn::Cmp(Eax, Src::Imm(0x10)));
        b.jcc_label(Cond::Ne, "lp");
        b.emit(Insn::Ret);
        let at = verify_image(&link(b), &[0], &kernel_policy()).unwrap();
        assert!(at.unknown_accesses >= 1, "{at:?}");
        assert!(at.proofs.blocks.values().all(|p| p.ds_bounds.is_none()));
    }

    #[test]
    fn dec_jnz_loop_is_counted() {
        let mut b = CodeBuilder::new();
        b.label("entry").unwrap();
        b.emit(Insn::Mov(Ecx, Src::Imm(32)));
        b.label("lp").unwrap();
        b.emit(Insn::Store(Mem::abs(0x200), Src::Reg(Ecx)));
        b.emit(Insn::Dec(Ecx));
        b.jcc_label(Cond::Ne, "lp");
        b.emit(Insn::Ret);
        let at = verify_image(&link(b), &[0], &kernel_policy()).unwrap();
        let body = at
            .proofs
            .blocks
            .values()
            .find(|p| p.ds_bounds.is_some())
            .expect("store block proven");
        assert_eq!(body.ds_bounds, Some((0x200, 0x203)));
        assert!(matches!(body.loop_class, LoopClass::Counted { .. }));
    }
}
