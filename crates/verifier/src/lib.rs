//! `verifier` — load-time static verification of extension object code.
//!
//! The paper positions Palladium's segment/page hardware checks against
//! purely software safety arguments (SFI rewriting, static verification).
//! This crate supplies the static counterpart: a small analysis that runs
//! at `insmod`/`seg_dlopen` time over the *linked* image, before a single
//! extension instruction executes. It
//!
//! 1. recovers a control-flow graph by reachability from the exported
//!    entry points ([`asm86::disasm::Cfg`]) — never a linear sweep, since
//!    extension images interleave dispatch slots and data with code;
//! 2. scans for privileged or reserved instructions outside the permitted
//!    set for the target SPL (`hlt`, segment-register loads, `iret`,
//!    `lret`, unlisted `int` vectors, unlisted `lcall` gates);
//! 3. runs an interval abstract interpretation over registers used as
//!    addresses, rejecting memory accesses that *provably* fall outside
//!    the allowed ranges (extension segment, stack, heap); and
//! 4. validates every outbound control transfer: static branches must
//!    stay in-image or land in whitelisted code ranges (EFT stubs, PLT,
//!    trampolines), far calls must name registered call gates, and
//!    indirect transfers must resolve to a verified target or a
//!    loader-sealed dispatch slot.
//!
//! The analysis is deliberately *one-sided*: it rejects only violations it
//! can prove (a constant or bounded address outside every allowed range, a
//! reserved opcode on a reachable path). Addresses it cannot bound are
//! accepted and left to the segment-limit and page-protection hardware,
//! which remains the soundness backstop — exactly the division of labour
//! DESIGN.md §7 describes. What a `Verified` attestation licenses eliding
//! is therefore the *redundant software* work on the dispatch path
//! (per-call entry re-validation, lazy predecode), never the hardware
//! checks themselves.

#![warn(clippy::pedantic)]
#![allow(
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_lossless,
    clippy::missing_errors_doc,
    clippy::missing_panics_doc,
    clippy::module_name_repetitions,
    clippy::must_use_candidate,
    clippy::redundant_closure_for_method_calls,
    clippy::similar_names,
    clippy::too_many_lines
)]

use std::collections::{BTreeMap, VecDeque};

use asm86::disasm::{Cfg, CfgError};
use asm86::encode::DecodeError;
use asm86::isa::{AluOp, Insn, Mem, Reg, Src};

/// What a module is allowed to do, fixed by the loader for the target SPL.
///
/// All addresses are in the addressing domain the module's code uses:
/// segment-relative offsets for SPL 1 kernel extensions, flat virtual
/// addresses for SPL 3 user extensions. Ranges are half-open `[lo, hi)`.
#[derive(Debug, Clone, Default)]
pub struct VerifyPolicy {
    /// The SPL the module will run at (1 or 3); informational.
    pub spl: u8,
    /// Address of the image's first byte.
    pub load_addr: u32,
    /// Ranges loads/stores may touch, in addition to the image itself.
    pub data: Vec<(u32, u32)>,
    /// Ranges outbound control transfers may land in (EFT entry stubs,
    /// PLT page, shared-library text, trampolines).
    pub code: Vec<(u32, u32)>,
    /// Loader-sealed indirect-dispatch slot ranges (e.g. the read-only
    /// GOT page): `jmp [slot]` through these is trusted.
    pub slots: Vec<(u32, u32)>,
    /// Call-gate selectors `lcall` may name.
    pub gates: Vec<u16>,
    /// Software-interrupt vectors `int` may raise (`0x81` for the kernel
    /// service interface; user extensions get none).
    pub vectors: Vec<u8>,
}

impl VerifyPolicy {
    /// A policy with empty allow-lists for a module loaded at `load_addr`.
    pub fn new(spl: u8, load_addr: u32) -> VerifyPolicy {
        VerifyPolicy {
            spl,
            load_addr,
            ..VerifyPolicy::default()
        }
    }

    /// Permits loads/stores into `[lo, hi)`.
    #[must_use]
    pub fn allow_data(mut self, lo: u32, hi: u32) -> Self {
        self.data.push((lo, hi));
        self
    }

    /// Permits outbound transfers into `[lo, hi)`.
    #[must_use]
    pub fn allow_code(mut self, lo: u32, hi: u32) -> Self {
        self.code.push((lo, hi));
        self
    }

    /// Trusts loader-sealed dispatch slots in `[lo, hi)`.
    #[must_use]
    pub fn allow_slots(mut self, lo: u32, hi: u32) -> Self {
        self.slots.push((lo, hi));
        self
    }

    /// Permits far calls through gate selector `sel`.
    #[must_use]
    pub fn allow_gate(mut self, sel: u16) -> Self {
        self.gates.push(sel);
        self
    }

    /// Permits `int vector`.
    #[must_use]
    pub fn allow_vector(mut self, vector: u8) -> Self {
        self.vectors.push(vector);
        self
    }
}

/// Why a module was rejected. Every variant names the offending image
/// offset so loaders can report `module+0x...`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// Reachable bytes did not decode.
    Decode {
        /// Image offset of the undecodable bytes.
        offset: u32,
        /// Decoder diagnosis.
        cause: DecodeError,
    },
    /// No entry points were supplied.
    NoEntry,
    /// An entry point fell outside the image.
    EntryOutOfRange(u32),
    /// A privileged or reserved instruction is reachable.
    Privileged {
        /// Image offset of the instruction.
        offset: u32,
        /// Its mnemonic.
        mnemonic: &'static str,
    },
    /// `int` with a vector outside the permitted set.
    ForbiddenVector {
        /// Image offset of the instruction.
        offset: u32,
        /// The vector named.
        vector: u8,
    },
    /// `lcall` through a selector that is not a registered gate.
    ForbiddenGate {
        /// Image offset of the instruction.
        offset: u32,
        /// The selector named.
        selector: u16,
    },
    /// A static branch/call leaves the image for an address outside every
    /// whitelisted code range.
    BranchOutOfRange {
        /// Image offset of the branch.
        offset: u32,
        /// The linear target (may be negative when the displacement
        /// points below the image).
        target: i64,
    },
    /// An indirect transfer whose target the analysis cannot bound.
    IndirectUnresolved {
        /// Image offset of the transfer.
        offset: u32,
    },
    /// An indirect transfer resolves to a concrete address outside every
    /// permitted code range.
    BadIndirectTarget {
        /// Image offset of the transfer.
        offset: u32,
        /// The resolved target.
        value: u32,
    },
    /// A memory access provably outside every allowed data range.
    OutOfSegment {
        /// Image offset of the access.
        offset: u32,
        /// Lowest possible address.
        lo: u32,
        /// Highest possible address (inclusive, including access width).
        hi: u32,
    },
}

impl core::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VerifyError::Decode { offset, cause } => {
                write!(f, "undecodable instruction at +{offset:#x}: {cause:?}")
            }
            VerifyError::NoEntry => write!(f, "module exports no entry points"),
            VerifyError::EntryOutOfRange(o) => write!(f, "entry +{o:#x} outside the image"),
            VerifyError::Privileged { offset, mnemonic } => {
                write!(f, "privileged `{mnemonic}` reachable at +{offset:#x}")
            }
            VerifyError::ForbiddenVector { offset, vector } => {
                write!(f, "forbidden `int {vector:#04x}` at +{offset:#x}")
            }
            VerifyError::ForbiddenGate { offset, selector } => {
                write!(
                    f,
                    "far call through unregistered gate {selector:#06x} at +{offset:#x}"
                )
            }
            VerifyError::BranchOutOfRange { offset, target } => {
                write!(f, "branch at +{offset:#x} leaves the image for {target:#x}")
            }
            VerifyError::IndirectUnresolved { offset } => {
                write!(f, "unresolvable indirect transfer at +{offset:#x}")
            }
            VerifyError::BadIndirectTarget { offset, value } => {
                write!(f, "indirect transfer at +{offset:#x} targets {value:#x}")
            }
            VerifyError::OutOfSegment { offset, lo, hi } => {
                write!(
                    f,
                    "access at +{offset:#x} provably outside the segment ({lo:#x}..={hi:#x})"
                )
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Proof-carrying summary of a successful verification, stored by the
/// loader next to the segment's configuration. Its existence is what
/// licenses the verified-dispatch fast path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Attestation {
    /// Entry points traversed (exports plus resolved indirect targets).
    pub entries: u32,
    /// Reachable instructions verified.
    pub insns: u32,
    /// Basic blocks in the recovered CFG.
    pub blocks: u32,
    /// Memory accesses examined.
    pub memory_checks: u32,
    /// Accesses proven in-range by the interval analysis.
    pub proven_accesses: u32,
    /// Accesses left to the hardware (unbounded address).
    pub unknown_accesses: u32,
    /// Static transfers that leave the image for whitelisted code.
    pub external_transfers: u32,
    /// Indirect transfers resolved to a concrete verified target.
    pub resolved_indirect: u32,
}

/// Register interval: `Some((lo, hi))` bounds the value inclusively,
/// `None` is unknown (top).
type Itv = Option<(u32, u32)>;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AbsState {
    regs: [Itv; 8],
}

impl AbsState {
    const TOP: AbsState = AbsState { regs: [None; 8] };

    fn get(&self, r: Reg) -> Itv {
        self.regs[r as usize]
    }

    fn set(&mut self, r: Reg, v: Itv) {
        self.regs[r as usize] = v;
    }

    /// Joins `other` into `self`; true if `self` changed.
    fn join(&mut self, other: &AbsState) -> bool {
        let mut changed = false;
        for i in 0..8 {
            let joined = match (self.regs[i], other.regs[i]) {
                (Some((al, ah)), Some((bl, bh))) => Some((al.min(bl), ah.max(bh))),
                _ => None,
            };
            if joined != self.regs[i] {
                self.regs[i] = joined;
                changed = true;
            }
        }
        changed
    }
}

#[allow(clippy::unnecessary_wraps)] // the domain type is the point
fn itv_const(c: u32) -> Itv {
    Some((c, c))
}

fn itv_add(a: Itv, b: Itv) -> Itv {
    let (a, b) = (a?, b?);
    let lo = i64::from(a.0) + i64::from(b.0);
    let hi = i64::from(a.1) + i64::from(b.1);
    itv_from_i64(lo, hi)
}

fn itv_sub(a: Itv, b: Itv) -> Itv {
    let (a, b) = (a?, b?);
    let lo = i64::from(a.0) - i64::from(b.1);
    let hi = i64::from(a.1) - i64::from(b.0);
    itv_from_i64(lo, hi)
}

/// Reduces an exact `i64` interval to a `u32` interval under the
/// hardware's mod-2³² arithmetic. Exact when the wrapped interval does
/// not straddle the 0/2³² boundary (the common case: a negative `disp`
/// encoding a high absolute address); top otherwise.
fn itv_from_i64(lo: i64, hi: i64) -> Itv {
    const M: i64 = 1 << 32;
    if hi - lo >= M {
        return None;
    }
    let wlo = lo.rem_euclid(M) as u32;
    let whi = hi.rem_euclid(M) as u32;
    if wlo <= whi {
        Some((wlo, whi))
    } else {
        None
    }
}

/// The address interval of a memory operand under `s`, or `None` when it
/// cannot be bounded (unknown base register or explicit segment override,
/// which the hardware checks at its own base).
fn mem_interval(m: Mem, s: &AbsState) -> Itv {
    if m.seg.is_some() {
        return None;
    }
    let base = match m.base {
        None => itv_const(0),
        Some(b) => s.get(b),
    };
    let (lo, hi) = base?;
    itv_from_i64(
        i64::from(lo) + i64::from(m.disp),
        i64::from(hi) + i64::from(m.disp),
    )
}

/// Abstract transfer function for one instruction.
fn transfer(insn: &Insn, s: &mut AbsState) {
    match *insn {
        Insn::Mov(r, Src::Imm(c)) => s.set(r, itv_const(c as u32)),
        Insn::Mov(r, Src::Reg(o)) => s.set(r, s.get(o)),
        Insn::Lea(r, m) => s.set(r, mem_interval(m, s)),
        Insn::Load(r, _)
        | Insn::LoadB(r, _)
        | Insn::LoadW(r, _)
        | Insn::MovFromSeg(r, _)
        | Insn::AluM(_, r, _)
        | Insn::Neg(r)
        | Insn::Not(r) => s.set(r, None),
        Insn::Pop(r) => {
            s.set(r, None);
            s.set(Reg::Esp, None);
        }
        Insn::Alu(op, r, src) => {
            let rhs = match src {
                Src::Imm(c) => itv_const(c as u32),
                Src::Reg(o) => s.get(o),
            };
            let v = match op {
                AluOp::Add => itv_add(s.get(r), rhs),
                AluOp::Sub => itv_sub(s.get(r), rhs),
                _ => None,
            };
            s.set(r, v);
        }
        Insn::Inc(r) => s.set(r, itv_add(s.get(r), itv_const(1))),
        Insn::Dec(r) => s.set(r, itv_sub(s.get(r), itv_const(1))),
        Insn::Rdtsc => {
            s.set(Reg::Eax, None);
            s.set(Reg::Edx, None);
        }
        // Anything that runs foreign code may clobber every register; the
        // callee-saved convention is not something we trust statically.
        Insn::Call(_) | Insn::CallReg(_) | Insn::CallM(_) | Insn::Lcall(..) | Insn::Int(_) => {
            *s = AbsState::TOP;
        }
        Insn::Push(_) | Insn::PushM(_) | Insn::PushSeg(_) | Insn::PopM(_) | Insn::PopSeg(_) => {
            s.set(Reg::Esp, None);
        }
        _ => {}
    }
}

/// True if some single range fully contains `[lo, hi]` (inclusive).
fn contained(ranges: &[(u32, u32)], lo: u32, hi: u32) -> bool {
    ranges.iter().any(|&(rl, rh)| rl <= lo && hi < rh)
}

/// True if any range intersects `[lo, hi]` (inclusive).
fn overlaps(ranges: &[(u32, u32)], lo: u32, hi: u32) -> bool {
    ranges.iter().any(|&(rl, rh)| lo < rh && rl <= hi)
}

fn access_width(insn: &Insn) -> u32 {
    match insn {
        Insn::LoadB(..) | Insn::StoreB(..) => 1,
        Insn::LoadW(..) | Insn::StoreW(..) => 2,
        _ => 4,
    }
}

fn mnemonic(insn: &Insn) -> &'static str {
    match insn {
        Insn::Hlt => "hlt",
        Insn::MovToSeg(..) => "mov sreg, reg",
        Insn::PopSeg(_) => "pop sreg",
        Insn::Iret => "iret",
        Insn::Lret | Insn::LretN(_) => "lret",
        _ => "?",
    }
}

/// How many times a block's in-state may change before it is widened to
/// top; bounds the interval fixpoint on loops.
const WIDEN_AFTER: u32 = 8;

/// How many CFG-rebuild rounds resolved indirect targets may trigger.
const MAX_ROUNDS: u32 = 64;

struct Analysis<'a> {
    image: &'a [u8],
    policy: &'a VerifyPolicy,
    /// Data ranges including the image itself.
    data: Vec<(u32, u32)>,
    stats: Attestation,
}

impl Analysis<'_> {
    fn image_range(&self) -> (u32, u32) {
        let lo = self.policy.load_addr;
        (lo, lo.wrapping_add(self.image.len() as u32))
    }

    fn in_image_code(&self, addr: u32) -> bool {
        let (lo, hi) = self.image_range();
        addr >= lo && addr < hi
    }

    /// Interval fixpoint over the CFG's blocks; returns each block's
    /// in-state.
    fn fixpoint(cfg: &Cfg, entries: &[u32]) -> BTreeMap<u32, AbsState> {
        let mut ins: BTreeMap<u32, AbsState> = BTreeMap::new();
        let mut visits: BTreeMap<u32, u32> = BTreeMap::new();
        let mut work: VecDeque<u32> = VecDeque::new();
        for &e in entries {
            ins.insert(e, AbsState::TOP);
            work.push_back(e);
        }
        while let Some(b) = work.pop_front() {
            let Some(block) = cfg.blocks.get(&b) else {
                continue;
            };
            let mut s = ins[&b];
            for line in &block.insns {
                transfer(&line.insn, &mut s);
            }
            for &succ in &block.succs {
                if let Some(existing) = ins.get_mut(&succ) {
                    if existing.join(&s) {
                        let v = visits.entry(succ).or_insert(0);
                        *v += 1;
                        if *v > WIDEN_AFTER {
                            *existing = AbsState::TOP;
                        }
                        work.push_back(succ);
                    }
                } else {
                    ins.insert(succ, s);
                    work.push_back(succ);
                }
            }
        }
        ins
    }

    fn check_access(
        &mut self,
        offset: u32,
        insn: &Insn,
        m: Mem,
        s: &AbsState,
    ) -> Result<(), VerifyError> {
        self.stats.memory_checks += 1;
        let Some((lo, hi)) = mem_interval(m, s) else {
            self.stats.unknown_accesses += 1;
            return Ok(());
        };
        let hi = hi.saturating_add(access_width(insn) - 1);
        if contained(&self.data, lo, hi) {
            self.stats.proven_accesses += 1;
            Ok(())
        } else if overlaps(&self.data, lo, hi) {
            // Partially coverable: not provably wrong, hardware decides.
            self.stats.unknown_accesses += 1;
            Ok(())
        } else {
            Err(VerifyError::OutOfSegment { offset, lo, hi })
        }
    }

    /// True if some reachable instruction writes the 4-byte slot at
    /// `addr` through a constant address (the `pop [slot]` of the
    /// service-stub return-linkage pattern).
    fn slot_written(cfg: &Cfg, addr: u32) -> bool {
        cfg.lines.values().any(|l| match l.insn {
            Insn::PopM(m) | Insn::Store(m, _) => {
                m.base.is_none() && m.seg.is_none() && m.disp as u32 == addr
            }
            _ => false,
        })
    }

    /// Validates a resolved indirect target address; in-image targets not
    /// yet traversed are pushed onto `pending`.
    fn check_indirect_target(
        &mut self,
        offset: u32,
        value: u32,
        cfg: &Cfg,
        pending: &mut Vec<u32>,
    ) -> Result<(), VerifyError> {
        if self.in_image_code(value) {
            let toff = value - self.policy.load_addr;
            if !cfg.lines.contains_key(&toff) {
                pending.push(toff);
            }
            self.stats.resolved_indirect += 1;
            Ok(())
        } else if overlaps(&self.policy.code, value, value) {
            self.stats.resolved_indirect += 1;
            Ok(())
        } else {
            Err(VerifyError::BadIndirectTarget { offset, value })
        }
    }

    fn check_insn(
        &mut self,
        offset: u32,
        insn: &Insn,
        s: &AbsState,
        cfg: &Cfg,
        pending: &mut Vec<u32>,
    ) -> Result<(), VerifyError> {
        // (2) privileged / reserved instructions.
        match insn {
            Insn::Hlt
            | Insn::MovToSeg(..)
            | Insn::PopSeg(_)
            | Insn::Iret
            | Insn::Lret
            | Insn::LretN(_) => {
                return Err(VerifyError::Privileged {
                    offset,
                    mnemonic: mnemonic(insn),
                });
            }
            Insn::Int(v) if !self.policy.vectors.contains(v) => {
                return Err(VerifyError::ForbiddenVector { offset, vector: *v });
            }
            Insn::Lcall(sel, _) if !self.policy.gates.contains(sel) => {
                return Err(VerifyError::ForbiddenGate {
                    offset,
                    selector: *sel,
                });
            }
            _ => {}
        }
        // (3) memory accesses.
        match insn {
            Insn::Load(_, m)
            | Insn::Store(m, _)
            | Insn::LoadB(_, m)
            | Insn::StoreB(m, _)
            | Insn::LoadW(_, m)
            | Insn::StoreW(m, _)
            | Insn::PushM(m)
            | Insn::PopM(m)
            | Insn::AluM(_, _, m)
            | Insn::CmpM(m, _) => self.check_access(offset, insn, *m, s)?,
            _ => {}
        }
        // (4) indirect control transfers.
        match insn {
            Insn::JmpReg(r) | Insn::CallReg(r) => match s.get(*r) {
                Some((t, h)) if t == h => self.check_indirect_target(offset, t, cfg, pending)?,
                _ => return Err(VerifyError::IndirectUnresolved { offset }),
            },
            Insn::JmpM(m) | Insn::CallM(m) => match mem_interval(*m, s) {
                Some((a, b)) if a == b => {
                    let (ilo, ihi) = self.image_range();
                    if a >= ilo && a.wrapping_add(4) <= ihi {
                        // Slot inside the image: judge its linked contents.
                        let so = (a - ilo) as usize;
                        let value =
                            u32::from_le_bytes(self.image[so..so + 4].try_into().expect("4 bytes"));
                        if value == 0 && Self::slot_written(cfg, a) {
                            // Dispatch slot filled at run time by a
                            // reachable `pop [slot]`; the stored value is
                            // a return address inside the image.
                            self.stats.resolved_indirect += 1;
                        } else {
                            self.check_indirect_target(offset, value, cfg, pending)?;
                        }
                    } else if contained(&self.policy.slots, a, a.saturating_add(3)) {
                        // Loader-sealed slot (GOT): contents trusted.
                        self.stats.resolved_indirect += 1;
                    } else {
                        return Err(VerifyError::IndirectUnresolved { offset });
                    }
                }
                _ => return Err(VerifyError::IndirectUnresolved { offset }),
            },
            _ => {}
        }
        Ok(())
    }
}

/// Verifies a linked image against `policy`, starting from image-relative
/// `entries` (the module's exported functions).
///
/// On success returns the [`Attestation`] the loader stores with the
/// segment; on failure, the first violation found in address order.
pub fn verify_image(
    image: &[u8],
    entries: &[u32],
    policy: &VerifyPolicy,
) -> Result<Attestation, VerifyError> {
    let mut a = Analysis {
        image,
        policy,
        data: policy.data.clone(),
        stats: Attestation::default(),
    };
    let (ilo, ihi) = a.image_range();
    a.data.push((ilo, ihi));

    let mut all_entries: Vec<u32> = entries.to_vec();
    all_entries.sort_unstable();
    all_entries.dedup();

    for round in 0.. {
        let cfg = Cfg::build(image, &all_entries).map_err(|e| match e {
            CfgError::Decode { offset, cause } => VerifyError::Decode { offset, cause },
            CfgError::NoEntry => VerifyError::NoEntry,
            CfgError::EntryOutOfRange(o) => VerifyError::EntryOutOfRange(o),
        })?;
        let states = Analysis::fixpoint(&cfg, &all_entries);

        a.stats = Attestation {
            entries: all_entries.len() as u32,
            insns: cfg.lines.len() as u32,
            blocks: cfg.blocks.len() as u32,
            ..Attestation::default()
        };

        // Static transfers that leave the image.
        for &(site, target) in &cfg.external_sites {
            let linear = i64::from(policy.load_addr) + target;
            let ok = u32::try_from(linear).is_ok_and(|t| overlaps(&policy.code, t, t));
            if !ok {
                return Err(VerifyError::BranchOutOfRange {
                    offset: site,
                    target: linear,
                });
            }
            a.stats.external_transfers += 1;
        }

        let mut pending: Vec<u32> = Vec::new();
        for block in cfg.blocks.values() {
            let mut s = states.get(&block.start).copied().unwrap_or(AbsState::TOP);
            for line in &block.insns {
                a.check_insn(line.offset, &line.insn, &s, &cfg, &mut pending)?;
                transfer(&line.insn, &mut s);
            }
        }

        pending.sort_unstable();
        pending.dedup();
        pending.retain(|p| !all_entries.contains(p));
        if pending.is_empty() {
            return Ok(a.stats);
        }
        if round + 1 >= MAX_ROUNDS {
            // Pathological resolve chain; give up conservatively.
            return Err(VerifyError::IndirectUnresolved { offset: pending[0] });
        }
        all_entries.extend(pending);
        all_entries.sort_unstable();
    }
    unreachable!("loop returns")
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm86::isa::{Cond, Reg::*};
    use asm86::CodeBuilder;
    use std::collections::BTreeMap;

    const SEG: u32 = 0x8000; // 8-page extension segment
    const LOAD: u32 = 0x2040;

    fn kernel_policy() -> VerifyPolicy {
        VerifyPolicy::new(1, LOAD)
            .allow_data(0, SEG)
            .allow_vector(0x81)
    }

    fn link(b: CodeBuilder) -> Vec<u8> {
        b.finish().unwrap().link(LOAD, &BTreeMap::new()).unwrap()
    }

    #[test]
    fn benign_module_is_accepted_with_stats() {
        let mut b = CodeBuilder::new();
        b.label("entry").unwrap();
        b.emit(Insn::Load(Eax, Mem::based(Esp, 4)));
        b.emit(Insn::Alu(AluOp::Add, Eax, Src::Imm(1)));
        b.emit(Insn::Ret);
        let image = link(b);
        let at = verify_image(&image, &[0], &kernel_policy()).unwrap();
        assert_eq!(at.insns, 3);
        assert_eq!(at.blocks, 1);
        assert_eq!(at.memory_checks, 1);
        assert_eq!(at.unknown_accesses, 1, "esp-relative is hardware's job");
    }

    #[test]
    fn privileged_instructions_are_rejected() {
        for insn in [
            Insn::Hlt,
            Insn::MovToSeg(asm86::SegReg::Ds, Eax),
            Insn::PopSeg(asm86::SegReg::Es),
            Insn::Iret,
            Insn::Lret,
            Insn::LretN(8),
        ] {
            let mut b = CodeBuilder::new();
            b.emit(insn);
            b.emit(Insn::Ret);
            let err = verify_image(&link(b), &[0], &kernel_policy()).unwrap_err();
            assert!(
                matches!(err, VerifyError::Privileged { offset: 0, .. }),
                "{err}"
            );
        }
    }

    #[test]
    fn unreachable_privileged_bytes_are_no_concern() {
        let mut b = CodeBuilder::new();
        b.emit(Insn::Ret);
        b.emit(Insn::Hlt); // dead bytes after the return
        verify_image(&link(b), &[0], &kernel_policy()).unwrap();
    }

    #[test]
    fn interrupt_vectors_follow_the_allowlist() {
        let mut b = CodeBuilder::new();
        b.emit(Insn::Int(0x81));
        b.emit(Insn::Ret);
        verify_image(&link(b), &[0], &kernel_policy()).unwrap();

        let mut b = CodeBuilder::new();
        b.emit(Insn::Int(0x80));
        b.emit(Insn::Ret);
        let err = verify_image(&link(b), &[0], &kernel_policy()).unwrap_err();
        assert_eq!(
            err,
            VerifyError::ForbiddenVector {
                offset: 0,
                vector: 0x80
            }
        );
    }

    #[test]
    fn constant_out_of_segment_store_is_rejected() {
        let mut b = CodeBuilder::new();
        b.emit(Insn::Store(Mem::abs(0xC000_0000), Src::Imm(1)));
        b.emit(Insn::Ret);
        let err = verify_image(&link(b), &[0], &kernel_policy()).unwrap_err();
        assert!(
            matches!(
                err,
                VerifyError::OutOfSegment {
                    offset: 0,
                    lo: 0xC000_0000,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn computed_constant_address_is_tracked_through_registers() {
        // mov ebx, 0xBFFF0000; add ebx, 0x10000; mov [ebx], eax
        let mut b = CodeBuilder::new();
        b.emit(Insn::Mov(Ebx, Src::Imm(0xBFFF_0000u32 as i32)));
        b.emit(Insn::Alu(AluOp::Add, Ebx, Src::Imm(0x10000)));
        b.emit(Insn::Store(Mem::based(Ebx, 0), Src::Reg(Eax)));
        b.emit(Insn::Ret);
        let err = verify_image(&link(b), &[0], &kernel_policy()).unwrap_err();
        assert!(
            matches!(
                err,
                VerifyError::OutOfSegment {
                    lo: 0xC000_0000,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn in_segment_constant_store_is_proven() {
        let mut b = CodeBuilder::new();
        b.emit(Insn::Store(Mem::abs(0x100), Src::Imm(7)));
        b.emit(Insn::Ret);
        let at = verify_image(&link(b), &[0], &kernel_policy()).unwrap();
        assert_eq!(at.proven_accesses, 1);
    }

    #[test]
    fn runtime_pointer_is_left_to_hardware() {
        // The argument is a pointer we cannot bound: accepted as unknown.
        let mut b = CodeBuilder::new();
        b.emit(Insn::Load(Ecx, Mem::based(Esp, 4)));
        b.emit(Insn::Load(Eax, Mem::based(Ecx, 0)));
        b.emit(Insn::Ret);
        let at = verify_image(&link(b), &[0], &kernel_policy()).unwrap();
        assert_eq!(at.unknown_accesses, 2);
    }

    #[test]
    fn far_calls_need_registered_gates() {
        let mut b = CodeBuilder::new();
        b.emit(Insn::Lcall(0x3B, 0));
        b.emit(Insn::Ret);
        let err = verify_image(&link(b), &[0], &kernel_policy()).unwrap_err();
        assert_eq!(
            err,
            VerifyError::ForbiddenGate {
                offset: 0,
                selector: 0x3B
            }
        );
        let ok = verify_image(
            &{
                let mut b = CodeBuilder::new();
                b.emit(Insn::Lcall(0x3B, 0));
                b.emit(Insn::Ret);
                link(b)
            },
            &[0],
            &kernel_policy().allow_gate(0x3B),
        );
        ok.unwrap();
    }

    #[test]
    fn external_branch_must_hit_whitelisted_code() {
        let mut b = CodeBuilder::new();
        b.emit(Insn::Call(0x0001_0000));
        b.emit(Insn::Ret);
        let image = link(b);
        let err = verify_image(&image, &[0], &kernel_policy()).unwrap_err();
        assert!(
            matches!(err, VerifyError::BranchOutOfRange { offset: 0, .. }),
            "{err}"
        );

        // Whitelist the landing range and it passes.
        let target = LOAD + 5 + 0x0001_0000;
        let policy = kernel_policy().allow_code(target, target + 16);
        let at = verify_image(&image, &[0], &policy).unwrap();
        assert_eq!(at.external_transfers, 1);
    }

    #[test]
    fn register_indirect_with_unknown_target_is_rejected() {
        let mut b = CodeBuilder::new();
        b.emit(Insn::JmpReg(Edi));
        let err = verify_image(&link(b), &[0], &kernel_policy()).unwrap_err();
        assert_eq!(err, VerifyError::IndirectUnresolved { offset: 0 });
    }

    #[test]
    fn register_indirect_with_constant_target_is_traversed() {
        // mov ecx, &helper; call ecx — the helper must then verify too.
        let mut b = CodeBuilder::new();
        b.mov_label(Ecx, "helper");
        b.emit(Insn::CallReg(Ecx));
        b.emit(Insn::Ret);
        b.label("helper").unwrap();
        b.emit(Insn::Int(0x80)); // poison in the resolved target
        b.emit(Insn::Ret);
        let err = verify_image(&link(b), &[0], &kernel_policy()).unwrap_err();
        assert!(
            matches!(err, VerifyError::ForbiddenVector { vector: 0x80, .. }),
            "{err}"
        );
    }

    #[test]
    fn runtime_written_dispatch_slot_is_accepted() {
        // The service-stub return linkage: pop [slot]; ...; jmp [slot].
        let mut b = CodeBuilder::new();
        b.label("stub").unwrap();
        b.popm_label("slot", 0);
        b.jmpm_label("slot", 0);
        b.label("slot").unwrap();
        b.dword(0);
        let at = verify_image(&link(b), &[0], &kernel_policy()).unwrap();
        assert_eq!(at.resolved_indirect, 1);
    }

    #[test]
    fn overflowed_dispatch_slot_is_rejected() {
        // The chaos RelocOverflow shape: jmp [slot] where the linked slot
        // holds an address far outside the module.
        let mut b = CodeBuilder::new();
        b.jmpm_label("slot", 0);
        b.label("slot").unwrap();
        b.dword(0x1A00_0000);
        let err = verify_image(&link(b), &[0], &kernel_policy()).unwrap_err();
        assert_eq!(
            err,
            VerifyError::BadIndirectTarget {
                offset: 0,
                value: 0x1A00_0000
            }
        );
    }

    #[test]
    fn data_interleaved_with_code_is_skipped() {
        let mut b = CodeBuilder::new();
        b.label("entry").unwrap();
        b.load_label(Eax, "table", 0);
        b.emit(Insn::Ret);
        b.label("table").unwrap();
        b.bytes(&[0xFF; 16]); // undecodable as instructions
        let at = verify_image(&link(b), &[0], &kernel_policy()).unwrap();
        assert_eq!(at.insns, 2);
        assert_eq!(at.proven_accesses, 1, "table load lands inside the image");
    }

    #[test]
    fn loops_terminate_via_widening() {
        let mut b = CodeBuilder::new();
        b.label("entry").unwrap();
        b.emit(Insn::Mov(Eax, Src::Imm(0)));
        b.label("loop").unwrap();
        b.emit(Insn::Inc(Eax));
        b.emit(Insn::Cmp(Eax, Src::Imm(100)));
        b.jcc_label(Cond::L, "loop");
        b.emit(Insn::Ret);
        verify_image(&link(b), &[0], &kernel_policy()).unwrap();
    }

    #[test]
    fn truncated_image_is_a_decode_error() {
        let mut b = CodeBuilder::new();
        b.emit(Insn::Mov(Eax, Src::Imm(1)));
        let mut image = link(b);
        image.truncate(3);
        let err = verify_image(&image, &[0], &kernel_policy()).unwrap_err();
        assert!(matches!(
            err,
            VerifyError::Decode {
                offset: 0,
                cause: DecodeError::Truncated
            }
        ));
    }

    #[test]
    fn loader_sealed_slots_are_trusted() {
        // jmp [got] where the GOT page is outside the image but declared
        // sealed by the loader (the PLT pattern).
        let got = 0x7000;
        let mut b = CodeBuilder::new();
        b.emit(Insn::JmpM(Mem::abs(got)));
        let policy = kernel_policy().allow_slots(got, got + 0x1000);
        verify_image(&link(b), &[0], &policy).unwrap();
    }
}
