//! Verification policies and rejection reasons.
//!
//! A [`VerifyPolicy`] is the loader's statement of what a module at a
//! given SPL may touch; a [`VerifyError`] is the verifier's statement of
//! the first provable violation, always carrying the offending image
//! offset so loaders can report `module+0x...`.

use asm86::encode::DecodeError;

/// What a module is allowed to do, fixed by the loader for the target SPL.
///
/// All addresses are in the addressing domain the module's code uses:
/// segment-relative offsets for SPL 1 kernel extensions, flat virtual
/// addresses for SPL 3 user extensions. Ranges are half-open `[lo, hi)`.
#[derive(Debug, Clone, Default)]
pub struct VerifyPolicy {
    /// The SPL the module will run at (1 or 3); informational.
    pub spl: u8,
    /// Address of the image's first byte.
    pub load_addr: u32,
    /// Ranges loads/stores may touch, in addition to the image itself.
    pub data: Vec<(u32, u32)>,
    /// Ranges outbound control transfers may land in (EFT entry stubs,
    /// PLT page, shared-library text, trampolines).
    pub code: Vec<(u32, u32)>,
    /// Loader-sealed indirect-dispatch slot ranges (e.g. the read-only
    /// GOT page): `jmp [slot]` through these is trusted.
    pub slots: Vec<(u32, u32)>,
    /// Call-gate selectors `lcall` may name.
    pub gates: Vec<u16>,
    /// Software-interrupt vectors `int` may raise (`0x81` for the kernel
    /// service interface; user extensions get none).
    pub vectors: Vec<u8>,
}

impl VerifyPolicy {
    /// A policy with empty allow-lists for a module loaded at `load_addr`.
    pub fn new(spl: u8, load_addr: u32) -> VerifyPolicy {
        VerifyPolicy {
            spl,
            load_addr,
            ..VerifyPolicy::default()
        }
    }

    /// Permits loads/stores into `[lo, hi)`.
    #[must_use]
    pub fn allow_data(mut self, lo: u32, hi: u32) -> Self {
        self.data.push((lo, hi));
        self
    }

    /// Permits outbound transfers into `[lo, hi)`.
    #[must_use]
    pub fn allow_code(mut self, lo: u32, hi: u32) -> Self {
        self.code.push((lo, hi));
        self
    }

    /// Trusts loader-sealed dispatch slots in `[lo, hi)`.
    #[must_use]
    pub fn allow_slots(mut self, lo: u32, hi: u32) -> Self {
        self.slots.push((lo, hi));
        self
    }

    /// Permits far calls through gate selector `sel`.
    #[must_use]
    pub fn allow_gate(mut self, sel: u16) -> Self {
        self.gates.push(sel);
        self
    }

    /// Permits `int vector`.
    #[must_use]
    pub fn allow_vector(mut self, vector: u8) -> Self {
        self.vectors.push(vector);
        self
    }
}

/// Why a module was rejected. Every variant names the offending image
/// offset so loaders can report `module+0x...`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// Reachable bytes did not decode.
    Decode {
        /// Image offset of the undecodable bytes.
        offset: u32,
        /// Decoder diagnosis.
        cause: DecodeError,
    },
    /// No entry points were supplied.
    NoEntry,
    /// An entry point fell outside the image.
    EntryOutOfRange(u32),
    /// A privileged or reserved instruction is reachable.
    Privileged {
        /// Image offset of the instruction.
        offset: u32,
        /// Its mnemonic.
        mnemonic: &'static str,
    },
    /// `int` with a vector outside the permitted set.
    ForbiddenVector {
        /// Image offset of the instruction.
        offset: u32,
        /// The vector named.
        vector: u8,
    },
    /// `lcall` through a selector that is not a registered gate.
    ForbiddenGate {
        /// Image offset of the instruction.
        offset: u32,
        /// The selector named.
        selector: u16,
    },
    /// A static branch/call leaves the image for an address outside every
    /// whitelisted code range.
    BranchOutOfRange {
        /// Image offset of the branch.
        offset: u32,
        /// The linear target (may be negative when the displacement
        /// points below the image).
        target: i64,
    },
    /// An indirect transfer whose target the analysis cannot bound.
    IndirectUnresolved {
        /// Image offset of the transfer.
        offset: u32,
    },
    /// An indirect transfer resolves to a concrete address outside every
    /// permitted code range.
    BadIndirectTarget {
        /// Image offset of the transfer.
        offset: u32,
        /// The resolved target.
        value: u32,
    },
    /// A memory access provably outside every allowed data range.
    OutOfSegment {
        /// Image offset of the access.
        offset: u32,
        /// Lowest possible address.
        lo: u32,
        /// Highest possible address (inclusive, including access width).
        hi: u32,
    },
}

impl core::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VerifyError::Decode { offset, cause } => {
                write!(f, "undecodable instruction at +{offset:#x}: {cause:?}")
            }
            VerifyError::NoEntry => write!(f, "module exports no entry points"),
            VerifyError::EntryOutOfRange(o) => write!(f, "entry +{o:#x} outside the image"),
            VerifyError::Privileged { offset, mnemonic } => {
                write!(f, "privileged `{mnemonic}` reachable at +{offset:#x}")
            }
            VerifyError::ForbiddenVector { offset, vector } => {
                write!(f, "forbidden `int {vector:#04x}` at +{offset:#x}")
            }
            VerifyError::ForbiddenGate { offset, selector } => {
                write!(
                    f,
                    "far call through unregistered gate {selector:#06x} at +{offset:#x}"
                )
            }
            VerifyError::BranchOutOfRange { offset, target } => {
                write!(f, "branch at +{offset:#x} leaves the image for {target:#x}")
            }
            VerifyError::IndirectUnresolved { offset } => {
                write!(f, "unresolvable indirect transfer at +{offset:#x}")
            }
            VerifyError::BadIndirectTarget { offset, value } => {
                write!(f, "indirect transfer at +{offset:#x} targets {value:#x}")
            }
            VerifyError::OutOfSegment { offset, lo, hi } => {
                write!(
                    f,
                    "access at +{offset:#x} provably outside the segment ({lo:#x}..={hi:#x})"
                )
            }
        }
    }
}

impl std::error::Error for VerifyError {}
