//! The interval abstract domain over the eight general registers.
//!
//! Values are `u32` intervals under the hardware's mod-2³² arithmetic:
//! `Some((lo, hi))` bounds a register inclusively, `None` is unknown
//! (top). The transfer function mirrors `x86sim`'s executor exactly where
//! it tracks anything at all and goes to top everywhere else, which keeps
//! the analysis one-sided: every concrete value a register can hold at
//! run time lies inside its abstract interval.
//!
//! Branch-condition *refinement* ([`refine_edge`]) is what makes loop
//! bounds provable: when a block ends in `cmp r, c` / `jcc`, the taken
//! and fall-through out-edges each intersect `r`'s interval with the set
//! the condition admits. Refinement is a monotone intersection — a
//! contradictory refinement (empty set) propagates the *unrefined* state
//! rather than pruning the edge, so reachability for the privilege scan
//! is never narrowed.

use asm86::isa::{AluOp, Cond, Insn, Mem, Reg, SegReg, Src};

/// Register interval: `Some((lo, hi))` bounds the value inclusively,
/// `None` is unknown (top).
pub(crate) type Itv = Option<(u32, u32)>;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct AbsState {
    pub(crate) regs: [Itv; 8],
}

impl AbsState {
    pub(crate) const TOP: AbsState = AbsState { regs: [None; 8] };

    pub(crate) fn get(&self, r: Reg) -> Itv {
        self.regs[r as usize]
    }

    pub(crate) fn set(&mut self, r: Reg, v: Itv) {
        self.regs[r as usize] = v;
    }

    /// Joins `other` into `self`; true if `self` changed.
    pub(crate) fn join(&mut self, other: &AbsState) -> bool {
        let mut changed = false;
        for i in 0..8 {
            let joined = match (self.regs[i], other.regs[i]) {
                (Some((al, ah)), Some((bl, bh))) => Some((al.min(bl), ah.max(bh))),
                _ => None,
            };
            if joined != self.regs[i] {
                self.regs[i] = joined;
                changed = true;
            }
        }
        changed
    }
}

#[allow(clippy::unnecessary_wraps)] // the domain type is the point
pub(crate) fn itv_const(c: u32) -> Itv {
    Some((c, c))
}

pub(crate) fn itv_add(a: Itv, b: Itv) -> Itv {
    let (a, b) = (a?, b?);
    let lo = i64::from(a.0) + i64::from(b.0);
    let hi = i64::from(a.1) + i64::from(b.1);
    itv_from_i64(lo, hi)
}

pub(crate) fn itv_sub(a: Itv, b: Itv) -> Itv {
    let (a, b) = (a?, b?);
    let lo = i64::from(a.0) - i64::from(b.1);
    let hi = i64::from(a.1) - i64::from(b.0);
    itv_from_i64(lo, hi)
}

/// Reduces an exact `i64` interval to a `u32` interval under the
/// hardware's mod-2³² arithmetic. Exact when the wrapped interval does
/// not straddle the 0/2³² boundary (the common case: a negative `disp`
/// encoding a high absolute address); top otherwise.
pub(crate) fn itv_from_i64(lo: i64, hi: i64) -> Itv {
    const M: i64 = 1 << 32;
    if hi - lo >= M {
        return None;
    }
    let wlo = lo.rem_euclid(M) as u32;
    let whi = hi.rem_euclid(M) as u32;
    if wlo <= whi {
        Some((wlo, whi))
    } else {
        None
    }
}

/// The address interval of a memory operand under `s`, or `None` when it
/// cannot be bounded (unknown base register or explicit segment override,
/// which the hardware checks at its own base).
pub(crate) fn mem_interval(m: Mem, s: &AbsState) -> Itv {
    if m.seg.is_some() {
        return None;
    }
    let base = match m.base {
        None => itv_const(0),
        Some(b) => s.get(b),
    };
    let (lo, hi) = base?;
    itv_from_i64(
        i64::from(lo) + i64::from(m.disp),
        i64::from(hi) + i64::from(m.disp),
    )
}

/// Abstract transfer function for one instruction.
pub(crate) fn transfer(insn: &Insn, s: &mut AbsState) {
    match *insn {
        Insn::Mov(r, Src::Imm(c)) => s.set(r, itv_const(c as u32)),
        Insn::Mov(r, Src::Reg(o)) => s.set(r, s.get(o)),
        Insn::Lea(r, m) => s.set(r, mem_interval(m, s)),
        Insn::Load(r, _)
        | Insn::LoadB(r, _)
        | Insn::LoadW(r, _)
        | Insn::MovFromSeg(r, _)
        | Insn::AluM(_, r, _)
        | Insn::Neg(r)
        | Insn::Not(r)
        | Insn::Rdpkru(r) => s.set(r, None),
        Insn::Pop(r) => {
            s.set(r, None);
            s.set(Reg::Esp, None);
        }
        Insn::Alu(op, r, src) => {
            let rhs = match src {
                Src::Imm(c) => itv_const(c as u32),
                Src::Reg(o) => s.get(o),
            };
            let v = match op {
                AluOp::Add => itv_add(s.get(r), rhs),
                AluOp::Sub => itv_sub(s.get(r), rhs),
                _ => None,
            };
            s.set(r, v);
        }
        Insn::Inc(r) => s.set(r, itv_add(s.get(r), itv_const(1))),
        Insn::Dec(r) => s.set(r, itv_sub(s.get(r), itv_const(1))),
        Insn::Rdtsc => {
            s.set(Reg::Eax, None);
            s.set(Reg::Edx, None);
        }
        // Anything that runs foreign code may clobber every register; the
        // callee-saved convention is not something we trust statically.
        Insn::Call(_) | Insn::CallReg(_) | Insn::CallM(_) | Insn::Lcall(..) | Insn::Int(_) => {
            *s = AbsState::TOP;
        }
        Insn::Push(_) | Insn::PushM(_) | Insn::PushSeg(_) | Insn::PopM(_) | Insn::PopSeg(_) => {
            s.set(Reg::Esp, None);
        }
        _ => {}
    }
}

/// Intersects `r`'s interval with `[lo, hi]`. A contradictory
/// intersection (the condition admits no value the interval holds) leaves
/// the state *unrefined*: the edge stays reachable with its conservative
/// state, it is never pruned.
fn meet(s: &mut AbsState, r: Reg, lo: u32, hi: u32) {
    let refined = match s.get(r) {
        None => Some((lo, hi)),
        Some((l, h)) => {
            let nl = l.max(lo);
            let nh = h.min(hi);
            if nl > nh {
                return; // contradiction: keep the unrefined state
            }
            Some((nl, nh))
        }
    };
    s.set(r, refined);
}

fn negate(c: Cond) -> Cond {
    match c {
        Cond::E => Cond::Ne,
        Cond::Ne => Cond::E,
        Cond::L => Cond::Ge,
        Cond::Ge => Cond::L,
        Cond::Le => Cond::G,
        Cond::G => Cond::Le,
        Cond::B => Cond::Ae,
        Cond::Ae => Cond::B,
        Cond::Be => Cond::A,
        Cond::A => Cond::Be,
        Cond::S => Cond::Ns,
        Cond::Ns => Cond::S,
    }
}

/// Refines `r`'s interval on one out-edge of a block ending in
/// `cmp r, c` / `jcc cond`: `taken` selects the branch-taken edge (the
/// condition holds) versus fall-through (its negation holds).
///
/// Unsigned conditions refine exactly. Signed conditions refine only in
/// the regimes where the admissible set is a single `u32` interval —
/// `>=`/`>` against a non-negative constant, `<`/`<=` when the current
/// interval is known non-negative — and do nothing otherwise.
pub(crate) fn refine_edge(s: &mut AbsState, r: Reg, c: u32, cond: Cond, taken: bool) {
    const SMAX: u32 = 0x7FFF_FFFF;
    let cond = if taken { cond } else { negate(cond) };
    match cond {
        Cond::E => meet(s, r, c, c),
        Cond::B => {
            if c > 0 {
                meet(s, r, 0, c - 1);
            }
        }
        Cond::Ae => meet(s, r, c, u32::MAX),
        Cond::Be => meet(s, r, 0, c),
        Cond::A => {
            if c < u32::MAX {
                meet(s, r, c + 1, u32::MAX);
            }
        }
        // Signed, against a non-negative constant: `r >= c` admits
        // exactly [c, i32::MAX] as unsigned values.
        Cond::Ge => {
            if c <= SMAX {
                meet(s, r, c, SMAX);
            }
        }
        Cond::G => {
            if c < SMAX {
                meet(s, r, c + 1, SMAX);
            }
        }
        // Signed `<`/`<=` against a non-negative constant also admits
        // every negative value (as unsigned: the upper half), so a single
        // interval only covers it when `r` is already known non-negative.
        Cond::L => {
            if c > 0 && c <= SMAX && matches!(s.get(r), Some((_, h)) if h <= SMAX) {
                meet(s, r, 0, c - 1);
            }
        }
        Cond::Le => {
            if c <= SMAX && matches!(s.get(r), Some((_, h)) if h <= SMAX) {
                meet(s, r, 0, c);
            }
        }
        Cond::Ne | Cond::S | Cond::Ns => {}
    }
}

/// True if some single range fully contains `[lo, hi]` (inclusive).
pub(crate) fn contained(ranges: &[(u32, u32)], lo: u32, hi: u32) -> bool {
    ranges.iter().any(|&(rl, rh)| rl <= lo && hi < rh)
}

/// True if any range intersects `[lo, hi]` (inclusive).
pub(crate) fn overlaps(ranges: &[(u32, u32)], lo: u32, hi: u32) -> bool {
    ranges.iter().any(|&(rl, rh)| lo < rh && rl <= hi)
}

pub(crate) fn access_width(insn: &Insn) -> u32 {
    match insn {
        Insn::LoadB(..) | Insn::StoreB(..) => 1,
        Insn::LoadW(..) | Insn::StoreW(..) => 2,
        _ => 4,
    }
}

pub(crate) fn mnemonic(insn: &Insn) -> &'static str {
    match insn {
        Insn::Hlt => "hlt",
        Insn::MovToSeg(..) => "mov sreg, reg",
        Insn::PopSeg(_) => "pop sreg",
        Insn::Iret => "iret",
        Insn::Lret | Insn::LretN(_) => "lret",
        Insn::Wrpkru(..) => "wrpkru",
        _ => "?",
    }
}

/// The memory operands an instruction touches through its *effective*
/// segment being DS, as `(operand, is_store)` pairs — the accesses a
/// block-level DS bounds proof must cover. `jmp [m]`/`call [m]` read
/// their slot through DS like any other load; stack pushes and pops go
/// through SS and are not DS accesses (but `pop [m]`'s store and
/// `push [m]`'s load are).
pub(crate) fn ds_accesses(insn: &Insn) -> impl Iterator<Item = (Mem, bool)> {
    let acc: Option<(Mem, bool)> = match *insn {
        Insn::Load(_, m)
        | Insn::LoadB(_, m)
        | Insn::LoadW(_, m)
        | Insn::AluM(_, _, m)
        | Insn::CmpM(m, _)
        | Insn::PushM(m)
        | Insn::JmpM(m)
        | Insn::CallM(m) => Some((m, false)),
        Insn::Store(m, _) | Insn::StoreB(m, _) | Insn::StoreW(m, _) | Insn::PopM(m) => {
            Some((m, true))
        }
        _ => None,
    };
    acc.into_iter()
        .filter(|(m, _)| m.effective_seg() == SegReg::Ds)
}
