//! Per-block proof facts and the CFG structure analyses behind them.
//!
//! A successful verification now emits a [`ProofMap`]: for every basic
//! block, the facts the analysis *proved* (not merely failed to refute).
//! The facts are chosen to be exactly what a dispatch layer can cash in:
//!
//! - `ds_bounds` — every effective-DS memory access in the block lies
//!   inside one static inclusive byte range (access width included), so
//!   one limit/rights guard at block entry covers the whole block;
//! - `no_privileged` — the privilege scan passed for every instruction
//!   (true for every block of an accepted module, stated per block so a
//!   consumer need not re-derive it);
//! - `fall_through_only` — the block ends without a control transfer;
//! - `loop_class` — whether the block sits in a natural loop and whether
//!   that loop's trip count is syntactically bounded.
//!
//! The structure analyses are classic: predecessor lists and a reverse
//! post-order over the `asm86::Cfg` (which stores only successors), an
//! iterative dominator computation (Cooper–Harvey–Kennedy) with a
//! virtual root covering multiple entry points, and natural loops from
//! back edges `b -> h` where `h` dominates `b`. Retreating edges (RPO
//! target not after the source) additionally drive the widening points
//! of the interval fixpoint — every cycle contains one, reducible or
//! not, so widening only there still terminates.

use std::collections::{BTreeMap, BTreeSet};

use asm86::disasm::Cfg;
use asm86::isa::{Insn, Src};

/// A basic block's loop membership and trip-bound class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum LoopClass {
    /// The block is not part of any natural loop.
    #[default]
    NotInLoop,
    /// Innermost containing loop has a syntactically counted back edge
    /// (`cmp r, imm` / `jcc` or `dec r` / `jnz`), so its trip count is
    /// bounded by the interval analysis.
    Counted {
        /// Leader offset of the innermost loop header.
        header: u32,
    },
    /// The block is in a loop whose trip count the analysis cannot
    /// classify.
    Unknown {
        /// Leader offset of the innermost loop header.
        header: u32,
    },
}

impl LoopClass {
    /// The innermost loop header, if the block is in a loop.
    pub fn header(self) -> Option<u32> {
        match self {
            LoopClass::NotInLoop => None,
            LoopClass::Counted { header } | LoopClass::Unknown { header } => Some(header),
        }
    }
}

/// Facts proven about one basic block of a verified module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(clippy::struct_excessive_bools)] // a record of independent facts
pub struct BlockProof {
    /// Image-relative offset of the block's first instruction.
    pub start: u32,
    /// Byte length of the block.
    pub len: u32,
    /// When present, every effective-DS access in the block provably
    /// falls inside this inclusive byte range (access width included),
    /// and the range lies inside the policy's allowed data. Addresses
    /// are in the module's own addressing domain (segment offsets for
    /// kernel extensions).
    pub ds_bounds: Option<(u32, u32)>,
    /// The block performs DS loads (meaningful when `ds_bounds` is set).
    pub ds_loads: bool,
    /// The block performs DS stores (meaningful when `ds_bounds` is set).
    pub ds_stores: bool,
    /// No privileged or reserved instruction in the block.
    pub no_privileged: bool,
    /// The block ends without a control transfer (pure fall-through).
    pub fall_through_only: bool,
    /// Loop membership and trip-bound class.
    pub loop_class: LoopClass,
}

/// Block-indexed proof facts emitted with a successful verification,
/// carried inside [`crate::Attestation`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProofMap {
    /// Proofs keyed by block leader offset.
    pub blocks: BTreeMap<u32, BlockProof>,
}

impl ProofMap {
    /// The proof for the block whose leader is `start`, if any.
    pub fn get(&self, start: u32) -> Option<&BlockProof> {
        self.blocks.get(&start)
    }

    /// Number of blocks carrying proofs.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when no proofs were recorded.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Number of blocks whose DS accesses are provably bounded.
    pub fn bounded_blocks(&self) -> u32 {
        self.blocks
            .values()
            .filter(|b| b.ds_bounds.is_some())
            .count() as u32
    }

    /// The proof of the block *containing* image offset `off`, if any.
    pub fn block_containing(&self, off: u32) -> Option<&BlockProof> {
        self.blocks
            .range(..=off)
            .next_back()
            .map(|(_, b)| b)
            .filter(|b| off < b.start + b.len)
    }
}

/// Predecessor lists, reverse post-order, and the retreating-edge
/// targets of a CFG — the scaffolding both the dominator computation
/// and the interval fixpoint share.
pub(crate) struct Order {
    /// Blocks in reverse post-order from the entries (virtual root).
    pub(crate) rpo: Vec<u32>,
    /// Position of each block in `rpo`.
    pub(crate) index: BTreeMap<u32, usize>,
    /// Predecessor block leaders, by block leader.
    pub(crate) preds: BTreeMap<u32, Vec<u32>>,
    /// Targets of retreating edges (every cycle has one): the widening
    /// points of the interval fixpoint.
    pub(crate) retreat_targets: BTreeSet<u32>,
}

pub(crate) fn order(cfg: &Cfg, entries: &[u32]) -> Order {
    // Iterative DFS post-order from the entries, in sorted entry order
    // (deterministic; entries are sorted by the caller).
    let mut post: Vec<u32> = Vec::with_capacity(cfg.blocks.len());
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    for &e in entries {
        if !cfg.blocks.contains_key(&e) || seen.contains(&e) {
            continue;
        }
        // Stack of (block, next-successor-index).
        let mut stack: Vec<(u32, usize)> = vec![(e, 0)];
        seen.insert(e);
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            let succs = &cfg.blocks[&b].succs;
            if *i < succs.len() {
                let s = succs[*i];
                *i += 1;
                if cfg.blocks.contains_key(&s) && seen.insert(s) {
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
    }
    post.reverse();
    let index: BTreeMap<u32, usize> = post.iter().enumerate().map(|(i, &b)| (b, i)).collect();

    let mut preds: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    let mut retreat_targets: BTreeSet<u32> = BTreeSet::new();
    for (&b, block) in &cfg.blocks {
        for &s in &block.succs {
            if !cfg.blocks.contains_key(&s) {
                continue;
            }
            preds.entry(s).or_default().push(b);
            if let (Some(&bi), Some(&si)) = (index.get(&b), index.get(&s)) {
                if si <= bi {
                    retreat_targets.insert(s);
                }
            }
        }
    }
    Order {
        rpo: post,
        index,
        preds,
        retreat_targets,
    }
}

/// Immediate dominators over the CFG, with a virtual root above the
/// entries: an entry's idom is `None`. Iterative Cooper–Harvey–Kennedy
/// over the RPO.
pub(crate) fn dominators(entries: &[u32], ord: &Order) -> BTreeMap<u32, Option<u32>> {
    let entry_set: BTreeSet<u32> = entries.iter().copied().collect();
    // idom[b]: None = root (entries), absent = not yet computed.
    let mut idom: BTreeMap<u32, Option<u32>> = BTreeMap::new();
    for &e in entries {
        if ord.index.contains_key(&e) {
            idom.insert(e, None);
        }
    }
    let intersect = |idom: &BTreeMap<u32, Option<u32>>, mut a: u32, mut b: u32| -> Option<u32> {
        // Walk both up to the common dominator; reaching the virtual
        // root (None) from either side means the root dominates.
        loop {
            if a == b {
                return Some(a);
            }
            let (ai, bi) = (ord.index[&a], ord.index[&b]);
            if ai > bi {
                match idom.get(&a).copied().flatten() {
                    Some(p) => a = p,
                    None => return None,
                }
            } else {
                match idom.get(&b).copied().flatten() {
                    Some(p) => b = p,
                    None => return None,
                }
            }
        }
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &ord.rpo {
            if entry_set.contains(&b) {
                continue;
            }
            let mut new: Option<Option<u32>> = None;
            for &p in ord.preds.get(&b).map_or(&[][..], |v| v.as_slice()) {
                if !idom.contains_key(&p) {
                    continue; // unprocessed predecessor
                }
                new = Some(match new {
                    None => Some(p),
                    Some(None) => None,
                    Some(Some(cur)) => intersect(&idom, cur, p),
                });
            }
            // Entries also receive in-edges from the virtual root.
            let Some(new) = new else { continue };
            if idom.get(&b) != Some(&new) {
                idom.insert(b, new);
                changed = true;
            }
        }
    }
    idom
}

/// True if `d` dominates `b` (reflexively) under `idom`.
fn dominates(idom: &BTreeMap<u32, Option<u32>>, d: u32, mut b: u32) -> bool {
    loop {
        if d == b {
            return true;
        }
        match idom.get(&b).copied().flatten() {
            Some(p) => b = p,
            None => return false,
        }
    }
}

/// Innermost natural-loop membership: block leader → innermost header.
///
/// Natural loops come from back edges `b -> h` with `h` dominating `b`;
/// a loop's body is `h` plus everything reaching `b` without passing
/// `h`. Headers are processed in RPO (outer loops first), so a block in
/// nested loops keeps the *last* — innermost — assignment. Also returns
/// the set of headers whose every back edge is syntactically counted.
pub(crate) fn natural_loops(
    cfg: &Cfg,
    ord: &Order,
    idom: &BTreeMap<u32, Option<u32>>,
) -> (BTreeMap<u32, u32>, BTreeSet<u32>) {
    // header -> latch blocks (back-edge sources), discovered in RPO.
    let mut latches: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for &b in &ord.rpo {
        for &s in &cfg.blocks[&b].succs {
            if ord.index.contains_key(&s) && dominates(idom, s, b) {
                latches.entry(s).or_default().push(b);
            }
        }
    }

    let mut innermost: BTreeMap<u32, u32> = BTreeMap::new();
    let mut counted: BTreeSet<u32> = BTreeSet::new();
    let mut headers: Vec<u32> = latches.keys().copied().collect();
    headers.sort_by_key(|h| ord.index[h]);
    for h in headers {
        // Collect the loop body by walking predecessors back from the
        // latches, stopping at the header.
        let mut body: BTreeSet<u32> = BTreeSet::new();
        body.insert(h);
        let mut work: Vec<u32> = latches[&h].clone();
        while let Some(b) = work.pop() {
            if body.insert(b) {
                work.extend(ord.preds.get(&b).into_iter().flatten().copied());
            }
        }
        for &b in &body {
            innermost.insert(b, h);
        }
        if latches[&h].iter().all(|&l| counted_latch(cfg, l)) {
            counted.insert(h);
        }
    }
    (innermost, counted)
}

/// Syntactic trip-bound check for a back-edge block: it ends in
/// `cmp r, imm` / `jcc` or `dec r` / `jcc` — the two shapes whose bound
/// the interval refinement can track.
fn counted_latch(cfg: &Cfg, latch: u32) -> bool {
    let Some(block) = cfg.blocks.get(&latch) else {
        return false;
    };
    let n = block.insns.len();
    if n < 2 || !matches!(block.insns[n - 1].insn, Insn::Jcc(..)) {
        return false;
    }
    matches!(
        block.insns[n - 2].insn,
        Insn::Cmp(_, Src::Imm(_)) | Insn::Dec(_)
    )
}
