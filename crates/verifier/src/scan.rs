//! The verification scan: interval fixpoint, per-instruction checks, and
//! proof extraction.
//!
//! The fixpoint is loop-aware. Out-states are computed *per edge*: a
//! block ending in `cmp r, c` / `jcc` refines `r`'s interval on its
//! taken and fall-through edges ([`crate::interval::refine_edge`]).
//! Widening to top happens only at retreating-edge targets (every cycle
//! has one), after [`WIDEN_AFTER`] joins; two descending narrowing
//! passes then re-apply the transfer functions without widening, which
//! recovers the refined loop bounds the widening threw away. Narrowing
//! from a post-fixpoint stays above the least fixpoint, so every final
//! state still over-approximates the concrete reachable states — the
//! one-sidedness of the whole verifier is preserved.

use std::collections::{BTreeMap, VecDeque};

use asm86::disasm::{branch_target, Block, Cfg, CfgError};
use asm86::isa::{Insn, Mem, Src};

use crate::interval::{
    access_width, contained, ds_accesses, mem_interval, mnemonic, overlaps, refine_edge, transfer,
    AbsState,
};
use crate::policy::{VerifyError, VerifyPolicy};
use crate::proofs::{self, BlockProof, LoopClass, Order};
use crate::Attestation;

/// How many times a widening point's in-state may change before it is
/// widened to top; bounds the interval fixpoint on loops.
const WIDEN_AFTER: u32 = 8;

/// Descending narrowing passes run after the ascending fixpoint.
const NARROW_PASSES: u32 = 2;

/// How many CFG-rebuild rounds resolved indirect targets may trigger.
const MAX_ROUNDS: u32 = 64;

/// Computes a block's out-state per successor edge, applying
/// branch-condition refinement on conditional exits.
fn out_edges(block: &Block, in_state: AbsState) -> Vec<(u32, AbsState)> {
    let mut state = in_state;
    for line in &block.insns {
        transfer(&line.insn, &mut state);
    }
    let count = block.insns.len();
    if count >= 2 {
        let last = &block.insns[count - 1];
        if let (Insn::Cmp(reg, src), Insn::Jcc(cond, _)) =
            (&block.insns[count - 2].insn, &last.insn)
        {
            // The compared constant: an immediate, or a register the
            // analysis pinned to a single value.
            let cmp_c = match *src {
                Src::Imm(imm) => Some(imm as u32),
                Src::Reg(other) => match state.get(other) {
                    Some((lo, hi)) if lo == hi => Some(lo),
                    _ => None,
                },
            };
            let taken = branch_target(last).and_then(|t| u32::try_from(t).ok());
            let fall = block.end;
            if let (Some(cmp_c), Some(taken)) = (cmp_c, taken) {
                if taken != fall {
                    return block
                        .succs
                        .iter()
                        .map(|&succ| {
                            let mut edge = state;
                            if succ == taken {
                                refine_edge(&mut edge, *reg, cmp_c, *cond, true);
                            } else if succ == fall {
                                refine_edge(&mut edge, *reg, cmp_c, *cond, false);
                            }
                            (succ, edge)
                        })
                        .collect();
                }
            }
        }
    }
    block.succs.iter().map(|&succ| (succ, state)).collect()
}

pub(crate) struct Analysis<'a> {
    pub(crate) image: &'a [u8],
    pub(crate) policy: &'a VerifyPolicy,
    /// Data ranges including the image itself.
    pub(crate) data: Vec<(u32, u32)>,
    pub(crate) stats: Attestation,
}

impl Analysis<'_> {
    fn image_range(&self) -> (u32, u32) {
        let lo = self.policy.load_addr;
        (lo, lo.wrapping_add(self.image.len() as u32))
    }

    fn in_image_code(&self, addr: u32) -> bool {
        let (lo, hi) = self.image_range();
        addr >= lo && addr < hi
    }

    /// Loop-aware interval fixpoint over the CFG's blocks; returns each
    /// block's in-state.
    ///
    /// Ascending phase: worklist with per-edge refinement, widening to
    /// top only at retreating-edge targets after [`WIDEN_AFTER`] joins.
    /// Descending phase: [`NARROW_PASSES`] rounds re-deriving each
    /// non-entry block's in-state from its predecessors' refined
    /// out-edges, which restores bounds like `[0, limit-1]` at loop
    /// headers. Entry blocks stay pinned at top (callers are unknown).
    fn fixpoint(cfg: &Cfg, entries: &[u32], ord: &Order) -> BTreeMap<u32, AbsState> {
        let mut ins: BTreeMap<u32, AbsState> = BTreeMap::new();
        let mut visits: BTreeMap<u32, u32> = BTreeMap::new();
        let mut work: VecDeque<u32> = VecDeque::new();
        for &e in entries {
            ins.insert(e, AbsState::TOP);
            work.push_back(e);
        }
        while let Some(b) = work.pop_front() {
            let Some(block) = cfg.blocks.get(&b) else {
                continue;
            };
            let s_in = ins[&b];
            for (succ, out) in out_edges(block, s_in) {
                if !cfg.blocks.contains_key(&succ) {
                    continue;
                }
                if let Some(existing) = ins.get_mut(&succ) {
                    if existing.join(&out) {
                        if ord.retreat_targets.contains(&succ) {
                            let v = visits.entry(succ).or_insert(0);
                            *v += 1;
                            if *v > WIDEN_AFTER {
                                *existing = AbsState::TOP;
                            }
                        }
                        work.push_back(succ);
                    }
                } else {
                    ins.insert(succ, out);
                    work.push_back(succ);
                }
            }
        }

        // Descending narrowing. Every state in `ins` is a post-fixpoint
        // (>= lfp); re-applying the monotone edge functions keeps each
        // state >= lfp while shrinking the widened ones.
        for _ in 0..NARROW_PASSES {
            for &b in &ord.rpo {
                if entries.contains(&b) {
                    continue;
                }
                let mut acc: Option<AbsState> = None;
                for &p in ord.preds.get(&b).map_or(&[][..], |v| v.as_slice()) {
                    let Some(&p_in) = ins.get(&p) else { continue };
                    let Some(pb) = cfg.blocks.get(&p) else {
                        continue;
                    };
                    for (succ, out) in out_edges(pb, p_in) {
                        if succ != b {
                            continue;
                        }
                        match acc.as_mut() {
                            None => acc = Some(out),
                            Some(a) => {
                                a.join(&out);
                            }
                        }
                    }
                }
                if let Some(a) = acc {
                    ins.insert(b, a);
                }
            }
        }
        ins
    }

    fn check_access(
        &mut self,
        offset: u32,
        insn: &Insn,
        m: Mem,
        s: &AbsState,
    ) -> Result<(), VerifyError> {
        self.stats.memory_checks += 1;
        let Some((lo, hi)) = mem_interval(m, s) else {
            self.stats.unknown_accesses += 1;
            return Ok(());
        };
        let hi = hi.saturating_add(access_width(insn) - 1);
        if contained(&self.data, lo, hi) {
            self.stats.proven_accesses += 1;
            Ok(())
        } else if overlaps(&self.data, lo, hi) {
            // Partially coverable: not provably wrong, hardware decides.
            self.stats.unknown_accesses += 1;
            Ok(())
        } else {
            Err(VerifyError::OutOfSegment { offset, lo, hi })
        }
    }

    /// True if some reachable instruction writes the 4-byte slot at
    /// `addr` through a constant address (the `pop [slot]` of the
    /// service-stub return-linkage pattern).
    fn slot_written(cfg: &Cfg, addr: u32) -> bool {
        cfg.lines.values().any(|l| match l.insn {
            Insn::PopM(m) | Insn::Store(m, _) => {
                m.base.is_none() && m.seg.is_none() && m.disp as u32 == addr
            }
            _ => false,
        })
    }

    /// Validates a resolved indirect target address; in-image targets not
    /// yet traversed are pushed onto `pending`.
    fn check_indirect_target(
        &mut self,
        offset: u32,
        value: u32,
        cfg: &Cfg,
        pending: &mut Vec<u32>,
    ) -> Result<(), VerifyError> {
        if self.in_image_code(value) {
            let toff = value - self.policy.load_addr;
            if !cfg.lines.contains_key(&toff) {
                pending.push(toff);
            }
            self.stats.resolved_indirect += 1;
            Ok(())
        } else if overlaps(&self.policy.code, value, value) {
            self.stats.resolved_indirect += 1;
            Ok(())
        } else {
            Err(VerifyError::BadIndirectTarget { offset, value })
        }
    }

    fn check_insn(
        &mut self,
        offset: u32,
        insn: &Insn,
        s: &AbsState,
        cfg: &Cfg,
        pending: &mut Vec<u32>,
    ) -> Result<(), VerifyError> {
        // (2) privileged / reserved instructions.
        match insn {
            Insn::Hlt
            | Insn::MovToSeg(..)
            | Insn::PopSeg(_)
            | Insn::Iret
            | Insn::Lret
            | Insn::LretN(_)
            // `wrpkru` is reserved to loader-planted gate sites: an
            // extension carrying its own would grant itself key rights
            // (it would fault at run time anyway — reject it up front).
            | Insn::Wrpkru(..) => {
                return Err(VerifyError::Privileged {
                    offset,
                    mnemonic: mnemonic(insn),
                });
            }
            Insn::Int(v) if !self.policy.vectors.contains(v) => {
                return Err(VerifyError::ForbiddenVector { offset, vector: *v });
            }
            Insn::Lcall(sel, _) if !self.policy.gates.contains(sel) => {
                return Err(VerifyError::ForbiddenGate {
                    offset,
                    selector: *sel,
                });
            }
            _ => {}
        }
        // (3) memory accesses.
        match insn {
            Insn::Load(_, m)
            | Insn::Store(m, _)
            | Insn::LoadB(_, m)
            | Insn::StoreB(m, _)
            | Insn::LoadW(_, m)
            | Insn::StoreW(m, _)
            | Insn::PushM(m)
            | Insn::PopM(m)
            | Insn::AluM(_, _, m)
            | Insn::CmpM(m, _) => self.check_access(offset, insn, *m, s)?,
            _ => {}
        }
        // (4) indirect control transfers.
        match insn {
            Insn::JmpReg(r) | Insn::CallReg(r) => match s.get(*r) {
                Some((t, h)) if t == h => self.check_indirect_target(offset, t, cfg, pending)?,
                _ => return Err(VerifyError::IndirectUnresolved { offset }),
            },
            Insn::JmpM(m) | Insn::CallM(m) => match mem_interval(*m, s) {
                Some((a, b)) if a == b => {
                    let (ilo, ihi) = self.image_range();
                    if a >= ilo && a.wrapping_add(4) <= ihi {
                        // Slot inside the image: judge its linked contents.
                        let so = (a - ilo) as usize;
                        let value =
                            u32::from_le_bytes(self.image[so..so + 4].try_into().expect("4 bytes"));
                        if value == 0 && Self::slot_written(cfg, a) {
                            // Dispatch slot filled at run time by a
                            // reachable `pop [slot]`; the stored value is
                            // a return address inside the image.
                            self.stats.resolved_indirect += 1;
                        } else {
                            self.check_indirect_target(offset, value, cfg, pending)?;
                        }
                    } else if contained(&self.policy.slots, a, a.saturating_add(3)) {
                        // Loader-sealed slot (GOT): contents trusted.
                        self.stats.resolved_indirect += 1;
                    } else {
                        return Err(VerifyError::IndirectUnresolved { offset });
                    }
                }
                _ => return Err(VerifyError::IndirectUnresolved { offset }),
            },
            _ => {}
        }
        Ok(())
    }

    /// Extracts the proven facts for one block under its final in-state.
    /// Runs only after every instruction passed [`Analysis::check_insn`],
    /// so `no_privileged` is a statement, not a re-check.
    fn block_proof(&self, block: &Block, in_state: AbsState, loop_class: LoopClass) -> BlockProof {
        let mut s = in_state;
        let mut seen = false;
        let mut all_proven = true;
        let (mut lo, mut hi) = (u32::MAX, 0u32);
        let (mut loads, mut stores) = (false, false);
        for line in &block.insns {
            for (m, is_store) in ds_accesses(&line.insn) {
                seen = true;
                match mem_interval(m, &s) {
                    Some((alo, ahi)) => {
                        let ahi = ahi.saturating_add(access_width(&line.insn) - 1);
                        if contained(&self.data, alo, ahi) {
                            lo = lo.min(alo);
                            hi = hi.max(ahi);
                            if is_store {
                                stores = true;
                            } else {
                                loads = true;
                            }
                        } else {
                            all_proven = false;
                        }
                    }
                    None => all_proven = false,
                }
            }
            transfer(&line.insn, &mut s);
        }
        BlockProof {
            start: block.start,
            len: block.end - block.start,
            ds_bounds: (seen && all_proven).then_some((lo, hi)),
            ds_loads: loads,
            ds_stores: stores,
            no_privileged: true,
            fall_through_only: block.insns.last().is_some_and(|l| !l.insn.is_control()),
            loop_class,
        }
    }
}

/// Verifies a linked image against `policy`, starting from image-relative
/// `entries` (the module's exported functions).
///
/// On success returns the [`Attestation`] (with its [`ProofMap`](crate::ProofMap)) the
/// loader stores with the segment; on failure, the first violation found
/// in address order.
pub fn verify_image(
    image: &[u8],
    entries: &[u32],
    policy: &VerifyPolicy,
) -> Result<Attestation, VerifyError> {
    let mut a = Analysis {
        image,
        policy,
        data: policy.data.clone(),
        stats: Attestation::default(),
    };
    let (ilo, ihi) = a.image_range();
    a.data.push((ilo, ihi));

    let mut all_entries: Vec<u32> = entries.to_vec();
    all_entries.sort_unstable();
    all_entries.dedup();

    for round in 0.. {
        let cfg = Cfg::build(image, &all_entries).map_err(|e| match e {
            CfgError::Decode { offset, cause } => VerifyError::Decode { offset, cause },
            CfgError::NoEntry => VerifyError::NoEntry,
            CfgError::EntryOutOfRange(o) => VerifyError::EntryOutOfRange(o),
        })?;
        let ord = proofs::order(&cfg, &all_entries);
        let states = Analysis::fixpoint(&cfg, &all_entries, &ord);

        a.stats = Attestation {
            entries: all_entries.len() as u32,
            insns: cfg.lines.len() as u32,
            blocks: cfg.blocks.len() as u32,
            ..Attestation::default()
        };

        // Static transfers that leave the image.
        for &(site, target) in &cfg.external_sites {
            let linear = i64::from(policy.load_addr) + target;
            let ok = u32::try_from(linear).is_ok_and(|t| overlaps(&policy.code, t, t));
            if !ok {
                return Err(VerifyError::BranchOutOfRange {
                    offset: site,
                    target: linear,
                });
            }
            a.stats.external_transfers += 1;
        }

        let mut pending: Vec<u32> = Vec::new();
        for block in cfg.blocks.values() {
            let mut s = states.get(&block.start).copied().unwrap_or(AbsState::TOP);
            for line in &block.insns {
                a.check_insn(line.offset, &line.insn, &s, &cfg, &mut pending)?;
                transfer(&line.insn, &mut s);
            }
        }

        pending.sort_unstable();
        pending.dedup();
        pending.retain(|p| !all_entries.contains(p));
        if pending.is_empty() {
            // Accepted: extract per-block proofs under the final states.
            let idom = proofs::dominators(&all_entries, &ord);
            let (innermost, counted) = proofs::natural_loops(&cfg, &ord, &idom);
            for block in cfg.blocks.values() {
                let in_state = states.get(&block.start).copied().unwrap_or(AbsState::TOP);
                let loop_class = match innermost.get(&block.start) {
                    None => LoopClass::NotInLoop,
                    Some(&h) if counted.contains(&h) => LoopClass::Counted { header: h },
                    Some(&h) => LoopClass::Unknown { header: h },
                };
                let proof = a.block_proof(block, in_state, loop_class);
                a.stats.proofs.blocks.insert(block.start, proof);
            }
            return Ok(a.stats);
        }
        if round + 1 >= MAX_ROUNDS {
            // Pathological resolve chain; give up conservatively.
            return Err(VerifyError::IndirectUnresolved { offset: pending[0] });
        }
        all_entries.extend(pending);
        all_entries.sort_unstable();
    }
    unreachable!("loop returns")
}
